// Collective operations, implemented over point-to-point with binomial
// trees (bcast/reduce) and a root-gather barrier — the textbook approach
// small MPI implementations (including LAM) use at these scales.

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ars/mpi/mpi.hpp"

namespace ars::mpi {

namespace {

/// Relative rank helper: rotate so `root` is 0.
int rel(int rank, int root, int size) { return (rank - root + size) % size; }
int abs_rank(int relative, int root, int size) {
  return (relative + root) % size;
}

}  // namespace

sim::Task<> Proc::barrier(Comm comm) {
  assert(comm.valid() && !comm.is_inter());
  const int size = comm.size();
  const int rank = comm.rank_of(id_);
  if (size <= 1) {
    co_return;
  }
  if (rank == 0) {
    for (int i = 1; i < size; ++i) {
      (void)co_await recv(comm, kAnySource, kTagBarrier);
    }
    for (int i = 1; i < size; ++i) {
      co_await send(comm, i, kTagBarrier, 0.0);
    }
  } else {
    co_await send(comm, 0, kTagBarrier, 0.0);
    (void)co_await recv(comm, 0, kTagBarrier);
  }
}

sim::Task<std::vector<double>> Proc::bcast(Comm comm, int root,
                                           double size_bytes,
                                           std::vector<double> values) {
  assert(comm.valid() && !comm.is_inter());
  const int size = comm.size();
  const int rank = comm.rank_of(id_);
  if (size <= 1) {
    co_return values;
  }
  const int me = rel(rank, root, size);
  // Binomial tree (MPICH-style): climb to the bit where we receive, then
  // fan out to lower-bit children.
  int mask = 1;
  while (mask < size) {
    if ((me & mask) != 0) {
      MpiMessage message =
          co_await recv(comm, abs_rank(me - mask, root, size), kTagBcast);
      values = std::move(message.values);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    const int child = me + mask;
    if (child < size) {
      MpiMessage payload;
      payload.values = values;
      co_await send(comm, abs_rank(child, root, size), kTagBcast, size_bytes,
                    std::move(payload));
    }
    mask >>= 1;
  }
  co_return values;
}

namespace {

double combine(double lhs, double rhs, ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return lhs + rhs;
    case ReduceOp::kMin:
      return std::min(lhs, rhs);
    case ReduceOp::kMax:
      return std::max(lhs, rhs);
    case ReduceOp::kProd:
      return lhs * rhs;
  }
  return lhs;
}

}  // namespace

sim::Task<std::vector<double>> Proc::reduce(Comm comm, int root,
                                            std::vector<double> values,
                                            ReduceOp op, double size_bytes) {
  assert(comm.valid() && !comm.is_inter());
  const int size = comm.size();
  const int rank = comm.rank_of(id_);
  if (size <= 1) {
    co_return values;
  }
  const int me = rel(rank, root, size);
  // Reverse binomial tree: absorb children, then send to parent.
  for (int mask = 1; mask < size; mask <<= 1) {
    if ((me & mask) == 0) {
      const int child = me | mask;
      if (child < size) {
        MpiMessage message =
            co_await recv(comm, abs_rank(child, root, size), kTagReduce);
        if (message.values.size() != values.size()) {
          throw std::invalid_argument(
              "mpi reduce: mismatched contribution lengths");
        }
        for (std::size_t i = 0; i < message.values.size(); ++i) {
          values[i] = combine(values[i], message.values[i], op);
        }
      }
    } else {
      const int parent = me & ~mask;
      MpiMessage payload;
      payload.values = std::move(values);
      co_await send(comm, abs_rank(parent, root, size), kTagReduce,
                    size_bytes, std::move(payload));
      co_return std::vector<double>{};
    }
  }
  co_return values;
}

sim::Task<std::vector<double>> Proc::reduce_sum(Comm comm, int root,
                                                std::vector<double> values,
                                                double size_bytes) {
  co_return co_await reduce(comm, root, std::move(values), ReduceOp::kSum,
                            size_bytes);
}

sim::Task<std::vector<double>> Proc::allreduce(Comm comm,
                                               std::vector<double> values,
                                               ReduceOp op,
                                               double size_bytes) {
  auto reduced = co_await reduce(comm, 0, std::move(values), op, size_bytes);
  co_return co_await bcast(comm, 0, size_bytes, std::move(reduced));
}

sim::Task<std::vector<double>> Proc::allreduce_sum(Comm comm,
                                                   std::vector<double> values,
                                                   double size_bytes) {
  co_return co_await allreduce(comm, std::move(values), ReduceOp::kSum,
                               size_bytes);
}

sim::Task<std::vector<double>> Proc::gather(Comm comm, int root,
                                            std::vector<double> values,
                                            double size_bytes) {
  assert(comm.valid() && !comm.is_inter());
  const int size = comm.size();
  const int rank = comm.rank_of(id_);
  if (rank != root) {
    MpiMessage payload;
    payload.values = std::move(values);
    co_await send(comm, root, kTagGather, size_bytes, std::move(payload));
    co_return std::vector<double>{};
  }
  const std::size_t chunk = values.size();
  std::vector<std::vector<double>> parts(static_cast<std::size_t>(size));
  parts[static_cast<std::size_t>(root)] = std::move(values);
  for (int i = 0; i < size - 1; ++i) {
    MpiMessage message = co_await recv(comm, kAnySource, kTagGather);
    parts[static_cast<std::size_t>(message.src_rank)] =
        std::move(message.values);
  }
  std::vector<double> out;
  out.reserve(chunk * static_cast<std::size_t>(size));
  for (auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  co_return out;
}

sim::Task<std::vector<double>> Proc::allgather(Comm comm,
                                               std::vector<double> values,
                                               double size_bytes) {
  // Gather to rank 0, then broadcast the concatenation.  The wire cost of
  // the broadcast scales with the gathered size.
  const int size = comm.size();
  auto gathered = co_await gather(comm, 0, std::move(values), size_bytes);
  co_return co_await bcast(comm, 0, size_bytes * size, std::move(gathered));
}

sim::Task<std::vector<double>> Proc::scatter(Comm comm, int root,
                                             std::vector<double> values,
                                             int chunk, double size_bytes) {
  assert(comm.valid() && !comm.is_inter());
  const int size = comm.size();
  const int rank = comm.rank_of(id_);
  if (rank == root) {
    if (values.size() < static_cast<std::size_t>(size) *
                            static_cast<std::size_t>(chunk)) {
      throw std::invalid_argument("mpi scatter: source vector too small");
    }
    for (int i = 0; i < size; ++i) {
      if (i == root) {
        continue;
      }
      MpiMessage payload;
      payload.values.assign(
          values.begin() + static_cast<std::ptrdiff_t>(i) * chunk,
          values.begin() + static_cast<std::ptrdiff_t>(i + 1) * chunk);
      co_await send(comm, i, kTagScatter, size_bytes, std::move(payload));
    }
    co_return std::vector<double>(
        values.begin() + static_cast<std::ptrdiff_t>(root) * chunk,
        values.begin() + static_cast<std::ptrdiff_t>(root + 1) * chunk);
  }
  MpiMessage message = co_await recv(comm, root, kTagScatter);
  co_return std::move(message.values);
}

}  // namespace ars::mpi
