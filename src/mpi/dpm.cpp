// MPI-2 dynamic process management: Comm_spawn, named ports with
// connect/accept, and Intercomm_merge.  These are exactly the operations the
// paper's migration path uses: "we need to dynamically create a process with
// a communicator and join the communicators together, so that the migrating
// process and initialized process can communicate in one communicator."

#include <algorithm>
#include <stdexcept>

#include "ars/mpi/mpi.hpp"

namespace ars::mpi {

sim::Task<SpawnResult> Proc::spawn(const std::string& host_name, AppMain app,
                                   std::string name, int count) {
  if (count < 1) {
    throw std::invalid_argument("mpi spawn: count must be >= 1");
  }
  // LAM's DPM operations are slow (§5.2): model the runtime handshake as a
  // fixed startup cost plus a control round-trip to the target host.
  co_await sim::delay(system_->engine(), system_->options().spawn_overhead);
  (void)co_await system_->network().transfer(host_->name(), host_name, 512.0);

  SpawnResult result;
  std::vector<Proc*> children;
  for (int i = 0; i < count; ++i) {
    Proc& child = system_->create_proc(
        host_name, name + "." + std::to_string(i), false, "");
    result.children.push_back(child.id());
    children.push_back(&child);
  }
  const Comm child_world = system_->make_comm(result.children);
  // Two mirrored views of one intercommunicator: the parent's, and the
  // children's "parent comm" (MPI_Comm_get_parent).
  auto [parent_view, child_view] =
      system_->make_intercomm_pair({id_}, result.children);
  result.intercomm = parent_view;
  for (Proc* child : children) {
    child->world_ = child_world;
    child->parent_comm_ = child_view;
    system_->start_app(*child, app);
  }
  co_return result;
}

const char* spawn_strategy_name(SpawnStrategy strategy) {
  return strategy == SpawnStrategy::kTree ? "tree" : "sequential";
}

std::optional<SpawnStrategy> spawn_strategy_from(std::string_view name) {
  if (name == "sequential") {
    return SpawnStrategy::kSequential;
  }
  if (name == "tree") {
    return SpawnStrategy::kTree;
  }
  return std::nullopt;
}

namespace {

/// Smallest power of two strictly greater than `node` — the stride of the
/// node's first spawn round in the binomial tree.  Node c is created by
/// node c - msb(c), so every child has exactly one spawner.
int tree_first_stride(int node) {
  int stride = 1;
  while (stride <= node) {
    stride *= 2;
  }
  return stride;
}

}  // namespace

struct MpiSystem::MultiSpawnState {
  explicit MultiSpawnState(sim::Engine& engine) : done(engine) {}

  std::string parent_host;
  std::vector<std::string> hosts;  // child j (1-based) lands on hosts[j-1]
  std::string name;
  std::vector<RankId> ids;  // per child, 0 until created
  int remaining = 0;
  int active_nodes = 0;  // node fibers still running (cancellation drain)
  int max_depth = 0;
  sim::Trigger done;
  std::vector<sim::Fiber> fibers;
  std::vector<RankId>* progress = nullptr;
  std::shared_ptr<const SpawnCancel> cancel;

  [[nodiscard]] bool cancelled() const {
    return cancel && cancel->cancelled;
  }
};

sim::Task<> MpiSystem::tree_spawn_node(std::shared_ptr<MultiSpawnState> state,
                                       int node, int depth) {
  const int total = static_cast<int>(state->hosts.size());
  const std::string from =
      node == 0 ? state->parent_host : state->hosts[node - 1];
  for (int stride = tree_first_stride(node); node + stride <= total;
       stride *= 2) {
    if (state->cancelled()) {
      break;
    }
    const int child = node + stride;
    // Every handshake pays the full DPM cost, charged to the spawning
    // node's host; rounds overlap because each created child immediately
    // starts spawning its own subtree.
    co_await sim::delay(*engine_, options_.spawn_overhead);
    (void)co_await network_->transfer(from, state->hosts[child - 1], 512.0);
    if (state->cancelled()) {
      break;
    }
    Proc& proc =
        create_proc(state->hosts[child - 1],
                    state->name + "." + std::to_string(child - 1), false, "");
    state->ids[child - 1] = proc.id();
    if (state->progress != nullptr) {
      state->progress->push_back(proc.id());
    }
    state->max_depth = std::max(state->max_depth, depth + 1);
    if (--state->remaining == 0) {
      state->done.fire();
      break;
    }
    if (child + tree_first_stride(child) <= total) {
      state->fibers.push_back(
          sim::Fiber::spawn(*engine_, tree_spawn_node(state, child, depth + 1),
                            "mpi-tree-spawn"));
      ++state->active_nodes;
    }
  }
  // A cancelled fan-out never exhausts `remaining`; the last node fiber to
  // drain releases the waiting parent instead.
  if (--state->active_nodes == 0 && state->cancelled()) {
    state->done.fire();
  }
}

sim::Task<MultiSpawnResult> Proc::spawn_many(
    std::vector<std::string> hosts, AppMain app, std::string name,
    SpawnStrategy strategy, std::vector<RankId>* progress,
    std::shared_ptr<const SpawnCancel> cancel) {
  MultiSpawnResult result;
  if (hosts.empty()) {
    co_return result;
  }
  auto state =
      std::make_shared<MpiSystem::MultiSpawnState>(system_->engine());
  state->parent_host = host_->name();
  state->hosts = std::move(hosts);
  state->name = std::move(name);
  state->ids.resize(state->hosts.size(), 0);
  state->remaining = static_cast<int>(state->hosts.size());
  state->progress = progress;
  state->cancel = std::move(cancel);

  if (strategy == SpawnStrategy::kSequential) {
    for (std::size_t i = 0; i < state->hosts.size(); ++i) {
      if (state->cancelled()) {
        break;
      }
      co_await sim::delay(system_->engine(),
                          system_->options().spawn_overhead);
      (void)co_await system_->network().transfer(state->parent_host,
                                                 state->hosts[i], 512.0);
      if (state->cancelled()) {
        break;
      }
      Proc& child = system_->create_proc(
          state->hosts[i], state->name + "." + std::to_string(i), false, "");
      state->ids[i] = child.id();
      if (progress != nullptr) {
        progress->push_back(child.id());
      }
      --state->remaining;
      ++result.rounds;
    }
  } else {
    state->active_nodes = 1;
    state->fibers.push_back(sim::Fiber::spawn(
        system_->engine(), system_->tree_spawn_node(state, 0, 0),
        "mpi-tree-spawn"));
    co_await state->done.wait();
    result.rounds = state->max_depth;
  }
  // Either way the fan-out is quiescent here (complete, or cancelled with
  // every node fiber drained), so the handle vector holds only finished
  // fibers.
  state->fibers.clear();

  if (state->remaining > 0) {
    // Cancelled mid-flight: hand back the partial group without starting
    // any application — the caller reaps the orphans.
    for (const RankId id : state->ids) {
      if (id != 0) {
        result.children.push_back(id);
      }
    }
    co_return result;
  }
  result.children = state->ids;
  // The whole group exists: wire up the children's world and the mirrored
  // parent/children intercommunicator, then start every child.  Starting
  // together makes membership and app behaviour strategy-independent.
  const Comm child_world = system_->make_comm(result.children);
  auto [parent_view, child_view] =
      system_->make_intercomm_pair({id_}, result.children);
  result.intercomm = parent_view;
  for (const RankId id : result.children) {
    Proc* child = system_->find(id);
    child->world_ = child_world;
    child->parent_comm_ = child_view;
    system_->start_app(*child, app);
  }
  co_return result;
}

std::string Proc::open_port() {
  const std::string port =
      host_->name() + ":" + std::to_string(40000 + system_->next_port_++);
  system_->ports_.emplace(
      port, std::make_unique<MpiSystem::PortState>(system_->engine(), id_));
  return port;
}

void Proc::close_port(const std::string& port) {
  system_->ports_.erase(port);
}

sim::Task<Comm> Proc::accept(const std::string& port) {
  const auto it = system_->ports_.find(port);
  if (it == system_->ports_.end()) {
    throw std::invalid_argument("mpi accept: unknown port " + port);
  }
  MpiSystem::PortState& state = *it->second;
  if (state.owner != id_) {
    throw std::invalid_argument("mpi accept: port owned by another process");
  }
  const RankId connector = co_await state.pending.recv();
  co_await sim::delay(system_->engine(),
                      system_->options().connect_overhead);
  auto [connector_view, acceptor_view] =
      system_->make_intercomm_pair({connector}, {id_});
  state.connector_comm = connector_view;
  state.accepted->fire();
  co_return acceptor_view;
}

sim::Task<Comm> Proc::connect(const std::string& port) {
  const auto it = system_->ports_.find(port);
  if (it == system_->ports_.end()) {
    throw std::invalid_argument("mpi connect: unknown port " + port);
  }
  MpiSystem::PortState& state = *it->second;
  state.accepted = std::make_unique<sim::Trigger>(system_->engine());
  state.pending.send(id_);
  co_await state.accepted->wait();
  co_return state.connector_comm;
}

sim::Task<Comm> Proc::merge(Comm intercomm, bool high) {
  if (!intercomm.valid() || !intercomm.is_inter()) {
    throw std::invalid_argument("mpi merge: not an intercommunicator");
  }
  // Both sides call merge; the low side's leader creates the merged context
  // and the others adopt it.  We model the required synchronization as one
  // handshake latency; membership math is deterministic on both sides.
  co_await sim::delay(system_->engine(),
                      system_->options().connect_overhead);
  std::vector<RankId> merged;
  const auto& local = intercomm.state_->members;
  const auto& remote = intercomm.state_->remote;
  if (high) {
    merged.insert(merged.end(), remote.begin(), remote.end());
    merged.insert(merged.end(), local.begin(), local.end());
  } else {
    merged.insert(merged.end(), local.begin(), local.end());
    merged.insert(merged.end(), remote.begin(), remote.end());
  }
  co_return system_->merge_comm(intercomm.context(), std::move(merged));
}

sim::Task<Comm> Proc::comm_dup(Comm comm) {
  // Dup is split with everyone in one color, keyed by current rank.
  co_return co_await comm_split(comm, 0, comm.rank_of(id_));
}

sim::Task<Comm> Proc::comm_split(Comm comm, int color, int key) {
  if (!comm.valid() || comm.is_inter()) {
    throw std::invalid_argument("mpi comm_split: needs an intracommunicator");
  }
  MpiSystem& system = *system_;
  const int context = comm.context();
  const int rank = comm.rank_of(id_);
  const int epoch = system.comm_op_epoch_[context];
  const auto op_key = std::make_pair(context, epoch);
  auto op_it = system.comm_ops_.find(op_key);
  if (op_it == system.comm_ops_.end()) {
    op_it = system.comm_ops_
                .emplace(op_key, std::make_unique<MpiSystem::CommOpState>(
                                     system.engine()))
                .first;
  }
  MpiSystem::CommOpState& op = *op_it->second;
  op.contributions[rank] = {color, key};
  ++op.arrived;

  if (op.arrived == comm.size()) {
    // Last arriver computes and publishes every subgroup.
    std::map<int, std::vector<std::pair<std::pair<int, int>, RankId>>> groups;
    for (const auto& [member_rank, contribution] : op.contributions) {
      const auto [member_color, member_key] = contribution;
      if (member_color < 0) {
        continue;  // kUndefined: not part of any subgroup
      }
      groups[member_color].push_back(
          {{member_key, member_rank}, comm.member(member_rank)});
    }
    for (auto& [group_color, entries] : groups) {
      std::sort(entries.begin(), entries.end());
      std::vector<RankId> members;
      members.reserve(entries.size());
      for (const auto& [order, member_id] : entries) {
        members.push_back(member_id);
      }
      op.results_by_color.emplace(group_color,
                                  system.make_comm(std::move(members)));
    }
    op.published = true;
    ++system.comm_op_epoch_[context];  // next dup/split gets a fresh state
    op.done.fire();
  } else {
    co_await op.done.wait();
  }
  if (color < 0) {
    co_return Comm{};
  }
  co_return op.results_by_color.at(color);
}

Comm MpiSystem::merge_comm(int inter_context, std::vector<RankId> members) {
  // Both sides of the merge must agree on one context id; key it off the
  // intercommunicator's context so the second caller reuses the first's.
  const auto it = merged_comms_.find(inter_context);
  if (it != merged_comms_.end()) {
    return it->second;
  }
  Comm merged = make_comm(std::move(members));
  merged_comms_.emplace(inter_context, merged);
  return merged;
}

}  // namespace ars::mpi
