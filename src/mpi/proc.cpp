#include <cassert>
#include <stdexcept>

#include "ars/mpi/mpi.hpp"

namespace ars::mpi {

Proc::Proc(MpiSystem& system, RankId id, host::Host& h, std::string name)
    : system_(&system), id_(id), host_(&h), name_(std::move(name)) {}

Proc::~Proc() {
  // Posted receives are owned by suspended recv() frames; those frames are
  // killed (or completed) before the system destroys the Proc.  In-flight
  // non-blocking sends of an exiting process are abandoned (MPI erroneous
  // program behaviour; harmless at simulation teardown).
  for (auto& fiber : isend_fibers_) {
    fiber.kill();
  }
}

// -- Mailbox: bucketed (source, tag) matching --------------------------------

namespace {

/// Bucket key for a (source, tag) pair; wildcards (-1) key buckets of their
/// own.  User tags are non-negative and reserved collective tags are <= -2,
/// so -1 is unambiguous in both halves.
std::uint64_t bucket_key(int src, int tag) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}

bool wildcard_match(int want_src, int want_tag, int src, int tag) noexcept {
  return (want_src == kAnySource || want_src == src) &&
         (want_tag == kAnyTag || want_tag == tag);
}

}  // namespace

void Proc::Mailbox::post(PostedRecv& recv) {
  recv.seq = next_seq++;
  PostedList& list = posted[bucket_key(recv.src, recv.tag)];
  recv.prev = list.tail;
  recv.next = nullptr;
  (list.tail != nullptr ? list.tail->next : list.head) = &recv;
  list.tail = &recv;
}

void Proc::Mailbox::unpost(PostedRecv& recv) noexcept {
  const auto it = posted.find(bucket_key(recv.src, recv.tag));
  PostedList& list = it->second;
  (recv.prev != nullptr ? recv.prev->next : list.head) = recv.next;
  (recv.next != nullptr ? recv.next->prev : list.tail) = recv.prev;
  recv.prev = recv.next = nullptr;
  if (list.head == nullptr) {
    posted.erase(it);
  }
}

Proc::PostedRecv* Proc::Mailbox::match_posted(
    const MpiMessage& message) noexcept {
  // An arriving message can only match these four buckets; each is FIFO by
  // post order, so comparing the fronts yields the oldest matching post —
  // exactly what a front-to-back scan of one combined list would find.
  const std::uint64_t candidates[4] = {
      bucket_key(message.src_rank, message.tag),
      bucket_key(message.src_rank, kAnyTag),
      bucket_key(kAnySource, message.tag),
      bucket_key(kAnySource, kAnyTag),
  };
  PostedRecv* best = nullptr;
  for (const std::uint64_t key : candidates) {
    const auto it = posted.find(key);
    if (it != posted.end() && it->second.head != nullptr &&
        (best == nullptr || it->second.head->seq < best->seq)) {
      best = it->second.head;
    }
  }
  if (best != nullptr) {
    unpost(*best);
  }
  return best;
}

void Proc::Mailbox::stash(MpiMessage message) {
  std::uint32_t index = free_node;
  if (index != kNil) {
    free_node = pool[index].next;
  } else {
    index = static_cast<std::uint32_t>(pool.size());
    pool.emplace_back();
  }
  MsgNode& node = pool[index];
  const std::uint64_t key = bucket_key(message.src_rank, message.tag);
  node.message = std::move(message);
  node.seq = next_seq++;
  node.next = kNil;
  MsgList& list = unexpected[key];
  (list.tail != kNil ? pool[list.tail].next : list.head) = index;
  list.tail = index;
}

std::optional<MpiMessage> Proc::Mailbox::claim(int src, int tag) {
  auto it = unexpected.end();
  if (src != kAnySource && tag != kAnyTag) {
    it = unexpected.find(bucket_key(src, tag));  // hot path: O(1)
  } else {
    // Wildcard: every bucket front is that bucket's oldest arrival, so the
    // minimum seq over matching fronts is the global oldest match.
    std::uint64_t best_seq = 0;
    for (auto probe = unexpected.begin(); probe != unexpected.end(); ++probe) {
      const int bucket_src = static_cast<int>(probe->first >> 32);
      const int bucket_tag = static_cast<int>(probe->first & 0xffffffffU);
      if (wildcard_match(src, tag, bucket_src, bucket_tag) &&
          (it == unexpected.end() || pool[probe->second.head].seq < best_seq)) {
        it = probe;
        best_seq = pool[it->second.head].seq;
      }
    }
  }
  if (it == unexpected.end()) {
    return std::nullopt;
  }
  MsgList& list = it->second;
  const std::uint32_t index = list.head;
  MsgNode& node = pool[index];
  MpiMessage message = std::move(node.message);
  node.message = MpiMessage{};  // release payload buffers eagerly
  list.head = node.next;
  if (list.head == kNil) {
    unexpected.erase(it);
  }
  node.next = free_node;
  free_node = index;
  return message;
}

bool Proc::Mailbox::peek(int src, int tag) const noexcept {
  if (src != kAnySource && tag != kAnyTag) {
    return unexpected.find(bucket_key(src, tag)) != unexpected.end();
  }
  for (const auto& [key, list] : unexpected) {
    if (wildcard_match(src, tag, static_cast<int>(key >> 32),
                       static_cast<int>(key & 0xffffffffU))) {
      return true;
    }
  }
  return false;
}

void Proc::deliver(MpiMessage message) {
  Mailbox& box = mailboxes_[message.context];
  if (PostedRecv* posted = box.match_posted(message)) {
    posted->matched = true;
    posted->message = std::move(message);
    posted->arrived->fire();
    return;
  }
  box.stash(std::move(message));
}

sim::Task<> Proc::send(Comm comm, int dest, int tag, double size_bytes,
                       MpiMessage payload) {
  assert(comm.valid());
  const RankId dst =
      comm.is_inter() ? comm.remote_member(dest) : comm.member(dest);
  payload.context = comm.context();
  payload.src_rank = comm.is_inter() ? comm.rank_of(id_) : comm.rank_of(id_);
  payload.tag = tag;
  payload.size_bytes = size_bytes;
  co_await system_->route(id_, dst, size_bytes);
  Proc* receiver = system_->find(dst);
  if (receiver == nullptr) {
    throw std::runtime_error("mpi: receiver exited before delivery");
  }
  receiver->deliver(std::move(payload));
}

Request Proc::isend(Comm comm, int dest, int tag, double size_bytes,
                    MpiMessage payload) {
  auto trigger = std::make_shared<sim::Trigger>(system_->engine());
  auto sender = [](Proc* self, Comm c, int d, int t, double bytes,
                   MpiMessage p,
                   std::shared_ptr<sim::Trigger> done) -> sim::Task<> {
    co_await self->send(std::move(c), d, t, bytes, std::move(p));
    done->fire();
  };
  std::erase_if(isend_fibers_,
                [](const sim::Fiber& f) { return f.done(); });
  isend_fibers_.push_back(
      sim::Fiber::spawn(system_->engine(),
                        sender(this, std::move(comm), dest, tag, size_bytes,
                               std::move(payload), trigger),
                        name_ + ".isend"));
  return Request{std::move(trigger)};
}

sim::Task<MpiMessage> Proc::recv(Comm comm, int src, int tag) {
  assert(comm.valid());
  Mailbox& box = mailboxes_[comm.context()];
  if (std::optional<MpiMessage> ready = box.claim(src, tag)) {
    co_return std::move(*ready);
  }
  PostedRecv posted;
  posted.src = src;
  posted.tag = tag;
  posted.arrived = std::make_unique<sim::Trigger>(system_->engine());
  box.post(posted);
  // RAII guard: a killed/migrated fiber must unlink its posting.
  struct Unpost {
    Mailbox* box;
    PostedRecv* posted;
    ~Unpost() {
      if (!posted->matched) {
        box->unpost(*posted);
      }
    }
  } guard{&box, &posted};
  co_await posted.arrived->wait();
  co_return std::move(posted.message);
}

bool Proc::iprobe(const Comm& comm, int src, int tag) const {
  const auto it = mailboxes_.find(comm.context());
  return it != mailboxes_.end() && it->second.peek(src, tag);
}

}  // namespace ars::mpi
