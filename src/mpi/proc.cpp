#include <cassert>
#include <stdexcept>

#include "ars/mpi/mpi.hpp"

namespace ars::mpi {

Proc::Proc(MpiSystem& system, RankId id, host::Host& h, std::string name)
    : system_(&system), id_(id), host_(&h), name_(std::move(name)) {}

Proc::~Proc() {
  // Posted receives are owned by suspended recv() frames; those frames are
  // killed (or completed) before the system destroys the Proc.  In-flight
  // non-blocking sends of an exiting process are abandoned (MPI erroneous
  // program behaviour; harmless at simulation teardown).
  for (auto& fiber : isend_fibers_) {
    fiber.kill();
  }
}

void Proc::deliver(MpiMessage message) {
  Mailbox& box = mailboxes_[message.context];
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    PostedRecv* posted = *it;
    if (!posted->matched && matches(*posted, message)) {
      posted->matched = true;
      posted->message = std::move(message);
      box.posted.erase(it);
      posted->arrived->fire();
      return;
    }
  }
  box.unexpected.push_back(std::move(message));
}

sim::Task<> Proc::send(Comm comm, int dest, int tag, double size_bytes,
                       MpiMessage payload) {
  assert(comm.valid());
  const RankId dst =
      comm.is_inter() ? comm.remote_member(dest) : comm.member(dest);
  payload.context = comm.context();
  payload.src_rank = comm.is_inter() ? comm.rank_of(id_) : comm.rank_of(id_);
  payload.tag = tag;
  payload.size_bytes = size_bytes;
  co_await system_->route(id_, dst, size_bytes);
  Proc* receiver = system_->find(dst);
  if (receiver == nullptr) {
    throw std::runtime_error("mpi: receiver exited before delivery");
  }
  receiver->deliver(std::move(payload));
}

Request Proc::isend(Comm comm, int dest, int tag, double size_bytes,
                    MpiMessage payload) {
  auto trigger = std::make_shared<sim::Trigger>(system_->engine());
  auto sender = [](Proc* self, Comm c, int d, int t, double bytes,
                   MpiMessage p,
                   std::shared_ptr<sim::Trigger> done) -> sim::Task<> {
    co_await self->send(std::move(c), d, t, bytes, std::move(p));
    done->fire();
  };
  std::erase_if(isend_fibers_,
                [](const sim::Fiber& f) { return f.done(); });
  isend_fibers_.push_back(
      sim::Fiber::spawn(system_->engine(),
                        sender(this, std::move(comm), dest, tag, size_bytes,
                               std::move(payload), trigger),
                        name_ + ".isend"));
  return Request{std::move(trigger)};
}

sim::Task<MpiMessage> Proc::recv(Comm comm, int src, int tag) {
  assert(comm.valid());
  Mailbox& box = mailboxes_[comm.context()];
  PostedRecv probe;
  probe.src = src;
  probe.tag = tag;
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    if (matches(probe, *it)) {
      MpiMessage message = std::move(*it);
      box.unexpected.erase(it);
      co_return message;
    }
  }
  PostedRecv posted;
  posted.src = src;
  posted.tag = tag;
  posted.arrived = std::make_unique<sim::Trigger>(system_->engine());
  box.posted.push_back(&posted);
  // RAII guard: a killed/migrated fiber must unlink its posting.
  struct Unpost {
    Mailbox* box;
    PostedRecv* posted;
    ~Unpost() {
      if (!posted->matched) {
        box->posted.remove(posted);
      }
    }
  } guard{&box, &posted};
  co_await posted.arrived->wait();
  co_return std::move(posted.message);
}

bool Proc::iprobe(const Comm& comm, int src, int tag) const {
  const auto it = mailboxes_.find(comm.context());
  if (it == mailboxes_.end()) {
    return false;
  }
  PostedRecv probe;
  probe.src = src;
  probe.tag = tag;
  for (const MpiMessage& message : it->second.unexpected) {
    if (matches(probe, message)) {
      return true;
    }
  }
  return false;
}

}  // namespace ars::mpi
