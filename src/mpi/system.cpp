#include <cassert>
#include <stdexcept>
#include <utility>

#include "ars/mpi/mpi.hpp"
#include "ars/support/log.hpp"

namespace ars::mpi {

int Comm::rank_of(RankId id) const noexcept {
  for (std::size_t i = 0; i < state_->members.size(); ++i) {
    if (state_->members[i] == id) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

MpiSystem::MpiSystem(sim::Engine& engine, net::Network& network)
    : MpiSystem(engine, network, Options{}) {}

MpiSystem::MpiSystem(sim::Engine& engine, net::Network& network,
                     Options options)
    : engine_(&engine), network_(&network), options_(options) {}

MpiSystem::~MpiSystem() {
  // Kill remaining application fibers before the ports/procs they may be
  // suspended on are destroyed; awaitable destructors deregister cleanly.
  for (auto& [id, fiber] : fibers_) {
    fiber.kill();
  }
}

Comm MpiSystem::make_comm(std::vector<RankId> members) {
  auto state = std::make_shared<Comm::State>();
  state->context = next_context_++;
  state->members = std::move(members);
  return Comm{std::move(state)};
}

Comm MpiSystem::make_intercomm(std::vector<RankId> local,
                               std::vector<RankId> remote) {
  auto state = std::make_shared<Comm::State>();
  state->context = next_context_++;
  state->members = std::move(local);
  state->inter = true;
  state->remote = std::move(remote);
  return Comm{std::move(state)};
}

std::pair<Comm, Comm> MpiSystem::make_intercomm_pair(
    std::vector<RankId> local, std::vector<RankId> remote) {
  const int context = next_context_++;
  auto a = std::make_shared<Comm::State>();
  a->context = context;
  a->members = local;
  a->inter = true;
  a->remote = remote;
  auto b = std::make_shared<Comm::State>();
  b->context = context;
  b->members = std::move(remote);
  b->inter = true;
  b->remote = std::move(local);
  return {Comm{std::move(a)}, Comm{std::move(b)}};
}

Proc& MpiSystem::create_proc(const std::string& host_name, std::string name,
                             bool migration_enabled,
                             const std::string& schema_name) {
  host::Host* h = network_->find_host(host_name);
  if (h == nullptr) {
    throw std::out_of_range("mpi: unknown host " + host_name);
  }
  const RankId id = next_rank_++;
  auto proc = std::unique_ptr<Proc>(new Proc(*this, id, *h, std::move(name)));
  proc->pid_ = h->processes().register_process(
      proc->name_, engine_->now(), migration_enabled, schema_name);
  Proc& ref = *proc;
  procs_.emplace(id, std::move(proc));
  exit_triggers_.emplace(id, std::make_unique<sim::Trigger>(*engine_));
  return ref;
}

void MpiSystem::start_app(Proc& proc, AppMain app) {
  auto wrapper = [](MpiSystem* system, RankId id, AppMain main) -> sim::Task<> {
    Proc* proc_ptr = system->find(id);
    assert(proc_ptr != nullptr);
    try {
      co_await main(*proc_ptr);
    } catch (const ProcMoved&) {
      // The logical process lives on at its new host; this fiber just ends.
      co_return;
    }
    system->terminate(id);
  };
  fibers_[proc.id()] = sim::Fiber::spawn(
      *engine_, wrapper(this, proc.id(), std::move(app)),
      "mpi." + proc.name());
}

std::vector<RankId> MpiSystem::launch_world(
    const std::vector<std::string>& hosts, AppMain app,
    const std::string& name, bool migration_enabled,
    const std::string& schema_name) {
  std::vector<RankId> members;
  std::vector<Proc*> created;
  members.reserve(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    Proc& proc = create_proc(hosts[i], name + "." + std::to_string(i),
                             migration_enabled, schema_name);
    members.push_back(proc.id());
    created.push_back(&proc);
  }
  const Comm world = make_comm(members);
  for (Proc* proc : created) {
    proc->world_ = world;
    start_app(*proc, app);
  }
  return members;
}

RankId MpiSystem::launch(const std::string& host_name, AppMain app,
                         const std::string& name, bool migration_enabled,
                         const std::string& schema_name) {
  return launch_world({host_name}, std::move(app), name, migration_enabled,
                      schema_name)
      .front();
}

RankId MpiSystem::launch_exact(const std::string& host_name, AppMain app,
                               const std::string& name,
                               bool migration_enabled,
                               const std::string& schema_name) {
  Proc& proc = create_proc(host_name, name, migration_enabled, schema_name);
  proc.world_ = make_comm({proc.id()});
  start_app(proc, std::move(app));
  return proc.id();
}

bool MpiSystem::kill(RankId id) {
  if (!alive(id)) {
    return false;
  }
  const auto fiber_it = fibers_.find(id);
  if (fiber_it != fibers_.end()) {
    fiber_it->second.kill();
  }
  terminate(id);
  return true;
}

Proc* MpiSystem::find(RankId id) const {
  const auto it = procs_.find(id);
  return it == procs_.end() ? nullptr : it->second.get();
}

Proc* MpiSystem::find_by_pid(const std::string& host_name,
                             host::Pid pid) const {
  for (const auto& [id, proc] : procs_) {
    if (proc->pid() == pid && proc->host().name() == host_name) {
      return proc.get();
    }
  }
  return nullptr;
}

void MpiSystem::relocate(Proc& proc, host::Host& destination) {
  host::Host& old_host = proc.host();
  if (&old_host == &destination) {
    return;
  }
  const host::ProcessInfo* info = old_host.processes().find(proc.pid());
  const bool migration_enabled = info != nullptr && info->migration_enabled;
  const std::string schema_name = info != nullptr ? info->schema_name : "";
  const double start_time = info != nullptr ? info->start_time : engine_->now();
  old_host.processes().deregister(proc.pid());
  proc.host_ = &destination;
  proc.pid_ = destination.processes().register_process(
      proc.name(), start_time, migration_enabled, schema_name);
  ARS_LOG_INFO("mpi", "proc " << proc.name() << " relocated "
                              << old_host.name() << " -> "
                              << destination.name());
}

void MpiSystem::terminate(RankId id) {
  const auto it = procs_.find(id);
  if (it == procs_.end()) {
    return;
  }
  Proc& proc = *it->second;
  proc.host().processes().deregister(proc.pid());
  procs_.erase(it);
  fibers_.erase(id);  // drops the handle; the fiber finishes on its own
  const auto trig = exit_triggers_.find(id);
  if (trig != exit_triggers_.end()) {
    trig->second->fire();
  }
}

void MpiSystem::inject(RankId id, MpiMessage message) {
  if (Proc* proc = find(id)) {
    proc->deliver(std::move(message));
  }
}

sim::Task<> MpiSystem::wait_for_exit(RankId id) {
  if (!alive(id)) {
    co_return;
  }
  const auto it = exit_triggers_.find(id);
  if (it != exit_triggers_.end()) {
    co_await it->second->wait();
  }
}

sim::Task<> MpiSystem::route(RankId from, RankId to, double size_bytes) {
  const Proc* sender = find(from);
  const std::string src_host =
      sender != nullptr ? sender->host().name() : std::string{};
  Proc* receiver = find(to);
  if (receiver == nullptr) {
    throw std::runtime_error("mpi: send to dead process " +
                             std::to_string(to));
  }
  const double wire = size_bytes + options_.message_overhead_bytes;
  std::string at = receiver->host().name();
  (void)co_await network_->transfer(src_host, at, wire);
  // Forwarding: if the destination migrated while the bytes were in flight,
  // hop again from the addressed host to the current one (HPCM's
  // communication-state transfer).
  while (true) {
    receiver = find(to);
    if (receiver == nullptr) {
      throw std::runtime_error("mpi: receiver died mid-flight " +
                               std::to_string(to));
    }
    const std::string current = receiver->host().name();
    if (current == at) {
      co_return;
    }
    ARS_LOG_DEBUG("mpi", "forwarding message for proc " << to << " from "
                                                        << at << " to "
                                                        << current);
    (void)co_await network_->transfer(at, current, wire);
    at = current;
  }
}

}  // namespace ars::mpi
