#include "ars/host/host.hpp"

#include <algorithm>

namespace ars::host {

Host::Host(sim::Engine& engine, HostSpec spec)
    : engine_(&engine),
      spec_(std::move(spec)),
      cpu_(engine, spec_.cpu_speed),
      loadavg_(engine, cpu_),
      memory_(spec_.memory_bytes),
      disk_() {
  disk_.add_mount("/", spec_.disk_bytes);
  loadavg_.start();
}

double Host::cpu_utilization(double window) noexcept {
  if (window <= 0.0) {
    return 0.0;
  }
  const double now = engine_->now();
  const double begin = std::max(0.0, now - window);
  const double span = now - begin;
  if (span <= 0.0) {
    return 0.0;
  }
  return std::clamp(cpu_.busy_between(begin, now) / span, 0.0, 1.0);
}

}  // namespace ars::host
