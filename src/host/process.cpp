#include "ars/host/process.hpp"

namespace ars::host {

Pid ProcessTable::register_process(std::string name, double start_time,
                                   bool migration_enabled,
                                   std::string schema_name) {
  const Pid pid = next_pid_++;
  ProcessInfo info;
  info.pid = pid;
  info.name = std::move(name);
  info.start_time = start_time;
  info.migration_enabled = migration_enabled;
  info.schema_name = std::move(schema_name);
  table_.emplace(pid, std::move(info));
  return pid;
}

void ProcessTable::deregister(Pid pid) { table_.erase(pid); }

ProcessInfo* ProcessTable::find(Pid pid) {
  const auto it = table_.find(pid);
  return it == table_.end() ? nullptr : &it->second;
}

const ProcessInfo* ProcessTable::find(Pid pid) const {
  const auto it = table_.find(pid);
  return it == table_.end() ? nullptr : &it->second;
}

bool ProcessTable::raise(Pid pid, int signo) {
  ProcessInfo* info = find(pid);
  if (info == nullptr) {
    return false;
  }
  if (info->signal_handler) {
    info->signal_handler(signo);
  } else {
    info->pending_signals.insert(signo);
  }
  return true;
}

bool ProcessTable::consume_signal(Pid pid, int signo) {
  ProcessInfo* info = find(pid);
  if (info == nullptr) {
    return false;
  }
  return info->pending_signals.erase(signo) > 0;
}

void ProcessTable::set_signal_handler(Pid pid,
                                      std::function<void(int)> handler) {
  if (ProcessInfo* info = find(pid)) {
    info->signal_handler = std::move(handler);
  }
}

std::vector<ProcessInfo> ProcessTable::snapshot() const {
  std::vector<ProcessInfo> out;
  out.reserve(table_.size());
  for (const auto& [pid, info] : table_) {
    out.push_back(info);
  }
  return out;
}

}  // namespace ars::host
