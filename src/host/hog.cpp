#include "ars/host/hog.hpp"

namespace ars::host {

CpuHog::CpuHog(Host& target, Options options)
    : host_(&target), options_(std::move(options)) {}

sim::Task<> CpuHog::worker(double until) {
  auto& engine = host_->engine();
  while (until < 0.0 || engine.now() < until) {
    double chunk = options_.slice;
    if (until >= 0.0) {
      // Never request work beyond the deadline even on an idle CPU.
      chunk = std::min(chunk, (until - engine.now()) * host_->cpu().speed());
      if (chunk <= 0.0) {
        break;
      }
    }
    co_await host_->cpu().compute(chunk);
  }
}

void CpuHog::start() {
  if (running_) {
    return;
  }
  running_ = true;
  auto& engine = host_->engine();
  const double until =
      options_.duration < 0.0 ? -1.0 : engine.now() + options_.duration;
  for (int i = 0; i < options_.threads; ++i) {
    const std::string name = options_.name + "#" + std::to_string(i);
    pids_.push_back(
        host_->processes().register_process(name, engine.now()));
    fibers_.push_back(sim::Fiber::spawn(engine, worker(until), name));
  }
  host_->set_ambient_process_count(host_->ambient_process_count() +
                                   options_.ambient_process_delta);
}

void CpuHog::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (auto& fiber : fibers_) {
    fiber.kill();
  }
  fibers_.clear();
  for (const Pid pid : pids_) {
    host_->processes().deregister(pid);
  }
  pids_.clear();
  host_->set_ambient_process_count(host_->ambient_process_count() -
                                   options_.ambient_process_delta);
}

DutyCycleHog::DutyCycleHog(Host& target, Options options)
    : host_(&target), options_(std::move(options)) {}

sim::Task<> DutyCycleHog::worker() {
  auto& engine = host_->engine();
  const double busy = options_.duty * options_.period;
  const double idle = options_.period - busy;
  while (true) {
    if (busy > 0.0) {
      // Demand enough work to stay busy `busy` seconds at the achieved
      // rate; under contention the duty fraction degrades naturally.
      co_await host_->cpu().compute(busy * host_->cpu().speed());
    }
    if (idle > 0.0) {
      co_await sim::delay(engine, idle);
    }
  }
}

void DutyCycleHog::start() {
  if (running_) {
    return;
  }
  running_ = true;
  fiber_ = sim::Fiber::spawn(host_->engine(), worker(), options_.name);
}

void DutyCycleHog::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  fiber_.kill();
}

}  // namespace ars::host
