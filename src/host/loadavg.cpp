#include "ars/host/loadavg.hpp"

namespace ars::host {

LoadAverage::LoadAverage(sim::Engine& engine, const CpuModel& cpu,
                         double sample_period)
    : engine_(&engine), cpu_(&cpu), sample_period_(sample_period) {
  constexpr double kWindows[3] = {60.0, 300.0, 900.0};
  for (std::size_t i = 0; i < 3; ++i) {
    decay_[i] = std::exp(-sample_period_ / kWindows[i]);
  }
}

void LoadAverage::start() {
  if (running_) {
    return;
  }
  running_ = true;
  timer_ = engine_->schedule_after(sample_period_, [this] { sample(); });
}

void LoadAverage::stop() {
  running_ = false;
  timer_.cancel();
}

void LoadAverage::sample() {
  // Mean run-queue length over the elapsed period (alias-free for
  // periodic duty-cycle workloads), plus the ambient baseline.
  const double job_seconds = cpu_->cumulative_job_seconds();
  const double n =
      (job_seconds - last_job_seconds_) / sample_period_ + ambient_;
  last_job_seconds_ = job_seconds;
  for (std::size_t i = 0; i < 3; ++i) {
    loads_[i] = loads_[i] * decay_[i] + n * (1.0 - decay_[i]);
  }
  if (running_) {
    timer_ = engine_->schedule_after(sample_period_, [this] { sample(); });
  }
}

}  // namespace ars::host
