#include "ars/host/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ars::host {

namespace {
// Work remainders below this are treated as complete; the value is far below
// any observable timescale in the experiments (nano-seconds of CPU time).
constexpr double kWorkEpsilon = 1e-9;
// Completion events must strictly advance virtual time: below one ulp of a
// large `now`, now + delay == now and the loop would spin forever.
constexpr double kMinCompletionDelay = 1e-9;
}  // namespace

CpuModel::CpuModel(sim::Engine& engine, double speed)
    : engine_(&engine), speed_(speed), last_update_(engine.now()) {
  assert(speed > 0.0 && "CPU speed must be positive");
}

CpuModel::~CpuModel() {
  completion_event_.cancel();
  assert(jobs_.empty() && "CpuModel destroyed with active jobs");
}

void CpuModel::advance() {
  const double now = engine_->now();
  const double dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  if (!jobs_.empty()) {
    const double rate = speed_ / static_cast<double>(jobs_.size());
    for (auto* job : jobs_) {
      job->remaining_ = std::max(job->remaining_ - dt * rate, 0.0);
    }
    busy_accum_ += dt;
    job_seconds_ += dt * static_cast<double>(jobs_.size());
    record_busy(last_update_, now);
  }
  last_update_ = now;
}

double CpuModel::cumulative_job_seconds() const noexcept {
  return job_seconds_ + (engine_->now() - last_update_) *
                            static_cast<double>(jobs_.size());
}

void CpuModel::record_busy(double begin, double end) {
  if (!busy_segments_.empty() && busy_segments_.back().end >= begin) {
    busy_segments_.back().end = end;  // extend the contiguous busy period
  } else {
    busy_segments_.push_back(BusySegment{begin, end});
  }
  const double horizon = engine_->now() - history_retention_;
  while (!busy_segments_.empty() && busy_segments_.front().end < horizon) {
    busy_segments_.pop_front();
  }
}

double CpuModel::busy_between(double t0, double t1) const noexcept {
  double busy = 0.0;
  for (const auto& segment : busy_segments_) {
    busy += std::max(0.0, std::min(segment.end, t1) -
                              std::max(segment.begin, t0));
  }
  if (!jobs_.empty()) {
    // Ongoing busy period not yet folded into the history.
    busy += std::max(0.0, std::min(engine_->now(), t1) -
                              std::max(last_update_, t0));
  }
  return busy;
}

void CpuModel::reschedule_completion() {
  completion_event_.cancel();
  if (jobs_.empty()) {
    return;
  }
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto* job : jobs_) {
    min_remaining = std::min(min_remaining, job->remaining_);
  }
  const double until_done =
      min_remaining * static_cast<double>(jobs_.size()) / speed_;
  completion_event_ = engine_->schedule_after(
      std::max(until_done, kMinCompletionDelay),
      [this] { on_completion_event(); });
}

void CpuModel::on_completion_event() {
  advance();
  // Complete every job that has exhausted its work; resume through events so
  // completions at the same instant run in job order, deterministically.
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    ComputeAwaiter* job = *it;
    if (job->remaining_ <= kWorkEpsilon) {
      it = jobs_.erase(it);
      job->registered_ = false;
      job->completed_ = true;
      const auto handle = job->handle_;
      job->resume_event_ =
          engine_->schedule_after(0.0, [handle] { handle.resume(); });
    } else {
      ++it;
    }
  }
  reschedule_completion();
}

void CpuModel::add_job(ComputeAwaiter* job) {
  advance();
  jobs_.push_back(job);
  reschedule_completion();
}

void CpuModel::remove_job(ComputeAwaiter* job) {
  advance();
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
  reschedule_completion();
}

void CpuModel::set_speed(double speed) {
  assert(speed > 0.0 && "CPU speed must be positive");
  advance();  // settle progress at the old rate first
  speed_ = speed;
  reschedule_completion();
}

double CpuModel::cumulative_busy() const noexcept {
  double busy = busy_accum_;
  if (!jobs_.empty()) {
    busy += engine_->now() - last_update_;
  }
  return busy;
}

CpuModel::ComputeAwaiter::~ComputeAwaiter() {
  if (registered_) {
    cpu_->remove_job(this);
  }
  resume_event_.cancel();
}

void CpuModel::ComputeAwaiter::await_suspend(std::coroutine_handle<> h) {
  handle_ = h;
  remaining_ = work_;
  registered_ = true;
  cpu_->add_job(this);
}

}  // namespace ars::host
