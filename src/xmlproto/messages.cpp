#include "ars/xmlproto/messages.hpp"

#include <functional>
#include <map>

#include "ars/support/strings.hpp"
#include "ars/xmlproto/xml.hpp"

namespace ars::xmlproto {

using support::Expected;
using support::make_error;
using support::parse_double;
using support::parse_int;

namespace {

// ---- field helpers --------------------------------------------------------

void put(XmlNode& parent, const std::string& name, const std::string& value) {
  parent.add_child(name).set_text(value);
}
void put(XmlNode& parent, const std::string& name, double value) {
  put(parent, name, support::format_fixed(value, 6));
}
void put(XmlNode& parent, const std::string& name, int value) {
  put(parent, name, std::to_string(value));
}
void put(XmlNode& parent, const std::string& name, std::uint64_t value) {
  put(parent, name, std::to_string(value));
}
void put(XmlNode& parent, const std::string& name, bool value) {
  put(parent, name, std::string(value ? "true" : "false"));
}

Expected<std::string> need_text(const XmlNode& node, const std::string& name) {
  const XmlNode* c = node.child(name);
  if (c == nullptr) {
    return make_error("proto_decode", "missing field <" + name + "> in <" +
                                          node.name() + ">");
  }
  return c->text();
}

Expected<double> need_double(const XmlNode& node, const std::string& name) {
  auto text = need_text(node, name);
  if (!text.has_value()) {
    return text.error();
  }
  const auto value = parse_double(*text);
  if (!value.has_value()) {
    return make_error("proto_decode",
                      "field <" + name + "> is not a number: " + *text);
  }
  return *value;
}

Expected<std::int64_t> need_int(const XmlNode& node, const std::string& name) {
  auto text = need_text(node, name);
  if (!text.has_value()) {
    return text.error();
  }
  const auto value = parse_int(*text);
  if (!value.has_value()) {
    return make_error("proto_decode",
                      "field <" + name + "> is not an integer: " + *text);
  }
  return *value;
}

Expected<bool> need_bool(const XmlNode& node, const std::string& name) {
  auto text = need_text(node, name);
  if (!text.has_value()) {
    return text.error();
  }
  if (*text == "true") return true;
  if (*text == "false") return false;
  return make_error("proto_decode",
                    "field <" + name + "> is not a boolean: " + *text);
}

// ---- per-type encoders ----------------------------------------------------

void encode_static_info(XmlNode& parent, const StaticInfo& info) {
  XmlNode& n = parent.add_child("static");
  put(n, "host", info.host);
  put(n, "ip", info.ip);
  put(n, "os", info.os);
  put(n, "memory", info.memory_bytes);
  put(n, "disk", info.disk_bytes);
  put(n, "cpu_speed", info.cpu_speed);
  put(n, "byte_order", info.byte_order);
}

Expected<StaticInfo> decode_static_info(const XmlNode& parent) {
  const XmlNode* n = parent.child("static");
  if (n == nullptr) {
    return make_error("proto_decode", "missing <static> block");
  }
  StaticInfo info;
  auto host = need_text(*n, "host");
  if (!host.has_value()) return host.error();
  info.host = *host;
  info.ip = n->child_text_or("ip", "");
  info.os = n->child_text_or("os", "");
  auto memory = need_int(*n, "memory");
  if (!memory.has_value()) return memory.error();
  info.memory_bytes = static_cast<std::uint64_t>(*memory);
  auto disk = need_int(*n, "disk");
  if (!disk.has_value()) return disk.error();
  info.disk_bytes = static_cast<std::uint64_t>(*disk);
  auto speed = need_double(*n, "cpu_speed");
  if (!speed.has_value()) return speed.error();
  info.cpu_speed = *speed;
  info.byte_order = n->child_text_or("byte_order", "big");
  return info;
}

void encode_status(XmlNode& parent, const DynamicStatus& status) {
  XmlNode& n = parent.add_child("status");
  put(n, "host", status.host);
  put(n, "state", status.state);
  put(n, "load1", status.load1);
  put(n, "load5", status.load5);
  put(n, "cpu_util", status.cpu_util);
  put(n, "processes", status.processes);
  put(n, "mem_avail_pct", status.mem_available_pct);
  put(n, "disk_avail", status.disk_available);
  put(n, "net_in", status.net_in_bps);
  put(n, "net_out", status.net_out_bps);
  put(n, "sockets", status.sockets_established);
  put(n, "timestamp", status.timestamp);
}

Expected<DynamicStatus> decode_status(const XmlNode& parent) {
  const XmlNode* n = parent.child("status");
  if (n == nullptr) {
    return make_error("proto_decode", "missing <status> block");
  }
  DynamicStatus s;
  auto host = need_text(*n, "host");
  if (!host.has_value()) return host.error();
  s.host = *host;
  auto state = need_text(*n, "state");
  if (!state.has_value()) return state.error();
  s.state = *state;
  auto load1 = need_double(*n, "load1");
  if (!load1.has_value()) return load1.error();
  s.load1 = *load1;
  auto load5 = need_double(*n, "load5");
  if (!load5.has_value()) return load5.error();
  s.load5 = *load5;
  auto util = need_double(*n, "cpu_util");
  if (!util.has_value()) return util.error();
  s.cpu_util = *util;
  auto processes = need_int(*n, "processes");
  if (!processes.has_value()) return processes.error();
  s.processes = static_cast<int>(*processes);
  auto mem = need_double(*n, "mem_avail_pct");
  if (!mem.has_value()) return mem.error();
  s.mem_available_pct = *mem;
  auto disk = need_int(*n, "disk_avail");
  if (!disk.has_value()) return disk.error();
  s.disk_available = static_cast<std::uint64_t>(*disk);
  auto in = need_double(*n, "net_in");
  if (!in.has_value()) return in.error();
  s.net_in_bps = *in;
  auto out = need_double(*n, "net_out");
  if (!out.has_value()) return out.error();
  s.net_out_bps = *out;
  auto sockets = need_int(*n, "sockets");
  if (!sockets.has_value()) return sockets.error();
  s.sockets_established = static_cast<int>(*sockets);
  auto ts = need_double(*n, "timestamp");
  if (!ts.has_value()) return ts.error();
  s.timestamp = *ts;
  return s;
}

struct Encoder {
  XmlNode& root;

  void operator()(const RegisterMsg& m) const {
    root.set_attr("type", "register");
    encode_static_info(root, m.info);
    put(root, "monitor_port", m.monitor_port);
    put(root, "commander_port", m.commander_port);
  }
  void operator()(const UpdateMsg& m) const {
    root.set_attr("type", "update");
    encode_status(root, m.status);
  }
  void operator()(const ConsultMsg& m) const {
    root.set_attr("type", "consult");
    put(root, "host", m.host);
    put(root, "reason", m.reason);
    // Hierarchy-routing fields ride along only when set, so a plain
    // monitor consult keeps its original compact form.
    if (!m.origin_registry.empty()) {
      put(root, "origin_registry", m.origin_registry);
    }
    if (m.pid != 0) {
      put(root, "pid", m.pid);
    }
    if (!m.process_name.empty()) {
      put(root, "process_name", m.process_name);
    }
    if (!m.schema_name.empty()) {
      put(root, "schema_name", m.schema_name);
    }
    if (m.commander_port != 0) {
      put(root, "commander_port", m.commander_port);
    }
  }
  void operator()(const UpdateBatchMsg& m) const {
    root.set_attr("type", "update_batch");
    for (const LeaseRenewal& renewal : m.renewals) {
      XmlNode& n = root.add_child("renewal");
      put(n, "host", renewal.host);
      put(n, "state", renewal.state);
      put(n, "timestamp", renewal.timestamp);
    }
  }
  void operator()(const MigrateCmd& m) const {
    root.set_attr("type", "migrate");
    put(root, "pid", m.pid);
    put(root, "process_name", m.process_name);
    put(root, "dest_host", m.dest_host);
    put(root, "dest_ip", m.dest_ip);
    put(root, "dest_port", m.dest_port);
    put(root, "schema_name", m.schema_name);
  }
  void operator()(const AckMsg& m) const {
    root.set_attr("type", "ack");
    put(root, "of", m.of);
    put(root, "ok", m.ok);
    put(root, "detail", m.detail);
  }
  void operator()(const ProcessRegisterMsg& m) const {
    root.set_attr("type", "process_register");
    put(root, "host", m.host);
    put(root, "pid", m.pid);
    put(root, "name", m.name);
    put(root, "start_time", m.start_time);
    put(root, "migration_enabled", m.migration_enabled);
    put(root, "schema_name", m.schema_name);
  }
  void operator()(const ProcessDeregisterMsg& m) const {
    root.set_attr("type", "process_deregister");
    put(root, "host", m.host);
    put(root, "pid", m.pid);
  }
  void operator()(const HealthReportMsg& m) const {
    root.set_attr("type", "health");
    put(root, "registry_host", m.registry_host);
    put(root, "registry_port", m.registry_port);
    put(root, "free_hosts", m.free_hosts);
    put(root, "busy_hosts", m.busy_hosts);
    put(root, "overloaded_hosts", m.overloaded_hosts);
    put(root, "timestamp", m.timestamp);
  }
  void operator()(const RecommendMsg& m) const {
    root.set_attr("type", "recommend");
    put(root, "found", m.found);
    put(root, "dest_host", m.dest_host);
    put(root, "dest_ip", m.dest_ip);
    put(root, "dest_port", m.dest_port);
  }
  void operator()(const EvacuateMsg& m) const {
    root.set_attr("type", "evacuate");
    put(root, "host", m.host);
    put(root, "reason", m.reason);
  }
  void operator()(const RelaunchCmd& m) const {
    root.set_attr("type", "relaunch");
    put(root, "process_name", m.process_name);
    put(root, "lost_host", m.lost_host);
    put(root, "schema_name", m.schema_name);
  }
  void operator()(const MigrationOutcomeMsg& m) const {
    root.set_attr("type", "migration_outcome");
    put(root, "process", m.process);
    put(root, "source", m.source);
    put(root, "destination", m.destination);
    put(root, "outcome", m.outcome);
    // Failure detail rides along only on aborts/rollbacks, so a committed
    // outcome keeps its compact form.
    if (!m.reason.empty()) {
      put(root, "reason", m.reason);
    }
    if (!m.phase.empty()) {
      put(root, "phase", m.phase);
    }
    // Pre-copy accounting rides along only when rounds actually shipped,
    // so stop-and-copy outcomes keep the legacy wire form byte-for-byte.
    if (m.precopy_rounds > 0) {
      put(root, "precopy_rounds", m.precopy_rounds);
      put(root, "precopy_bytes", m.precopy_bytes);
    }
  }
  void operator()(const ResizeCmd& m) const {
    root.set_attr("type", "resize");
    put(root, "job", m.job);
    put(root, "verb", m.verb);
    put(root, "delta", m.delta);
    if (!m.strategy.empty()) {
      put(root, "strategy", m.strategy);
    }
    for (const std::string& host : m.hosts) {
      put(root, "target", host);
    }
  }
  void operator()(const ResizeOutcomeMsg& m) const {
    root.set_attr("type", "resize_outcome");
    put(root, "job", m.job);
    put(root, "verb", m.verb);
    put(root, "delta", m.delta);
    put(root, "outcome", m.outcome);
    put(root, "ranks_after", m.ranks_after);
    // Same compact-commit rule as MigrationOutcomeMsg.
    if (!m.reason.empty()) {
      put(root, "reason", m.reason);
    }
    if (!m.phase.empty()) {
      put(root, "phase", m.phase);
    }
  }
  void operator()(const CkptIoRequestMsg& m) const {
    root.set_attr("type", "ckpt_io_request");
    put(root, "host", m.host);
    put(root, "process", m.process);
    put(root, "verb", m.verb);
    // bytes/risk only matter on "request"; done/abort keep the compact
    // three-field form.
    if (m.bytes > 0) {
      put(root, "bytes", m.bytes);
    }
    if (m.risk > 0.0) {
      put(root, "risk", m.risk);
    }
  }
  void operator()(const CkptIoGrantMsg& m) const {
    root.set_attr("type", "ckpt_io_grant");
    put(root, "process", m.process);
    put(root, "verb", m.verb);
    if (m.retry_after > 0.0) {
      put(root, "retry_after", m.retry_after);
    }
  }
};

// ---- per-type decoders ----------------------------------------------------

Expected<ProtocolMessage> decode_register(const XmlNode& root) {
  RegisterMsg m;
  auto info = decode_static_info(root);
  if (!info.has_value()) return info.error();
  m.info = *info;
  auto monitor_port = need_int(root, "monitor_port");
  if (!monitor_port.has_value()) return monitor_port.error();
  m.monitor_port = static_cast<int>(*monitor_port);
  auto commander_port = need_int(root, "commander_port");
  if (!commander_port.has_value()) return commander_port.error();
  m.commander_port = static_cast<int>(*commander_port);
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_update(const XmlNode& root) {
  auto status = decode_status(root);
  if (!status.has_value()) return status.error();
  return ProtocolMessage{UpdateMsg{*status}};
}

Expected<ProtocolMessage> decode_consult(const XmlNode& root) {
  ConsultMsg m;
  auto host = need_text(root, "host");
  if (!host.has_value()) return host.error();
  m.host = *host;
  m.reason = root.child_text_or("reason", "");
  // Optional hierarchy-routing fields (absent in plain monitor consults
  // and in documents from older senders).
  m.origin_registry = root.child_text_or("origin_registry", "");
  const auto pid = parse_int(root.child_text_or("pid", "0"));
  m.pid = pid.has_value() ? static_cast<int>(*pid) : 0;
  m.process_name = root.child_text_or("process_name", "");
  m.schema_name = root.child_text_or("schema_name", "");
  const auto commander_port =
      parse_int(root.child_text_or("commander_port", "0"));
  m.commander_port =
      commander_port.has_value() ? static_cast<int>(*commander_port) : 0;
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_update_batch(const XmlNode& root) {
  UpdateBatchMsg m;
  for (const XmlNode* n : root.children_named("renewal")) {
    LeaseRenewal renewal;
    auto host = need_text(*n, "host");
    if (!host.has_value()) return host.error();
    renewal.host = *host;
    auto state = need_text(*n, "state");
    if (!state.has_value()) return state.error();
    renewal.state = *state;
    auto ts = need_double(*n, "timestamp");
    if (!ts.has_value()) return ts.error();
    renewal.timestamp = *ts;
    m.renewals.push_back(std::move(renewal));
  }
  return ProtocolMessage{std::move(m)};
}

Expected<ProtocolMessage> decode_migrate(const XmlNode& root) {
  MigrateCmd m;
  auto pid = need_int(root, "pid");
  if (!pid.has_value()) return pid.error();
  m.pid = static_cast<int>(*pid);
  m.process_name = root.child_text_or("process_name", "");
  auto dest = need_text(root, "dest_host");
  if (!dest.has_value()) return dest.error();
  m.dest_host = *dest;
  m.dest_ip = root.child_text_or("dest_ip", "");
  auto port = need_int(root, "dest_port");
  if (!port.has_value()) return port.error();
  m.dest_port = static_cast<int>(*port);
  m.schema_name = root.child_text_or("schema_name", "");
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_ack(const XmlNode& root) {
  AckMsg m;
  auto of = need_text(root, "of");
  if (!of.has_value()) return of.error();
  m.of = *of;
  auto ok = need_bool(root, "ok");
  if (!ok.has_value()) return ok.error();
  m.ok = *ok;
  m.detail = root.child_text_or("detail", "");
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_process_register(const XmlNode& root) {
  ProcessRegisterMsg m;
  auto host = need_text(root, "host");
  if (!host.has_value()) return host.error();
  m.host = *host;
  auto pid = need_int(root, "pid");
  if (!pid.has_value()) return pid.error();
  m.pid = static_cast<int>(*pid);
  m.name = root.child_text_or("name", "");
  auto start = need_double(root, "start_time");
  if (!start.has_value()) return start.error();
  m.start_time = *start;
  auto enabled = need_bool(root, "migration_enabled");
  if (!enabled.has_value()) return enabled.error();
  m.migration_enabled = *enabled;
  m.schema_name = root.child_text_or("schema_name", "");
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_process_deregister(const XmlNode& root) {
  ProcessDeregisterMsg m;
  auto host = need_text(root, "host");
  if (!host.has_value()) return host.error();
  m.host = *host;
  auto pid = need_int(root, "pid");
  if (!pid.has_value()) return pid.error();
  m.pid = static_cast<int>(*pid);
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_health(const XmlNode& root) {
  HealthReportMsg m;
  auto host = need_text(root, "registry_host");
  if (!host.has_value()) return host.error();
  m.registry_host = *host;
  const auto port = parse_int(root.child_text_or("registry_port", "0"));
  m.registry_port = port.has_value() ? static_cast<int>(*port) : 0;
  auto free_hosts = need_int(root, "free_hosts");
  if (!free_hosts.has_value()) return free_hosts.error();
  m.free_hosts = static_cast<int>(*free_hosts);
  auto busy_hosts = need_int(root, "busy_hosts");
  if (!busy_hosts.has_value()) return busy_hosts.error();
  m.busy_hosts = static_cast<int>(*busy_hosts);
  auto overloaded = need_int(root, "overloaded_hosts");
  if (!overloaded.has_value()) return overloaded.error();
  m.overloaded_hosts = static_cast<int>(*overloaded);
  auto ts = need_double(root, "timestamp");
  if (!ts.has_value()) return ts.error();
  m.timestamp = *ts;
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_evacuate(const XmlNode& root) {
  EvacuateMsg m;
  auto host = need_text(root, "host");
  if (!host.has_value()) return host.error();
  m.host = *host;
  m.reason = root.child_text_or("reason", "");
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_relaunch(const XmlNode& root) {
  RelaunchCmd m;
  auto name = need_text(root, "process_name");
  if (!name.has_value()) return name.error();
  m.process_name = *name;
  m.lost_host = root.child_text_or("lost_host", "");
  m.schema_name = root.child_text_or("schema_name", "");
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_migration_outcome(const XmlNode& root) {
  MigrationOutcomeMsg m;
  auto process = need_text(root, "process");
  if (!process.has_value()) return process.error();
  m.process = *process;
  auto source = need_text(root, "source");
  if (!source.has_value()) return source.error();
  m.source = *source;
  auto destination = need_text(root, "destination");
  if (!destination.has_value()) return destination.error();
  m.destination = *destination;
  auto outcome = need_text(root, "outcome");
  if (!outcome.has_value()) return outcome.error();
  m.outcome = *outcome;
  m.reason = root.child_text_or("reason", "");
  m.phase = root.child_text_or("phase", "");
  // Optional pre-copy accounting (absent from stop-and-copy outcomes and
  // from documents produced by pre-precopy senders).
  const auto rounds = parse_int(root.child_text_or("precopy_rounds", "0"));
  m.precopy_rounds = rounds.has_value() ? static_cast<int>(*rounds) : 0;
  const auto bytes = parse_int(root.child_text_or("precopy_bytes", "0"));
  m.precopy_bytes =
      bytes.has_value() && *bytes > 0 ? static_cast<std::uint64_t>(*bytes) : 0;
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_resize(const XmlNode& root) {
  ResizeCmd m;
  auto job = need_text(root, "job");
  if (!job.has_value()) return job.error();
  m.job = *job;
  auto verb = need_text(root, "verb");
  if (!verb.has_value()) return verb.error();
  m.verb = *verb;
  auto delta = need_int(root, "delta");
  if (!delta.has_value()) return delta.error();
  m.delta = static_cast<int>(*delta);
  m.strategy = root.child_text_or("strategy", "");
  for (const XmlNode* n : root.children_named("target")) {
    m.hosts.push_back(n->text());
  }
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_resize_outcome(const XmlNode& root) {
  ResizeOutcomeMsg m;
  auto job = need_text(root, "job");
  if (!job.has_value()) return job.error();
  m.job = *job;
  auto verb = need_text(root, "verb");
  if (!verb.has_value()) return verb.error();
  m.verb = *verb;
  auto delta = need_int(root, "delta");
  if (!delta.has_value()) return delta.error();
  m.delta = static_cast<int>(*delta);
  auto outcome = need_text(root, "outcome");
  if (!outcome.has_value()) return outcome.error();
  m.outcome = *outcome;
  auto ranks = need_int(root, "ranks_after");
  if (!ranks.has_value()) return ranks.error();
  m.ranks_after = static_cast<int>(*ranks);
  m.reason = root.child_text_or("reason", "");
  m.phase = root.child_text_or("phase", "");
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_ckpt_io_request(const XmlNode& root) {
  CkptIoRequestMsg m;
  auto host = need_text(root, "host");
  if (!host.has_value()) return host.error();
  m.host = *host;
  auto process = need_text(root, "process");
  if (!process.has_value()) return process.error();
  m.process = *process;
  auto verb = need_text(root, "verb");
  if (!verb.has_value()) return verb.error();
  m.verb = *verb;
  const auto bytes = parse_int(root.child_text_or("bytes", "0"));
  m.bytes =
      bytes.has_value() && *bytes > 0 ? static_cast<std::uint64_t>(*bytes) : 0;
  const auto risk = parse_double(root.child_text_or("risk", "0"));
  m.risk = risk.has_value() ? *risk : 0.0;
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_ckpt_io_grant(const XmlNode& root) {
  CkptIoGrantMsg m;
  auto process = need_text(root, "process");
  if (!process.has_value()) return process.error();
  m.process = *process;
  auto verb = need_text(root, "verb");
  if (!verb.has_value()) return verb.error();
  m.verb = *verb;
  const auto retry = parse_double(root.child_text_or("retry_after", "0"));
  m.retry_after = retry.has_value() ? *retry : 0.0;
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_recommend(const XmlNode& root) {
  RecommendMsg m;
  auto found = need_bool(root, "found");
  if (!found.has_value()) return found.error();
  m.found = *found;
  m.dest_host = root.child_text_or("dest_host", "");
  m.dest_ip = root.child_text_or("dest_ip", "");
  const auto port = parse_int(root.child_text_or("dest_port", "0"));
  m.dest_port = port.has_value() ? static_cast<int>(*port) : 0;
  return ProtocolMessage{m};
}

Expected<ProtocolMessage> decode_root(const XmlNode& root) {
  if (root.name() != "ars") {
    return make_error("proto_decode", "unexpected root <" + root.name() + ">");
  }
  const auto type = root.attr("type");
  if (!type.has_value()) {
    return make_error("proto_decode", "missing type attribute");
  }
  using DecodeFn = Expected<ProtocolMessage> (*)(const XmlNode&);
  static const std::map<std::string, DecodeFn> kDecoders = {
      {"register", decode_register},
      {"update", decode_update},
      {"update_batch", decode_update_batch},
      {"consult", decode_consult},
      {"migrate", decode_migrate},
      {"ack", decode_ack},
      {"process_register", decode_process_register},
      {"process_deregister", decode_process_deregister},
      {"health", decode_health},
      {"recommend", decode_recommend},
      {"evacuate", decode_evacuate},
      {"relaunch", decode_relaunch},
      {"migration_outcome", decode_migration_outcome},
      {"resize", decode_resize},
      {"resize_outcome", decode_resize_outcome},
      {"ckpt_io_request", decode_ckpt_io_request},
      {"ckpt_io_grant", decode_ckpt_io_grant},
  };
  const auto it = kDecoders.find(*type);
  if (it == kDecoders.end()) {
    return make_error("proto_decode", "unknown message type '" + *type + "'");
  }
  return it->second(root);
}

}  // namespace

std::string encode(const ProtocolMessage& message) {
  XmlNode root{"ars"};
  std::visit(Encoder{root}, message);
  return root.to_string();
}

std::string encode(const ProtocolMessage& message, const obs::TraceCtx& ctx) {
  XmlNode root{"ars"};
  std::visit(Encoder{root}, message);
  // The context rides as envelope attributes, emitted only when set (same
  // rule as ConsultMsg's routing fields) so a context-free message keeps
  // its pre-v2 byte layout.
  if (ctx.set()) {
    root.set_attr("txn", std::to_string(ctx.txn));
    if (ctx.parent_span != 0) {
      root.set_attr("pspan", std::to_string(ctx.parent_span));
    }
  }
  return root.to_string();
}

std::string message_type(const ProtocolMessage& message) {
  struct Namer {
    std::string operator()(const RegisterMsg&) const { return "register"; }
    std::string operator()(const UpdateMsg&) const { return "update"; }
    std::string operator()(const UpdateBatchMsg&) const {
      return "update_batch";
    }
    std::string operator()(const ConsultMsg&) const { return "consult"; }
    std::string operator()(const MigrateCmd&) const { return "migrate"; }
    std::string operator()(const AckMsg&) const { return "ack"; }
    std::string operator()(const ProcessRegisterMsg&) const {
      return "process_register";
    }
    std::string operator()(const ProcessDeregisterMsg&) const {
      return "process_deregister";
    }
    std::string operator()(const HealthReportMsg&) const { return "health"; }
    std::string operator()(const RecommendMsg&) const { return "recommend"; }
    std::string operator()(const EvacuateMsg&) const { return "evacuate"; }
    std::string operator()(const RelaunchCmd&) const { return "relaunch"; }
    std::string operator()(const MigrationOutcomeMsg&) const {
      return "migration_outcome";
    }
    std::string operator()(const ResizeCmd&) const { return "resize"; }
    std::string operator()(const ResizeOutcomeMsg&) const {
      return "resize_outcome";
    }
    std::string operator()(const CkptIoRequestMsg&) const {
      return "ckpt_io_request";
    }
    std::string operator()(const CkptIoGrantMsg&) const {
      return "ckpt_io_grant";
    }
  };
  return std::visit(Namer{}, message);
}

Expected<ProtocolMessage> decode(std::string_view wire) {
  auto doc = parse_xml(wire);
  if (!doc.has_value()) {
    return doc.error();
  }
  return decode_root(**doc);
}

Expected<Envelope> decode_envelope(std::string_view wire) {
  auto doc = parse_xml(wire);
  if (!doc.has_value()) {
    return doc.error();
  }
  const XmlNode& root = **doc;
  auto message = decode_root(root);
  if (!message.has_value()) {
    return message.error();
  }
  Envelope envelope{std::move(*message), {}};
  // Malformed context attrs degrade to "no context" rather than rejecting
  // the message: causality is advisory, the payload is not.
  if (const auto txn = root.attr("txn"); txn.has_value()) {
    if (const auto id = parse_int(*txn); id.has_value() && *id > 0) {
      envelope.trace.txn = static_cast<std::uint64_t>(*id);
      if (const auto pspan = root.attr("pspan"); pspan.has_value()) {
        if (const auto sid = parse_int(*pspan); sid.has_value() && *sid > 0) {
          envelope.trace.parent_span = static_cast<std::uint64_t>(*sid);
        }
      }
    }
  }
  return envelope;
}

}  // namespace ars::xmlproto
