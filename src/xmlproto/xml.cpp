#include "ars/xmlproto/xml.hpp"

#include <cctype>

#include "ars/support/strings.hpp"

namespace ars::xmlproto {

using support::Error;
using support::Expected;
using support::make_error;

XmlNode& XmlNode::add_child(std::string child_name) {
  children_.push_back(std::make_unique<XmlNode>(std::move(child_name)));
  return *children_.back();
}

const XmlNode* XmlNode::child(std::string_view child_name) const {
  for (const auto& c : children_) {
    if (c->name() == child_name) {
      return c.get();
    }
  }
  return nullptr;
}

XmlNode* XmlNode::child(std::string_view child_name) {
  for (const auto& c : children_) {
    if (c->name() == child_name) {
      return c.get();
    }
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    std::string_view child_name) const {
  std::vector<const XmlNode*> matches;
  for (const auto& c : children_) {
    if (c->name() == child_name) {
      matches.push_back(c.get());
    }
  }
  return matches;
}

std::string XmlNode::child_text_or(std::string_view child_name,
                                   std::string fallback) const {
  const XmlNode* c = child(child_name);
  return c == nullptr ? std::move(fallback) : c->text();
}

std::string xml_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void XmlNode::write(std::string& out) const {
  out += '<';
  out += name_;
  for (const auto& [key, value] : attrs_) {
    out += ' ';
    out += key;
    out += "=\"";
    out += xml_escape(value);
    out += '"';
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    return;
  }
  out += '>';
  out += xml_escape(text_);
  for (const auto& c : children_) {
    c->write(out);
  }
  out += "</";
  out += name_;
  out += '>';
}

std::string XmlNode::to_string() const {
  std::string out;
  write(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Expected<std::unique_ptr<XmlNode>> parse() {
    skip_prolog();
    auto root = parse_element();
    if (!root.has_value()) {
      return root;
    }
    skip_whitespace_and_comments();
    if (pos_ != input_.size()) {
      return fail("trailing content after root element");
    }
    return root;
  }

 private:
  Error fail(const std::string& message) const {
    return make_error("xml_parse",
                      message + " (at offset " + std::to_string(pos_) + ")");
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= input_.size(); }
  [[nodiscard]] char peek() const noexcept { return input_[pos_]; }
  [[nodiscard]] bool match(std::string_view token) const noexcept {
    return input_.substr(pos_, token.size()) == token;
  }

  void skip_whitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek())) != 0) {
      ++pos_;
    }
  }

  bool skip_comment() {
    if (!match("<!--")) {
      return false;
    }
    const auto end = input_.find("-->", pos_ + 4);
    pos_ = end == std::string_view::npos ? input_.size() : end + 3;
    return true;
  }

  void skip_whitespace_and_comments() {
    while (true) {
      skip_whitespace();
      if (!skip_comment()) {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_whitespace();
    if (match("<?xml")) {
      const auto end = input_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? input_.size() : end + 2;
    }
    skip_whitespace_and_comments();
  }

  static bool is_name_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string read_name() {
    const std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) {
      ++pos_;
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  Expected<std::string> read_entity() {
    // pos_ is at '&'.
    const auto end = input_.find(';', pos_);
    if (end == std::string_view::npos || end - pos_ > 8) {
      return fail("unterminated entity");
    }
    const std::string_view entity = input_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    if (entity == "amp") return std::string{"&"};
    if (entity == "lt") return std::string{"<"};
    if (entity == "gt") return std::string{">"};
    if (entity == "quot") return std::string{"\""};
    if (entity == "apos") return std::string{"'"};
    return fail("unknown entity '&" + std::string(entity) + ";'");
  }

  Expected<std::string> read_attr_value() {
    if (eof() || (peek() != '"' && peek() != '\'')) {
      return fail("expected quoted attribute value");
    }
    const char quote = peek();
    ++pos_;
    std::string value;
    while (!eof() && peek() != quote) {
      if (peek() == '&') {
        auto entity = read_entity();
        if (!entity.has_value()) {
          return entity;
        }
        value += *entity;
      } else {
        value += peek();
        ++pos_;
      }
    }
    if (eof()) {
      return fail("unterminated attribute value");
    }
    ++pos_;  // closing quote
    return value;
  }

  Expected<std::unique_ptr<XmlNode>> parse_element() {
    if (eof() || peek() != '<') {
      return fail("expected element start '<'");
    }
    ++pos_;
    const std::string name = read_name();
    if (name.empty()) {
      return fail("empty element name");
    }
    auto node = std::make_unique<XmlNode>(name);

    // Attributes.
    while (true) {
      skip_whitespace();
      if (eof()) {
        return fail("unterminated start tag <" + name);
      }
      if (peek() == '/' || peek() == '>') {
        break;
      }
      const std::string key = read_name();
      if (key.empty()) {
        return fail("malformed attribute in <" + name + ">");
      }
      skip_whitespace();
      if (eof() || peek() != '=') {
        return fail("expected '=' after attribute '" + key + "'");
      }
      ++pos_;
      skip_whitespace();
      auto value = read_attr_value();
      if (!value.has_value()) {
        return value.error();
      }
      node->set_attr(key, std::move(*value));
    }

    if (peek() == '/') {
      ++pos_;
      if (eof() || peek() != '>') {
        return fail("malformed self-closing tag <" + name);
      }
      ++pos_;
      return node;
    }
    ++pos_;  // '>'

    // Content: interleaved text and child elements.
    std::string text;
    while (true) {
      if (eof()) {
        return fail("unterminated element <" + name + ">");
      }
      if (peek() == '<') {
        if (skip_comment()) {
          continue;
        }
        if (match("</")) {
          pos_ += 2;
          const std::string close = read_name();
          if (close != name) {
            return fail("mismatched close tag </" + close + "> for <" + name +
                        ">");
          }
          skip_whitespace();
          if (eof() || peek() != '>') {
            return fail("malformed close tag </" + close);
          }
          ++pos_;
          node->set_text(std::string(support::trim(text)));
          return node;
        }
        auto c = parse_element();
        if (!c.has_value()) {
          return c;
        }
        node->adopt_child(std::move(*c));
      } else if (peek() == '&') {
        auto entity = read_entity();
        if (!entity.has_value()) {
          return entity.error();
        }
        text += *entity;
      } else {
        text += peek();
        ++pos_;
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<std::unique_ptr<XmlNode>> parse_xml(std::string_view input) {
  return Parser{input}.parse();
}

}  // namespace ars::xmlproto
