#include "ars/obs/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace ars::obs::critpath {

namespace {

std::uint64_t attr_u64(const JsonObject& attrs, const char* key) {
  const auto it = attrs.find(key);
  if (it == attrs.end() || !it->second.is_number()) {
    return 0;
  }
  const double value = it->second.as_number();
  return value > 0.0 ? static_cast<std::uint64_t>(value) : 0;
}

/// Span-name -> phase-name mapping for the migration breakdown.
const char* phase_of(const std::string& span_name) {
  if (span_name == "migration.spawn") {
    return "init";
  }
  if (span_name == "migration.precopy") {
    return "precopy";
  }
  if (span_name == "migration.collect") {
    return "collect";
  }
  if (span_name == "migration.eager") {
    return "eager";
  }
  if (span_name == "migration.ack") {
    return "ack";
  }
  if (span_name == "migration.transfer") {
    return "transfer";
  }
  if (span_name == "migration.restore") {
    return "restore";
  }
  return nullptr;
}

}  // namespace

support::Expected<std::vector<Event>> parse_jsonl(std::string_view jsonl) {
  std::vector<Event> events;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= jsonl.size()) {
    const std::size_t eol = jsonl.find('\n', pos);
    const std::string_view line =
        jsonl.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                        : eol - pos);
    pos = eol == std::string_view::npos ? jsonl.size() + 1 : eol + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
      continue;
    }
    auto doc = json_parse(line);
    if (!doc.has_value()) {
      return support::make_error(
          "trace.parse", "line " + std::to_string(line_no) + ": " +
                             doc.error().to_string());
    }
    if (!doc->is_object()) {
      return support::make_error(
          "trace.parse", "line " + std::to_string(line_no) + ": not an object");
    }
    const JsonObject& object = doc->as_object();
    Event event;
    const auto str = [&object](const char* key) -> std::string {
      const auto it = object.find(key);
      return it != object.end() && it->second.is_string()
                 ? it->second.as_string()
                 : std::string{};
    };
    const auto it_t = object.find("t");
    if (it_t == object.end() || !it_t->second.is_number()) {
      return support::make_error(
          "trace.parse", "line " + std::to_string(line_no) + ": missing t");
    }
    event.t = it_t->second.as_number();
    const std::string kind = str("kind");
    if (kind == "begin") {
      event.kind = Event::Kind::kBegin;
    } else if (kind == "end") {
      event.kind = Event::Kind::kEnd;
    } else if (kind == "instant") {
      event.kind = Event::Kind::kInstant;
    } else {
      return support::make_error(
          "trace.parse",
          "line " + std::to_string(line_no) + ": unknown kind '" + kind + "'");
    }
    event.name = str("name");
    event.category = str("cat");
    event.track = str("track");
    if (const auto it = object.find("span");
        it != object.end() && it->second.is_number()) {
      event.span = static_cast<std::uint64_t>(it->second.as_number());
    }
    if (const auto it = object.find("attrs");
        it != object.end() && it->second.is_object()) {
      event.attrs = it->second.as_object();
    }
    event.txn = attr_u64(event.attrs, "txn");
    event.pspan = attr_u64(event.attrs, "pspan");
    event.cause_txn = attr_u64(event.attrs, "cause_txn");
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<Transaction> group_transactions(const std::vector<Event>& events) {
  // Span-end events are not stamped (only the begin carries txn/pspan), so
  // first learn which transaction owns each span id.
  std::unordered_map<std::uint64_t, std::uint64_t> span_txn;
  for (const Event& event : events) {
    if (event.kind == Event::Kind::kBegin && event.txn != 0 &&
        event.span != 0) {
      span_txn.emplace(event.span, event.txn);
    }
  }
  std::map<std::uint64_t, Transaction> by_txn;
  for (const Event& event : events) {
    std::uint64_t txn = event.txn;
    if (txn == 0 && event.span != 0) {
      const auto it = span_txn.find(event.span);
      if (it != span_txn.end()) {
        txn = it->second;
      }
    }
    if (txn == 0) {
      continue;
    }
    Transaction& t = by_txn[txn];
    if (t.events.empty()) {
      t.txn = txn;
      t.begin = event.t;
      t.root_name = event.name;
    }
    t.end = std::max(t.end, event.t);
    if (event.cause_txn != 0 && t.cause_txn == 0) {
      t.cause_txn = event.cause_txn;
    }
    t.events.push_back(event);
  }

  std::vector<Transaction> out;
  out.reserve(by_txn.size());
  for (auto& [txn_id, t] : by_txn) {
    // Reconstruct spans (begin/end pairs) within the transaction.
    std::unordered_map<std::uint64_t, std::size_t> open;
    for (const Event& event : t.events) {
      if (event.kind == Event::Kind::kBegin) {
        Span span;
        span.id = event.span;
        span.name = event.name;
        span.track = event.track;
        span.begin = event.t;
        span.end = event.t;
        span.pspan = event.pspan;
        span.attrs = event.attrs;
        open.emplace(span.id, t.spans.size());
        t.spans.push_back(std::move(span));
      } else if (event.kind == Event::Kind::kEnd) {
        const auto it = open.find(event.span);
        if (it == open.end()) {
          continue;  // validated later: end without a begin
        }
        Span& span = t.spans[it->second];
        span.end = event.t;
        span.closed = true;
        for (const auto& [key, value] : event.attrs) {
          span.attrs.insert_or_assign(key, value);
        }
        open.erase(it);
      }
    }
    // Migration breakdown.
    for (const Span& span : t.spans) {
      if (!span.closed) {
        continue;
      }
      if (span.name == "migration") {
        t.has_migration = true;
        t.migration_s = span.end - span.begin;
        if (const auto it = span.attrs.find("outcome");
            it != span.attrs.end() && it->second.is_string()) {
          t.outcome = it->second.as_string();
        }
        continue;
      }
      if (const char* phase = phase_of(span.name)) {
        t.phase_s[phase] += span.end - span.begin;
      }
    }
    // Freeze = the stop-the-world phases only.  Pre-copy rounds overlap
    // application execution (the source keeps computing between
    // poll-points), so "precopy" is reported as its own phase and never
    // counted into the freeze window.  In pre-copy traces the init phase
    // runs inside the overlapped round 0 (there is no migration.spawn
    // span), so the same sum stays correct for both trace generations.
    for (const char* phase : {"init", "collect", "eager", "ack"}) {
      if (const auto it = t.phase_s.find(phase); it != t.phase_s.end()) {
        t.freeze_s += it->second;
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

Validation validate(const Transaction& txn) {
  Validation verdict;
  const auto problem = [&verdict](std::string text) {
    verdict.ok = false;
    verdict.problems.push_back(std::move(text));
  };
  if (txn.events.empty()) {
    problem("transaction has no events");
    return verdict;
  }
  std::unordered_map<std::uint64_t, const Span*> spans;
  int migrations = 0;
  for (const Span& span : txn.spans) {
    spans.emplace(span.id, &span);
    if (span.name == "migration") {
      ++migrations;
    }
  }
  if (migrations > 1) {
    problem("transaction holds " + std::to_string(migrations) +
            " migration spans (expected at most 1)");
  }
  // Orphans: every pspan reference must resolve inside the transaction.
  for (const Event& event : txn.events) {
    if (event.pspan != 0 && !spans.contains(event.pspan)) {
      problem("event '" + event.name + "' at t=" + std::to_string(event.t) +
              " references unknown parent span " +
              std::to_string(event.pspan));
    }
    if (event.kind == Event::Kind::kEnd && !spans.contains(event.span)) {
      problem("end of span " + std::to_string(event.span) + " ('" +
              event.name + "') has no begin in this transaction");
    }
  }
  // Cycles: walk each span's parent chain; it must terminate at 0.
  for (const Span& span : txn.spans) {
    std::unordered_set<std::uint64_t> seen{span.id};
    std::uint64_t parent = span.pspan;
    while (parent != 0) {
      if (!seen.insert(parent).second) {
        problem("span '" + span.name + "' (" + std::to_string(span.id) +
                ") sits on a parent cycle");
        break;
      }
      const auto it = spans.find(parent);
      if (it == spans.end()) {
        break;  // already reported as an orphan above
      }
      parent = it->second->pspan;
    }
  }
  return verdict;
}

double coverage_gap_s(const Transaction& txn) {
  const Span* migration = nullptr;
  for (const Span& span : txn.spans) {
    if (span.name == "migration" && span.closed) {
      migration = &span;
      break;
    }
  }
  if (migration == nullptr) {
    return 0.0;
  }
  // Union of the phase spans, clipped to the migration span.
  std::vector<std::pair<double, double>> intervals;
  for (const Span& span : txn.spans) {
    if (!span.closed || phase_of(span.name) == nullptr) {
      continue;
    }
    const double lo = std::max(span.begin, migration->begin);
    const double hi = std::min(span.end, migration->end);
    if (hi > lo) {
      intervals.emplace_back(lo, hi);
    }
  }
  std::sort(intervals.begin(), intervals.end());
  double covered = 0.0;
  double cursor = migration->begin;
  for (const auto& [lo, hi] : intervals) {
    const double from = std::max(lo, cursor);
    if (hi > from) {
      covered += hi - from;
      cursor = hi;
    }
  }
  return (migration->end - migration->begin) - covered;
}

double PhaseStats::percentile(double p) const {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  std::size_t index = rank <= 0.0
                          ? 0
                          : static_cast<std::size_t>(std::ceil(rank)) - 1;
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

double PhaseStats::max() const {
  if (samples.empty()) {
    return 0.0;
  }
  return *std::max_element(samples.begin(), samples.end());
}

void accumulate(Report& report, const std::vector<Transaction>& txns) {
  for (const Transaction& txn : txns) {
    ++report.transactions;
    if (!txn.has_migration) {
      continue;
    }
    ++report.migrations;
    ++report.outcomes[txn.outcome.empty() ? "unknown" : txn.outcome];
    for (const auto& [phase, seconds] : txn.phase_s) {
      report.phases[phase].add(seconds);
    }
    report.phases["freeze"].add(txn.freeze_s);
    report.phases["total"].add(txn.migration_s);
  }
}

std::string format_report(const Report& report) {
  std::string out;
  out += "transactions: " + std::to_string(report.transactions) +
         "  migrations: " + std::to_string(report.migrations) + "\n";
  if (!report.outcomes.empty()) {
    out += "outcomes:";
    for (const auto& [outcome, count] : report.outcomes) {
      out += " " + outcome + "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (report.phases.empty()) {
    return out;
  }
  char line[160];
  std::snprintf(line, sizeof line, "%-10s %8s %12s %12s %12s %12s\n", "phase",
                "n", "p50_ms", "p90_ms", "p99_ms", "max_ms");
  out += line;
  // Fixed pipeline order first, then the synthetic aggregates.
  const std::vector<std::string> order{"init",    "precopy",  "collect",
                                       "eager",   "ack",      "transfer",
                                       "restore", "freeze",   "total"};
  const auto emit = [&](const std::string& phase, const PhaseStats& stats) {
    std::snprintf(line, sizeof line, "%-10s %8zu %12.3f %12.3f %12.3f %12.3f\n",
                  phase.c_str(), stats.samples.size(),
                  stats.percentile(50) * 1e3, stats.percentile(90) * 1e3,
                  stats.percentile(99) * 1e3, stats.max() * 1e3);
    out += line;
  };
  for (const std::string& phase : order) {
    if (const auto it = report.phases.find(phase);
        it != report.phases.end()) {
      emit(phase, it->second);
    }
  }
  for (const auto& [phase, stats] : report.phases) {
    if (std::find(order.begin(), order.end(), phase) == order.end()) {
      emit(phase, stats);
    }
  }
  return out;
}

JsonValue report_to_json(const Report& report) {
  JsonObject root;
  root.emplace("transactions", static_cast<double>(report.transactions));
  root.emplace("migrations", static_cast<double>(report.migrations));
  JsonObject outcomes;
  for (const auto& [outcome, count] : report.outcomes) {
    outcomes.emplace(outcome, static_cast<double>(count));
  }
  root.emplace("outcomes", std::move(outcomes));
  JsonObject phases;
  for (const auto& [phase, stats] : report.phases) {
    JsonObject entry;
    entry.emplace("n", static_cast<double>(stats.samples.size()));
    entry.emplace("p50_ms", stats.percentile(50) * 1e3);
    entry.emplace("p90_ms", stats.percentile(90) * 1e3);
    entry.emplace("p99_ms", stats.percentile(99) * 1e3);
    entry.emplace("max_ms", stats.max() * 1e3);
    phases.emplace(phase, std::move(entry));
  }
  root.emplace("phases", std::move(phases));
  return JsonValue{std::move(root)};
}

}  // namespace ars::obs::critpath
