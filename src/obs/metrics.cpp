#include "ars/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ars/obs/json.hpp"

namespace ars::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  double bound = 1e-3;
  for (int i = 0; i < 20; ++i) {
    bounds.push_back(bound);
    bound *= 2.0;
  }
  return bounds;
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument(
        "Histogram::merge requires identical bucket bounds");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const std::uint64_t before = cumulative;
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < target) {
      continue;
    }
    if (i == buckets_.size() - 1) {
      // +Inf bucket: the best point estimate is the largest observation.
      return max_;
    }
    // Linear interpolation inside the winning bucket.  The lower edge is
    // the previous finite bound (or the smallest observation for the first
    // bucket, which avoids wild extrapolation toward zero).
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(min_, upper) : bounds_[i - 1];
    const double within =
        (target - static_cast<double>(before)) /
        static_cast<double>(buckets_[i]);
    return std::clamp(lower + (upper - lower) * within, min_, max_);
  }
  return max_;
}

std::string MetricsRegistry::series_key(const std::string& name,
                                        const Labels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string key = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      key += ",";
    }
    first = false;
    key += k + "=" + v;
  }
  return key + "}";
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  auto [it, inserted] = counters_.try_emplace(series_key(name, labels));
  if (inserted) {
    it->second.name = name;
    it->second.labels = labels;
  }
  return it->second.instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  auto [it, inserted] = gauges_.try_emplace(series_key(name, labels));
  if (inserted) {
    it->second.name = name;
    it->second.labels = labels;
  }
  return it->second.instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<double> bounds) {
  const std::string key = series_key(name, labels);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    Series<Histogram> series;
    series.name = name;
    series.labels = labels;
    if (!bounds.empty()) {
      series.instrument = Histogram(std::move(bounds));
    }
    it = histograms_.emplace(key, std::move(series)).first;
  }
  return it->second.instrument;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, series] : other.counters_) {
    counter(series.name, series.labels).inc(series.instrument.value());
  }
  for (const auto& [key, series] : other.gauges_) {
    gauge(series.name, series.labels).add(series.instrument.value());
  }
  for (const auto& [key, series] : other.histograms_) {
    // Create with the source's bounds so a series absent here merges
    // cleanly; an existing series must already share them.
    histogram(series.name, series.labels, series.instrument.bounds())
        .merge(series.instrument);
  }
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const Labels& labels) const {
  const auto it = counters_.find(series_key(name, labels));
  return it == counters_.end() ? nullptr : &it->second.instrument;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const Labels& labels) const {
  const auto it = gauges_.find(series_key(name, labels));
  return it == gauges_.end() ? nullptr : &it->second.instrument;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  const auto it = histograms_.find(series_key(name, labels));
  return it == histograms_.end() ? nullptr : &it->second.instrument;
}

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') {
      c = '_';
    }
  }
  return out;
}

std::string prometheus_labels(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += prometheus_name(k) + "=\"" + json_escape(v) + "\"";
  }
  return out + "}";
}

/// Labels plus one extra pair (histogram `le`).
std::string prometheus_labels_with(const Labels& labels,
                                   const std::string& key,
                                   const std::string& value) {
  Labels merged = labels;
  merged[key] = value;
  return prometheus_labels(merged);
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  std::string last_typed;
  const auto type_line = [&out, &last_typed](const std::string& name,
                                             const char* type) {
    if (name != last_typed) {
      out += "# TYPE " + name + " " + type + "\n";
      last_typed = name;
    }
  };
  for (const auto& [key, series] : counters_) {
    const std::string name = prometheus_name(series.name);
    type_line(name, "counter");
    out += name + prometheus_labels(series.labels) + " " +
           json_number(series.instrument.value()) + "\n";
  }
  for (const auto& [key, series] : gauges_) {
    const std::string name = prometheus_name(series.name);
    type_line(name, "gauge");
    out += name + prometheus_labels(series.labels) + " " +
           json_number(series.instrument.value()) + "\n";
  }
  for (const auto& [key, series] : histograms_) {
    const std::string name = prometheus_name(series.name);
    const Histogram& h = series.instrument;
    type_line(name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += h.bucket_counts()[i];
      out += name + "_bucket" +
             prometheus_labels_with(series.labels, "le",
                                    json_number(h.bounds()[i])) +
             " " + std::to_string(cumulative) + "\n";
    }
    cumulative += h.bucket_counts().back();
    out += name + "_bucket" +
           prometheus_labels_with(series.labels, "le", "+Inf") + " " +
           std::to_string(cumulative) + "\n";
    out += name + "_sum" + prometheus_labels(series.labels) + " " +
           json_number(h.sum()) + "\n";
    out += name + "_count" + prometheus_labels(series.labels) + " " +
           std::to_string(h.count()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [key, series] : counters_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + json_escape(key) +
           "\":" + json_number(series.instrument.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, series] : gauges_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + json_escape(key) +
           "\":" + json_number(series.instrument.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, series] : histograms_) {
    if (!first) {
      out += ",";
    }
    first = false;
    const Histogram& h = series.instrument;
    out += "\"" + json_escape(key) + "\":{";
    out += "\"count\":" + std::to_string(h.count());
    out += ",\"sum\":" + json_number(h.sum());
    out += ",\"mean\":" + json_number(h.mean());
    out += ",\"min\":" + json_number(h.min());
    out += ",\"max\":" + json_number(h.max());
    out += ",\"p50\":" + json_number(h.p50());
    out += ",\"p95\":" + json_number(h.p95());
    out += ",\"p99\":" + json_number(h.p99());
    out += "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace ars::obs
