#include "ars/obs/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "ars/obs/json.hpp"
#include "ars/support/log.hpp"

namespace ars::obs {

namespace {

void append_attrs_json(std::string& out, const Attrs& attrs) {
  out += "{";
  bool first = true;
  for (const Attr& attr : attrs) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + json_escape(attr.key) + "\":";
    if (const auto* s = std::get_if<std::string>(&attr.value)) {
      out += "\"" + json_escape(*s) + "\"";
    } else if (const auto* d = std::get_if<double>(&attr.value)) {
      out += json_number(*d);
    } else {
      out += std::get<bool>(attr.value) ? "true" : "false";
    }
  }
  out += "}";
}

std::string_view kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kInstant:
      return "instant";
    case EventKind::kSpanBegin:
      return "begin";
    case EventKind::kSpanEnd:
      return "end";
  }
  return "?";
}

/// One to_jsonl() line (shared by the single-tracer and merged exporters so
/// the 1-shard merge stays byte-identical to to_jsonl()).
void append_jsonl_line(std::string& out, const TraceEvent& event) {
  out += "{\"t\":" + json_number(event.t);
  out += ",\"kind\":\"" + std::string(kind_name(event.kind)) + "\"";
  out += ",\"name\":\"" + json_escape(event.name) + "\"";
  out += ",\"cat\":\"" + json_escape(event.category) + "\"";
  out += ",\"track\":\"" + json_escape(event.track) + "\"";
  if (event.span_id != 0) {
    out += ",\"span\":" + std::to_string(event.span_id);
  }
  out += ",\"attrs\":";
  append_attrs_json(out, event.attrs);
  out += "}\n";
}

}  // namespace

void Tracer::push(TraceEvent event) {
  events_.push_back(std::move(event));
  while (events_.size() > options_.capacity) {
    events_.pop_front();
    ++dropped_;
  }
}

void Tracer::instant(std::string name, std::string category, std::string track,
                     Attrs attrs) {
  if (!options_.enabled) {
    return;
  }
  instant_at(now(), std::move(name), std::move(category), std::move(track),
             std::move(attrs));
}

void Tracer::instant_at(double t, std::string name, std::string category,
                        std::string track, Attrs attrs) {
  if (!options_.enabled) {
    return;
  }
  TraceEvent event;
  event.kind = EventKind::kInstant;
  event.t = t;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = std::move(track);
  event.attrs = std::move(attrs);
  push(std::move(event));
}

std::uint64_t Tracer::begin_span(std::string name, std::string category,
                                 std::string track, Attrs attrs) {
  if (!options_.enabled) {
    return 0;
  }
  const std::uint64_t id = next_span_id_++;
  open_info_.emplace(id, OpenSpan{name, category, track});
  TraceEvent event;
  event.kind = EventKind::kSpanBegin;
  event.t = now();
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = std::move(track);
  event.span_id = id;
  event.attrs = std::move(attrs);
  push(std::move(event));
  return id;
}

void Tracer::end_span(std::uint64_t id, Attrs attrs) {
  if (!options_.enabled || id == 0) {
    return;
  }
  const auto it = open_info_.find(id);
  if (it == open_info_.end()) {
    return;  // unknown or already-closed id
  }
  // The end event is self-contained (exporters need name/cat/track on both
  // sides of the pair).
  TraceEvent event;
  event.kind = EventKind::kSpanEnd;
  event.t = now();
  event.span_id = id;
  event.name = std::move(it->second.name);
  event.category = std::move(it->second.category);
  event.track = std::move(it->second.track);
  event.attrs = std::move(attrs);
  open_info_.erase(it);
  push(std::move(event));
}

std::vector<CompletedSpan> Tracer::completed_spans() const {
  std::map<std::uint64_t, const TraceEvent*> open;
  std::vector<CompletedSpan> out;
  for (const TraceEvent& event : events_) {
    if (event.kind == EventKind::kSpanBegin) {
      open[event.span_id] = &event;
      continue;
    }
    if (event.kind != EventKind::kSpanEnd) {
      continue;
    }
    const auto it = open.find(event.span_id);
    if (it == open.end()) {
      continue;  // begin evicted by the ring bound
    }
    CompletedSpan span;
    span.id = event.span_id;
    span.name = it->second->name;
    span.category = it->second->category;
    span.track = it->second->track;
    span.begin = it->second->t;
    span.end = event.t;
    span.attrs = it->second->attrs;
    span.attrs.insert(span.attrs.end(), event.attrs.begin(),
                      event.attrs.end());
    out.push_back(std::move(span));
    open.erase(it);
  }
  return out;
}

std::vector<CompletedSpan> Tracer::spans_named(const std::string& name) const {
  std::vector<CompletedSpan> out;
  for (CompletedSpan& span : completed_spans()) {
    if (span.name == name) {
      out.push_back(std::move(span));
    }
  }
  return out;
}

void Tracer::clear() {
  events_.clear();
  open_info_.clear();
  dropped_ = 0;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    append_jsonl_line(out, event);
  }
  return out;
}

std::string merged_jsonl(const std::vector<const Tracer*>& shards) {
  struct Ref {
    double t;
    std::size_t shard;
    std::size_t index;
    const TraceEvent* event;
  };
  std::vector<Ref> refs;
  for (std::size_t shard = 0; shard < shards.size(); ++shard) {
    if (shards[shard] == nullptr) {
      continue;
    }
    std::size_t index = 0;
    for (const TraceEvent& event : shards[shard]->events()) {
      refs.push_back(Ref{event.t, shard, index++, &event});
    }
  }
  // (t, shard, index) is a total order — unique by (shard, index) — so
  // plain sort is deterministic without needing stability.
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.t != b.t) {
      return a.t < b.t;
    }
    if (a.shard != b.shard) {
      return a.shard < b.shard;
    }
    return a.index < b.index;
  });
  std::string out;
  for (const Ref& ref : refs) {
    append_jsonl_line(out, *ref.event);
  }
  return out;
}

std::string Tracer::to_chrome_trace() const {
  // One trace_event "thread" per track, in first-appearance order.
  std::map<std::string, int> tids;
  std::vector<const std::string*> track_names;
  for (const TraceEvent& event : events_) {
    if (tids.emplace(event.track, static_cast<int>(tids.size()) + 1).second) {
      track_names.push_back(&event.track);
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto append = [&out, &first](const std::string& item) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += item;
  };

  append("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"ars\"}}");
  for (const std::string* track : track_names) {
    append("{\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tids.at(*track)) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json_escape(*track) + "\"}}");
  }

  for (const TraceEvent& event : events_) {
    std::string item = "{\"name\":\"" + json_escape(event.name) + "\"";
    item += ",\"cat\":\"" +
            json_escape(event.category.empty() ? "ars" : event.category) +
            "\"";
    switch (event.kind) {
      case EventKind::kInstant:
        item += ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case EventKind::kSpanBegin:
        item += ",\"ph\":\"b\"";
        break;
      case EventKind::kSpanEnd:
        item += ",\"ph\":\"e\"";
        break;
    }
    if (event.span_id != 0) {
      char idbuf[24];
      std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                    static_cast<unsigned long long>(event.span_id));
      item += ",\"id\":\"" + std::string(idbuf) + "\"";
    }
    // trace_event timestamps are microseconds.
    item += ",\"ts\":" + json_number(event.t * 1e6);
    item += ",\"pid\":1,\"tid\":" + std::to_string(tids.at(event.track));
    item += ",\"args\":";
    append_attrs_json(item, event.attrs);
    item += "}";
    append(item);
  }
  out += "]}";
  return out;
}

LogBridge::LogBridge(Tracer& tracer) {
  support::Logger::global().set_forward(
      [tracer_ptr = &tracer](support::LogLevel level,
                             std::string_view component,
                             std::string_view message, double sim_time) {
        tracer_ptr->instant_at(
            sim_time < 0.0 ? 0.0 : sim_time, "log", "log",
            std::string(component),
            {{"level", std::string(support::to_string(level))},
             {"message", std::string(message)}});
      });
}

LogBridge::~LogBridge() { support::Logger::global().set_forward(nullptr); }

}  // namespace ars::obs
