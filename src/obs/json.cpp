#include "ars/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ars::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  support::Expected<JsonValue> run() {
    skip_ws();
    auto value = parse_value();
    if (!value.has_value()) {
      return value;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return value;
  }

 private:
  support::Error fail(const std::string& what) const {
    return support::make_error(
        "json_parse", what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  support::Expected<JsonValue> parse_value() {
    if (depth_ > kMaxDepth) {
      return fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case 'n':
        return eat_word("null") ? support::Expected<JsonValue>(JsonValue())
                                : support::Expected<JsonValue>(
                                      fail("invalid literal"));
      case 't':
        return eat_word("true")
                   ? support::Expected<JsonValue>(JsonValue(true))
                   : support::Expected<JsonValue>(fail("invalid literal"));
      case 'f':
        return eat_word("false")
                   ? support::Expected<JsonValue>(JsonValue(false))
                   : support::Expected<JsonValue>(fail("invalid literal"));
      case '"':
        return parse_string_value();
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  support::Expected<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected a value");
    }
    double out = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last || !std::isfinite(out)) {
      pos_ = start;
      return fail("malformed number");
    }
    return JsonValue(out);
  }

  support::Expected<std::string> parse_string() {
    if (!eat('"')) {
      return fail("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as-is; the exporters never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  support::Expected<JsonValue> parse_string_value() {
    auto s = parse_string();
    if (!s.has_value()) {
      return s.error();
    }
    return JsonValue(std::move(*s));
  }

  support::Expected<JsonValue> parse_array() {
    ++depth_;
    (void)eat('[');
    JsonArray out;
    skip_ws();
    if (eat(']')) {
      --depth_;
      return JsonValue(std::move(out));
    }
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value.has_value()) {
        return value;
      }
      out.push_back(std::move(*value));
      skip_ws();
      if (eat(']')) {
        --depth_;
        return JsonValue(std::move(out));
      }
      if (!eat(',')) {
        return fail("expected ',' or ']'");
      }
    }
  }

  support::Expected<JsonValue> parse_object() {
    ++depth_;
    (void)eat('{');
    JsonObject out;
    skip_ws();
    if (eat('}')) {
      --depth_;
      return JsonValue(std::move(out));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.has_value()) {
        return key.error();
      }
      skip_ws();
      if (!eat(':')) {
        return fail("expected ':'");
      }
      skip_ws();
      auto value = parse_value();
      if (!value.has_value()) {
        return value;
      }
      out.insert_or_assign(std::move(*key), std::move(*value));
      skip_ws();
      if (eat('}')) {
        --depth_;
        return JsonValue(std::move(out));
      }
      if (!eat(',')) {
        return fail("expected ',' or '}'");
      }
    }
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

support::Expected<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";  // JSON has no Inf/NaN; exporters should not emit them
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    return buffer;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string JsonValue::dump() const {
  if (is_null()) {
    return "null";
  }
  if (is_bool()) {
    return as_bool() ? "true" : "false";
  }
  if (is_number()) {
    return json_number(as_number());
  }
  if (is_string()) {
    return "\"" + json_escape(as_string()) + "\"";
  }
  std::string out;
  if (is_array()) {
    out = "[";
    for (const JsonValue& item : as_array()) {
      if (out.size() > 1) {
        out += ",";
      }
      out += item.dump();
    }
    return out + "]";
  }
  out = "{";
  for (const auto& [key, value] : as_object()) {
    if (out.size() > 1) {
      out += ",";
    }
    out += "\"" + json_escape(key) + "\":" + value.dump();
  }
  return out + "}";
}

}  // namespace ars::obs
