#include "ars/malleable/malleable.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "ars/net/network.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/sim/engine.hpp"
#include "ars/sim/task.hpp"
#include "ars/sim/wait.hpp"
#include "ars/support/log.hpp"

namespace ars::malleable {

namespace {

/// Worker -> root per-iteration check-in payload (result shard header).
constexpr int kResultTag = 7;
constexpr double kResultBytes = 8.0;

/// The root lingers this long after its last iteration so in-flight worker
/// check-in messages drain before the root's proc is torn down.
constexpr double kDrainDelay = 0.05;

const std::vector<double>& spawn_ms_bounds() {
  static const std::vector<double> bounds{250, 500, 1000, 2000,
                                          4000, 8000, 16000};
  return bounds;
}

const std::vector<double>& redistribute_ms_bounds() {
  static const std::vector<double> bounds{10, 50, 100, 500, 1000, 5000, 10000};
  return bounds;
}

}  // namespace

const char* verb_name(ResizeVerb verb) {
  return verb == ResizeVerb::kExpand ? "expand" : "shrink";
}

std::optional<ResizeVerb> verb_from(std::string_view name) {
  if (name == "expand") {
    return ResizeVerb::kExpand;
  }
  if (name == "shrink") {
    return ResizeVerb::kShrink;
  }
  return std::nullopt;
}

std::vector<int> partition_blocks(int blocks, int ranks) {
  if (ranks <= 0) {
    return {};
  }
  std::vector<int> counts(static_cast<std::size_t>(ranks));
  const long long b = blocks;
  for (int r = 0; r < ranks; ++r) {
    counts[static_cast<std::size_t>(r)] =
        static_cast<int>(b * (r + 1) / ranks - b * r / ranks);
  }
  return counts;
}

/// A queued resize waiting for the job's next poll-point.
struct MalleableEngine::PendingResize {
  ResizeVerb verb = ResizeVerb::kExpand;
  int delta = 0;
  std::vector<std::string> hosts;
  mpi::SpawnStrategy strategy = mpi::SpawnStrategy::kSequential;
  obs::TraceCtx trace;
};

/// One in-flight resize transaction (the malleable analogue of hpcm's
/// PendingTx): phase state, timeout machinery, and everything the rollback
/// paths need to reap partial work.
struct MalleableEngine::ResizeTx {
  explicit ResizeTx(sim::Engine& engine) : wake(engine) {}

  ResizeVerb verb = ResizeVerb::kExpand;
  int delta = 0;
  std::vector<std::string> hosts;
  mpi::SpawnStrategy strategy = mpi::SpawnStrategy::kSequential;
  obs::TraceCtx trace;
  double started_at = 0.0;
  int ranks_before = 0;

  std::string phase = "plan";
  bool phase_done = false;
  bool timed_out = false;
  bool failed = false;
  std::string fail_reason;

  /// Children created so far, live during the spawn phase (progress list
  /// passed to spawn_many so aborts can reap a partial group).
  std::vector<mpi::RankId> spawned;
  std::shared_ptr<mpi::SpawnCancel> cancel =
      std::make_shared<mpi::SpawnCancel>();
  mpi::MultiSpawnResult spawn_result;

  std::vector<mpi::RankId> new_members;  // planned post-commit membership
  std::vector<mpi::RankId> victims;      // shrink: ranks that retire
  std::vector<int> new_blocks;

  double redistributed_bytes = 0.0;
  double spawn_seconds = 0.0;
  double redistribute_seconds = 0.0;
  std::uint64_t span = 0;

  sim::WaitQueue wake;
  sim::Fiber worker;
  sim::Engine::EventHandle timeout_event;
};

/// One running malleable job: membership, block assignment, named state,
/// and the two rendezvous queues of the iteration protocol.
struct MalleableEngine::Job {
  explicit Job(sim::Engine& engine) : gate(engine), root_wake(engine) {}

  JobSpec spec;
  std::vector<mpi::RankId> members;  // rank order; [0] is the root
  std::map<mpi::RankId, std::string> host_of;
  mpi::Comm world;
  std::vector<int> blocks_of;  // per member, contiguous partition
  hpcm::StateRegistry state;
  std::set<std::string> shard_keys;  // state entries we own (for cleanup)

  int open_iter = -1;  // iteration workers may enter; -1 = none yet
  int done_count = 0;  // worker check-ins for open_iter
  int generation = 0;  // spawn-name generation counter
  long long processed = 0;

  std::set<mpi::RankId> retiring;  // exit at their next poll-point
  std::optional<PendingResize> pending;
  std::unique_ptr<ResizeTx> tx;

  bool finished = false;
  bool failed = false;
  double finished_time = -1.0;

  sim::WaitQueue gate;       // workers wait for open_iter / retirement
  sim::WaitQueue root_wake;  // root waits for worker check-ins
};

MalleableEngine::MalleableEngine(mpi::MpiSystem& mpi, net::Network& network)
    : MalleableEngine(mpi, network, Options{}) {}

MalleableEngine::MalleableEngine(mpi::MpiSystem& mpi, net::Network& network,
                                 Options options)
    : mpi_(&mpi), network_(&network), options_(options) {
  if (obs::MetricsRegistry* m = options_.metrics) {
    // Pre-register every malleable.* series so exports are stable at zero,
    // matching the migration.* convention: a run with no resizes still
    // carries the full schema.
    for (const char* verb : {"expand", "shrink"}) {
      for (const char* outcome : {kCommitted, kAborted, kPartialRollback}) {
        m->counter("malleable.resizes", {{"verb", verb}, {"outcome", outcome}});
      }
    }
    for (const char* reason : {"spawn-timeout", "no-capacity",
                               "redistribution-failed", "job-finished",
                               "job-failed"}) {
      m->counter("malleable.resize_failures", {{"reason", reason}});
    }
    for (const char* strategy : {"sequential", "tree"}) {
      m->histogram("malleable.spawn_ms", {{"strategy", strategy}},
                   spawn_ms_bounds());
    }
    m->histogram("malleable.redistribute_ms", {}, redistribute_ms_bounds());
    m->counter("malleable.redistributed_bytes");
    m->counter("malleable.ranks_spawned");
    m->counter("malleable.ranks_retired");
    m->counter("malleable.ranks_lost");
    m->counter("malleable.ghost_ranks");
    m->counter("malleable.jobs_completed");
    m->counter("malleable.jobs_failed");
  }
}

MalleableEngine::~MalleableEngine() {
  // Kill member fibers (and any in-flight transaction machinery) before the
  // per-job wait queues die: a killed fiber's awaitable destructor
  // deregisters it, so the queues are empty when ~Job runs.
  for (auto& [name, job] : jobs_) {
    if (job->tx) {
      job->tx->timeout_event.cancel();
      job->tx->cancel->cancelled = true;
      job->tx->worker.kill();
      for (const mpi::RankId id : job->tx->spawned) {
        (void)mpi_->kill(id);
      }
    }
    for (const mpi::RankId id : job->members) {
      (void)mpi_->kill(id);
    }
  }
  jobs_.clear();
}

std::vector<mpi::RankId> MalleableEngine::launch(
    const JobSpec& spec, const std::vector<std::string>& hosts) {
  if (hosts.empty()) {
    throw std::invalid_argument("malleable: job needs at least one host");
  }
  if (jobs_.count(spec.name) != 0) {
    throw std::invalid_argument("malleable: duplicate job " + spec.name);
  }
  auto job = std::make_shared<Job>(engine());
  job->spec = spec;
  job->spec.workload.blocks = std::max(1, job->spec.workload.blocks);
  job->spec.min_ranks = std::max(1, job->spec.min_ranks);
  MalleableEngine* self = this;
  auto anchor = job;
  mpi::AppMain app = [self, anchor](mpi::Proc& proc) -> sim::Task<> {
    return self->member_main(anchor, proc);
  };
  job->members = mpi_->launch_world(hosts, std::move(app), spec.name);
  job->world = mpi_->make_comm(job->members);
  job->blocks_of = partition_blocks(job->spec.workload.blocks,
                                    static_cast<int>(job->members.size()));
  for (std::size_t i = 0; i < job->members.size(); ++i) {
    job->host_of[job->members[i]] = hosts[i];
  }
  apply_assignment(*job);
  jobs_.emplace(spec.name, job);
  if (obs::Tracer* t = options_.tracer; t != nullptr && obs::active(t)) {
    t->instant("malleable.job_launched", "malleable", spec.name,
               {{"ranks", static_cast<double>(job->members.size())},
                {"blocks", static_cast<double>(job->spec.workload.blocks)}});
  }
  ARS_LOG_INFO("malleable", "job " << spec.name << " launched with "
                                   << job->members.size() << " ranks");
  return job->members;
}

bool MalleableEngine::request_resize(const std::string& job_name,
                                     ResizeVerb verb, int delta,
                                     std::vector<std::string> hosts,
                                     std::optional<mpi::SpawnStrategy> strategy,
                                     obs::TraceCtx trace) {
  Job* job = find_job(job_name);
  if (job == nullptr || job->finished || job->failed) {
    return false;
  }
  if (job->pending.has_value() || job->tx != nullptr) {
    return false;  // one resize at a time; the caller retries later
  }
  if (delta <= 0) {
    return false;
  }
  PendingResize req;
  req.verb = verb;
  req.delta = delta;
  req.hosts = std::move(hosts);
  req.strategy = strategy.value_or(job->spec.strategy);
  req.trace = trace;
  job->pending = std::move(req);
  if (obs::Tracer* t = options_.tracer; t != nullptr && obs::active(t)) {
    obs::Attrs attrs{{"verb", std::string(verb_name(verb))},
                     {"delta", static_cast<double>(delta)}};
    obs::stamp(attrs, trace);
    t->instant("malleable.resize_requested", "malleable", job_name,
               std::move(attrs));
  }
  return true;
}

// -- introspection ----------------------------------------------------------

const MalleableEngine::Job* MalleableEngine::find_job(
    const std::string& name) const {
  const auto it = jobs_.find(name);
  return it == jobs_.end() ? nullptr : it->second.get();
}

MalleableEngine::Job* MalleableEngine::find_job(const std::string& name) {
  const auto it = jobs_.find(name);
  return it == jobs_.end() ? nullptr : it->second.get();
}

bool MalleableEngine::known(const std::string& job) const {
  return find_job(job) != nullptr;
}

int MalleableEngine::ranks(const std::string& job) const {
  const Job* j = find_job(job);
  return j == nullptr ? 0 : static_cast<int>(j->members.size());
}

std::vector<std::string> MalleableEngine::rank_hosts(
    const std::string& job) const {
  std::vector<std::string> hosts;
  if (const Job* j = find_job(job)) {
    hosts.reserve(j->members.size());
    for (const mpi::RankId id : j->members) {
      const auto it = j->host_of.find(id);
      hosts.push_back(it == j->host_of.end() ? std::string{} : it->second);
    }
  }
  return hosts;
}

bool MalleableEngine::finished(const std::string& job) const {
  const Job* j = find_job(job);
  return j != nullptr && j->finished;
}

bool MalleableEngine::failed(const std::string& job) const {
  const Job* j = find_job(job);
  return j != nullptr && j->failed;
}

double MalleableEngine::finished_at(const std::string& job) const {
  const Job* j = find_job(job);
  return j == nullptr ? -1.0 : j->finished_time;
}

bool MalleableEngine::resizing(const std::string& job) const {
  const Job* j = find_job(job);
  return j != nullptr && (j->pending.has_value() || j->tx != nullptr);
}

bool MalleableEngine::all_finished() const {
  for (const auto& [name, job] : jobs_) {
    if (!job->finished) {
      return false;
    }
  }
  return true;
}

long long MalleableEngine::processed_blocks(const std::string& job) const {
  const Job* j = find_job(job);
  return j == nullptr ? 0 : j->processed;
}

double MalleableEngine::state_bytes(const std::string& job) const {
  const Job* j = find_job(job);
  return j == nullptr ? 0.0
                      : static_cast<double>(j->state.total_transfer_bytes());
}

std::vector<std::string> MalleableEngine::job_names() const {
  std::vector<std::string> names;
  names.reserve(jobs_.size());
  for (const auto& [name, job] : jobs_) {
    names.push_back(name);
  }
  return names;
}

// -- chaos hooks ------------------------------------------------------------

void MalleableEngine::set_phase_stall(const std::string& phase,
                                      double seconds) {
  if (seconds > 0.0) {
    phase_stalls_[phase] = seconds;
  } else {
    phase_stalls_.erase(phase);
  }
}

bool MalleableEngine::fail_resize_target(const std::string& job_name,
                                         const std::string& host) {
  Job* job = find_job(job_name);
  if (job == nullptr || job->tx == nullptr) {
    return false;
  }
  ResizeTx& tx = *job->tx;
  if (tx.phase != "spawn") {
    return false;
  }
  if (std::find(tx.hosts.begin(), tx.hosts.end(), host) == tx.hosts.end()) {
    return false;
  }
  // Stop the fan-out, reap anything already placed on the dead target, and
  // fail the phase; the abort path reaps the rest of the partial group.
  tx.cancel->cancelled = true;
  for (const mpi::RankId id : tx.spawned) {
    if (mpi::Proc* p = mpi_->find(id);
        p != nullptr && p->host().name() == host) {
      (void)mpi_->kill(id);
    }
  }
  tx.failed = true;
  tx.fail_reason = "no-capacity";
  tx.wake.notify_all();
  return true;
}

int MalleableEngine::on_host_failed(const std::string& host) {
  int lost = 0;
  for (auto& [name, job] : jobs_) {
    if (job->finished || job->failed) {
      continue;
    }
    // Malleable ranks are not HPCM processes, so nobody else reaps them:
    // the crash kills our members (and any half-spawned children) here.
    bool hit = false;
    for (const mpi::RankId id : job->members) {
      const auto it = job->host_of.find(id);
      if (it != job->host_of.end() && it->second == host) {
        if (mpi_->kill(id)) {
          ++lost;
        }
        hit = true;
      }
    }
    if (job->tx != nullptr) {
      for (const mpi::RankId id : job->tx->spawned) {
        if (mpi::Proc* p = mpi_->find(id);
            p != nullptr && p->host().name() == host) {
          (void)mpi_->kill(id);
        }
      }
    }
    if (!mpi_->alive(job->members.front())) {
      // A dead root kills the whole job: no coordinator, no poll-points.
      teardown_job(*job, "job-failed");
      continue;
    }
    if (job->tx != nullptr && job->tx->phase == "spawn") {
      (void)fail_resize_target(name, host);  // no-op unless host is a target
    }
    if (hit) {
      if (obs::MetricsRegistry* m = options_.metrics) {
        m->counter("malleable.ranks_lost").inc();
      }
      // Wake both rendezvous points so the root re-counts live workers and
      // gate-waiters re-check; the membership repair happens at the
      // root's next boundary.
      job->root_wake.notify_all();
      job->gate.notify_all();
    }
  }
  return lost;
}

// -- iteration protocol -----------------------------------------------------

sim::Task<> MalleableEngine::member_main(std::shared_ptr<Job> job,
                                         mpi::Proc& proc) {
  if (!job->members.empty() && job->members.front() == proc.id()) {
    co_await root_main(job, proc);
  } else {
    co_await worker_main(job, 0, proc);
  }
}

sim::Task<> MalleableEngine::root_main(std::shared_ptr<Job> job,
                                       mpi::Proc& proc) {
  const Workload& wl = job->spec.workload;
  for (int iter = 0; iter < wl.iterations; ++iter) {
    // The iteration boundary is the poll-point: all workers are parked at
    // the gate, so the membership is ours to change.
    repair_membership(*job);
    if (job->pending.has_value()) {
      co_await execute_resize(job, proc);
      repair_membership(*job);  // a target may have died mid-transaction
    }
    job->open_iter = iter;
    job->done_count = 0;
    job->gate.notify_all();
    const mpi::Comm world = job->world;
    std::vector<double> sync_values(1, static_cast<double>(iter));
    (void)co_await proc.bcast(world, 0, wl.sync_bytes,
                              std::move(sync_values));
    co_await proc.compute(static_cast<double>(job->blocks_of.front()) *
                          wl.work_per_block);
    job->processed += job->blocks_of.front();
    while (job->done_count < live_workers(*job)) {
      co_await job->root_wake.wait();
    }
  }
  co_await sim::delay(engine(), kDrainDelay);
  finish_job(*job);
}

sim::Task<> MalleableEngine::worker_main(std::shared_ptr<Job> job,
                                         int join_iter, mpi::Proc& proc) {
  const Workload& wl = job->spec.workload;
  int my_iter = join_iter;
  while (true) {
    while (!job->finished && job->open_iter < my_iter &&
           job->retiring.count(proc.id()) == 0) {
      co_await job->gate.wait();
    }
    if (job->finished) {
      break;
    }
    if (job->retiring.erase(proc.id()) != 0) {
      break;  // shrink: retire at the poll-point, state already handed off
    }
    const mpi::Comm world = job->world;
    const int rank = world.rank_of(proc.id());
    if (rank < 0) {
      // Membership changed under us without a retirement marker (repair
      // after a lost-rank race); park until the next boundary resolves it.
      co_await job->gate.wait();
      continue;
    }
    (void)co_await proc.bcast(world, 0, wl.sync_bytes);
    co_await proc.compute(
        static_cast<double>(job->blocks_of[static_cast<std::size_t>(rank)]) *
        wl.work_per_block);
    (void)proc.isend(world, 0, kResultTag, kResultBytes);
    job->processed += job->blocks_of[static_cast<std::size_t>(rank)];
    ++job->done_count;
    job->root_wake.notify_all();
    ++my_iter;
  }
}

int MalleableEngine::live_workers(const Job& job) const {
  int count = 0;
  for (std::size_t i = 1; i < job.members.size(); ++i) {
    if (mpi_->alive(job.members[i])) {
      ++count;
    }
  }
  return count;
}

void MalleableEngine::repair_membership(Job& job) {
  std::vector<mpi::RankId> survivors;
  survivors.reserve(job.members.size());
  for (const mpi::RankId id : job.members) {
    if (mpi_->alive(id)) {
      survivors.push_back(id);
    } else {
      job.retiring.erase(id);
    }
  }
  if (survivors.size() == job.members.size()) {
    return;
  }
  const int lost = static_cast<int>(job.members.size() - survivors.size());
  job.members = std::move(survivors);
  job.world = mpi_->make_comm(job.members);
  job.blocks_of = partition_blocks(job.spec.workload.blocks,
                                   static_cast<int>(job.members.size()));
  apply_assignment(job);
  if (obs::Tracer* t = options_.tracer; t != nullptr && obs::active(t)) {
    t->instant("malleable.membership_repaired", "malleable", job.spec.name,
               {{"lost", static_cast<double>(lost)},
                {"ranks", static_cast<double>(job.members.size())}});
  }
  ARS_LOG_INFO("malleable", "job " << job.spec.name << " repaired: " << lost
                                   << " rank(s) lost, "
                                   << job.members.size() << " remain");
}

void MalleableEngine::apply_assignment(Job& job) {
  const Workload& wl = job.spec.workload;
  std::vector<std::int64_t> owners;
  owners.reserve(static_cast<std::size_t>(wl.blocks));
  std::set<std::string> keys;
  for (std::size_t r = 0; r < job.members.size(); ++r) {
    const mpi::RankId id = job.members[r];
    for (int k = 0; k < job.blocks_of[r]; ++k) {
      owners.push_back(static_cast<std::int64_t>(id));
    }
    const std::string key = "shard.r" + std::to_string(id);
    job.state.set_opaque(key, static_cast<std::uint64_t>(
                                  job.blocks_of[r] * wl.bytes_per_block));
    keys.insert(key);
  }
  job.state.set_ints("block_owner", std::move(owners));
  for (const std::string& stale : job.shard_keys) {
    if (keys.count(stale) == 0) {
      job.state.erase(stale);
    }
  }
  job.shard_keys = std::move(keys);
}

void MalleableEngine::finish_job(Job& job) {
  job.finished = true;
  job.finished_time = engine().now();
  job.gate.notify_all();
  if (job.pending.has_value()) {
    // A resize the job never reached its next poll-point for: emit an abort
    // so the registry credits the placement debits it took out.
    job.tx = std::make_unique<ResizeTx>(engine());
    job.tx->verb = job.pending->verb;
    job.tx->delta = job.pending->delta;
    job.tx->hosts = job.pending->hosts;
    job.tx->strategy = job.pending->strategy;
    job.tx->trace = job.pending->trace;
    job.tx->started_at = engine().now();
    job.tx->ranks_before = static_cast<int>(job.members.size());
    job.pending.reset();
    finish_resize(job, kAborted, "job-finished", "plan");
  }
  if (obs::MetricsRegistry* m = options_.metrics) {
    m->counter("malleable.jobs_completed").inc();
  }
  if (obs::Tracer* t = options_.tracer; t != nullptr && obs::active(t)) {
    t->instant("malleable.job_finished", "malleable", job.spec.name,
               {{"ranks", static_cast<double>(job.members.size())},
                {"processed", static_cast<double>(job.processed)}});
  }
}

void MalleableEngine::teardown_job(Job& job, const std::string& reason) {
  if (job.tx) {
    job.tx->timeout_event.cancel();
    job.tx->cancel->cancelled = true;
    job.tx->worker.kill();
    for (const mpi::RankId id : job.tx->spawned) {
      (void)mpi_->kill(id);
    }
  }
  // Kill member fibers BEFORE finishing the transaction: the root may be
  // suspended on the transaction's wake queue, and the queue asserts it has
  // no waiters when the ResizeTx is destroyed.
  for (const mpi::RankId id : job.members) {
    (void)mpi_->kill(id);
  }
  if (job.tx) {
    finish_resize(job, kAborted, reason, job.tx->phase);
  } else if (job.pending.has_value()) {
    job.tx = std::make_unique<ResizeTx>(engine());
    job.tx->verb = job.pending->verb;
    job.tx->delta = job.pending->delta;
    job.tx->hosts = job.pending->hosts;
    job.tx->strategy = job.pending->strategy;
    job.tx->trace = job.pending->trace;
    job.tx->started_at = engine().now();
    job.tx->ranks_before = static_cast<int>(job.members.size());
    finish_resize(job, kAborted, reason, "plan");
  }
  job.pending.reset();
  job.retiring.clear();
  job.failed = true;
  job.finished = true;
  job.finished_time = engine().now();
  if (obs::MetricsRegistry* m = options_.metrics) {
    m->counter("malleable.jobs_failed").inc();
  }
  if (obs::Tracer* t = options_.tracer; t != nullptr && obs::active(t)) {
    t->instant("malleable.job_failed", "malleable", job.spec.name,
               {{"reason", reason}});
  }
  ARS_LOG_WARN("malleable",
               "job " << job.spec.name << " torn down: " << reason);
}

// -- resize transaction -----------------------------------------------------

std::string MalleableEngine::validate_resize(const Job& job,
                                             const ResizeTx& tx) const {
  if (tx.delta <= 0) {
    return "bad-delta";
  }
  if (tx.verb == ResizeVerb::kExpand) {
    if (static_cast<int>(job.members.size()) + tx.delta >
        job.spec.max_ranks) {
      return "above-max-ranks";
    }
    if (static_cast<int>(tx.hosts.size()) != tx.delta) {
      return "target-count-mismatch";
    }
    for (const std::string& host : tx.hosts) {
      if (network_->find_host(host) == nullptr) {
        return "unknown-host";
      }
    }
  } else {
    if (static_cast<int>(job.members.size()) - tx.delta < job.spec.min_ranks) {
      return "below-min-ranks";
    }
  }
  return {};
}

void MalleableEngine::notify_phase(Job& job, const std::string& phase) {
  job.tx->phase = phase;
  if (obs::Tracer* t = options_.tracer; t != nullptr && obs::active(t)) {
    obs::Attrs attrs{{"phase", phase},
                     {"verb", std::string(verb_name(job.tx->verb))}};
    obs::stamp(attrs, job.tx->trace);
    t->instant("resize.phase", "malleable", job.spec.name, std::move(attrs));
  }
  if (phase_listener_) {
    ResizePhaseEvent event;
    event.job = job.spec.name;
    event.verb = job.tx->verb;
    event.phase = phase;
    event.at = engine().now();
    event.hosts = job.tx->hosts;
    phase_listener_(event);
  }
}

sim::Task<bool> MalleableEngine::await_phase(Job& job,
                                             double timeout_seconds) {
  ResizeTx& tx = *job.tx;
  tx.phase_done = false;
  tx.timed_out = false;
  ResizeTx* txp = &tx;
  tx.timeout_event = engine().schedule_after(timeout_seconds, [txp] {
    txp->timed_out = true;
    txp->wake.notify_all();
  });
  while (!tx.phase_done && !tx.failed && !tx.timed_out) {
    co_await tx.wake.wait();
  }
  tx.timeout_event.cancel();
  if (tx.phase_done) {
    co_return true;  // a completed phase beats a late timeout
  }
  if (!tx.failed) {
    tx.failed = true;
    tx.fail_reason =
        tx.phase == "spawn" ? "spawn-timeout" : "redistribution-failed";
  }
  co_return false;
}

sim::Task<> MalleableEngine::spawn_phase(std::shared_ptr<Job> job,
                                         mpi::Proc* proc) {
  ResizeTx& tx = *job->tx;
  if (const auto it = phase_stalls_.find("spawn");
      it != phase_stalls_.end()) {
    co_await sim::delay(engine(), it->second);
  }
  const int join_iter = job->open_iter + 1;
  const std::string name =
      job->spec.name + ".g" + std::to_string(++job->generation);
  MalleableEngine* self = this;
  auto anchor = job;
  mpi::AppMain app = [self, anchor, join_iter](mpi::Proc& p) -> sim::Task<> {
    return self->worker_main(anchor, join_iter, p);
  };
  tx.spawn_result = co_await proc->spawn_many(
      tx.hosts, std::move(app), name, tx.strategy, &tx.spawned, tx.cancel);
  tx.phase_done = true;
  tx.wake.notify_all();
}

sim::Task<> MalleableEngine::redistribute_phase(std::shared_ptr<Job> job) {
  ResizeTx& tx = *job->tx;
  if (const auto it = phase_stalls_.find("redistribute");
      it != phase_stalls_.end()) {
    co_await sim::delay(engine(), it->second);
  }
  const Workload& wl = job->spec.workload;
  tx.new_blocks = partition_blocks(
      wl.blocks, static_cast<int>(tx.new_members.size()));
  const auto owners_of = [](const std::vector<mpi::RankId>& members,
                            const std::vector<int>& counts) {
    std::vector<mpi::RankId> owners;
    for (std::size_t r = 0; r < members.size(); ++r) {
      for (int k = 0; k < counts[r]; ++k) {
        owners.push_back(members[r]);
      }
    }
    return owners;
  };
  const std::vector<mpi::RankId> old_owners =
      owners_of(job->members, job->blocks_of);
  const std::vector<mpi::RankId> new_owners =
      owners_of(tx.new_members, tx.new_blocks);
  assert(old_owners.size() == new_owners.size());
  // Move coalesced runs of blocks whose owner changed; each run is one
  // state transfer between the owning hosts.
  std::size_t b = 0;
  while (b < old_owners.size()) {
    if (old_owners[b] == new_owners[b]) {
      ++b;
      continue;
    }
    const mpi::RankId src = old_owners[b];
    const mpi::RankId dst = new_owners[b];
    std::size_t e = b;
    while (e < old_owners.size() && old_owners[e] == src &&
           new_owners[e] == dst) {
      ++e;
    }
    const double bytes = static_cast<double>(e - b) * wl.bytes_per_block;
    mpi::Proc* sp = mpi_->find(src);
    mpi::Proc* dp = mpi_->find(dst);
    if (sp == nullptr || dp == nullptr) {
      tx.failed = true;
      tx.fail_reason = "redistribution-failed";
      tx.wake.notify_all();
      co_return;
    }
    (void)co_await network_->transfer(sp->host().name(), dp->host().name(),
                                      bytes);
    tx.redistributed_bytes += bytes;
    b = e;
  }
  tx.phase_done = true;
  tx.wake.notify_all();
}

sim::Task<> MalleableEngine::execute_resize(std::shared_ptr<Job> job,
                                            mpi::Proc& proc) {
  PendingResize req = std::move(*job->pending);
  job->pending.reset();
  job->tx = std::make_unique<ResizeTx>(engine());
  ResizeTx& tx = *job->tx;
  tx.verb = req.verb;
  tx.delta = req.delta;
  tx.hosts = std::move(req.hosts);
  tx.strategy = req.strategy;
  tx.trace = req.trace;
  tx.started_at = engine().now();
  tx.ranks_before = static_cast<int>(job->members.size());
  if (obs::Tracer* t = options_.tracer; t != nullptr && obs::active(t)) {
    obs::Attrs attrs{
        {"verb", std::string(verb_name(tx.verb))},
        {"delta", static_cast<double>(tx.delta)},
        {"strategy", std::string(mpi::spawn_strategy_name(tx.strategy))}};
    obs::stamp(attrs, tx.trace);
    tx.span = t->begin_span("resize", "malleable", job->spec.name,
                            std::move(attrs));
  }
  notify_phase(*job, "plan");
  const std::string plan_error = validate_resize(*job, tx);
  if (!plan_error.empty()) {
    ARS_LOG_INFO("malleable", "resize of " << job->spec.name
                                           << " rejected: " << plan_error);
    finish_resize(*job, kAborted, "no-capacity", "plan");
    co_return;
  }

  if (tx.verb == ResizeVerb::kExpand) {
    notify_phase(*job, "spawn");
    const double spawn_start = engine().now();
    tx.worker = sim::Fiber::spawn(engine(), spawn_phase(job, &proc),
                                  job->spec.name + ".resize.spawn");
    if (!co_await await_phase(*job, options_.spawn_timeout)) {
      // Drain the fan-out: once the token flips no further children are
      // created and the spawn machinery fires its completion, after which
      // the partial group is ours to reap.
      tx.cancel->cancelled = true;
      while (!tx.phase_done) {
        co_await tx.wake.wait();
      }
      for (const mpi::RankId id : tx.spawned) {
        (void)mpi_->kill(id);
      }
      finish_resize(*job, kAborted, tx.fail_reason, "spawn");
      co_return;
    }
    tx.spawn_seconds = engine().now() - spawn_start;
    tx.new_members = job->members;
    tx.new_members.insert(tx.new_members.end(),
                          tx.spawn_result.children.begin(),
                          tx.spawn_result.children.end());

    notify_phase(*job, "redistribute");
    const double redistribute_start = engine().now();
    tx.worker = sim::Fiber::spawn(engine(), redistribute_phase(job),
                                  job->spec.name + ".resize.redistribute");
    if (!co_await await_phase(*job, options_.redistribute_timeout)) {
      tx.worker.kill();
      if (!options_.sabotage_skip_resize_rollback) {
        for (const mpi::RankId id : tx.spawn_result.children) {
          (void)mpi_->kill(id);
        }
      }
      // The spawn succeeded but the state never moved: the job stays at its
      // original size — a partial rollback, not a clean abort.
      finish_resize(*job, kPartialRollback, "redistribution-failed",
                    "redistribute");
      co_return;
    }
    tx.redistribute_seconds = engine().now() - redistribute_start;

    notify_phase(*job, "commit");
    co_await sim::delay(engine(),
                        options_.merge_overhead_per_round *
                            std::max(1, tx.spawn_result.rounds));
    job->members = tx.new_members;
    job->world = mpi_->make_comm(job->members);
    job->blocks_of = tx.new_blocks;
    for (std::size_t i = 0; i < tx.spawn_result.children.size(); ++i) {
      job->host_of[tx.spawn_result.children[i]] = tx.hosts[i];
    }
    apply_assignment(*job);
    finish_resize(*job, kCommitted, "", "");
  } else {
    // Shrink: pick the victims (still the plan phase).
    std::vector<mpi::RankId> victims;
    if (!tx.hosts.empty()) {
      for (const std::string& host : tx.hosts) {
        bool found = false;
        for (std::size_t i = job->members.size(); i-- > 1;) {
          const mpi::RankId id = job->members[i];
          const auto it = job->host_of.find(id);
          if (it != job->host_of.end() && it->second == host &&
              std::find(victims.begin(), victims.end(), id) ==
                  victims.end()) {
            victims.push_back(id);
            found = true;
            break;
          }
        }
        if (!found) {
          finish_resize(*job, kAborted, "no-capacity", "plan");
          co_return;
        }
      }
    } else {
      for (std::size_t i = job->members.size();
           i-- > 1 && static_cast<int>(victims.size()) < tx.delta;) {
        victims.push_back(job->members[i]);
      }
    }
    if (static_cast<int>(victims.size()) != tx.delta) {
      finish_resize(*job, kAborted, "no-capacity", "plan");
      co_return;
    }
    tx.victims = victims;
    tx.new_members.clear();
    for (const mpi::RankId id : job->members) {
      if (std::find(victims.begin(), victims.end(), id) == victims.end()) {
        tx.new_members.push_back(id);
      }
    }

    notify_phase(*job, "redistribute");
    const double redistribute_start = engine().now();
    tx.worker = sim::Fiber::spawn(engine(), redistribute_phase(job),
                                  job->spec.name + ".resize.redistribute");
    if (!co_await await_phase(*job, options_.redistribute_timeout)) {
      tx.worker.kill();
      // Nothing was spawned; the victims keep their blocks — clean abort.
      finish_resize(*job, kAborted, "redistribution-failed", "redistribute");
      co_return;
    }
    tx.redistribute_seconds = engine().now() - redistribute_start;

    notify_phase(*job, "commit");
    job->members = tx.new_members;
    job->world = mpi_->make_comm(job->members);
    job->blocks_of = tx.new_blocks;
    for (const mpi::RankId id : tx.victims) {
      job->retiring.insert(id);
    }
    apply_assignment(*job);
    job->gate.notify_all();  // release the victims to retire
    finish_resize(*job, kCommitted, "", "");
  }
}

void MalleableEngine::finish_resize(Job& job, const std::string& outcome,
                                    const std::string& reason,
                                    const std::string& phase) {
  ResizeTx& tx = *job.tx;
  ResizeOutcome record;
  record.job = job.spec.name;
  record.verb = tx.verb;
  record.delta = tx.delta;
  record.hosts = tx.hosts;
  record.outcome = outcome;
  record.reason = reason;
  record.phase = phase;
  record.ranks_before = tx.ranks_before;
  record.ranks_after = static_cast<int>(job.members.size());
  record.started_at = tx.started_at;
  record.finished_at = engine().now();
  record.spawn_seconds = tx.spawn_seconds;
  record.redistribute_seconds = tx.redistribute_seconds;
  record.redistributed_bytes = tx.redistributed_bytes;
  record.spawn_rounds = tx.spawn_result.rounds;
  record.trace = tx.trace;
  if (obs::MetricsRegistry* m = options_.metrics) {
    m->counter("malleable.resizes",
               {{"verb", verb_name(tx.verb)}, {"outcome", outcome}})
        .inc();
    if (outcome != kCommitted) {
      m->counter("malleable.resize_failures",
                 {{"reason", reason.empty() ? "unknown" : reason}})
          .inc();
    }
    if (tx.spawn_seconds > 0.0) {
      m->histogram("malleable.spawn_ms",
                   {{"strategy", mpi::spawn_strategy_name(tx.strategy)}},
                   spawn_ms_bounds())
          .observe(tx.spawn_seconds * 1e3);
    }
    if (tx.redistribute_seconds > 0.0) {
      m->histogram("malleable.redistribute_ms", {}, redistribute_ms_bounds())
          .observe(tx.redistribute_seconds * 1e3);
    }
    if (tx.redistributed_bytes > 0.0) {
      m->counter("malleable.redistributed_bytes").inc(tx.redistributed_bytes);
    }
    if (outcome == kCommitted) {
      if (tx.verb == ResizeVerb::kExpand) {
        m->counter("malleable.ranks_spawned").inc(tx.delta);
      } else {
        m->counter("malleable.ranks_retired").inc(tx.delta);
      }
    }
  }
  if (obs::Tracer* t = options_.tracer; t != nullptr && obs::active(t)) {
    t->end_span(tx.span,
                {{"outcome", outcome},
                 {"reason", reason},
                 {"ranks_after", static_cast<double>(record.ranks_after)}});
  }
  ARS_LOG_INFO("malleable",
               "resize " << verb_name(tx.verb) << "(" << job.spec.name << ", "
                         << tx.delta << ") " << outcome
                         << (reason.empty() ? "" : " [" + reason + "]")
                         << ", ranks " << record.ranks_before << " -> "
                         << record.ranks_after);
  // Ground truth for the no-lost-rank invariant: at the instant a terminal
  // outcome is reported, every spawned child must be a member or dead.  A
  // live non-member is a leaked rank (the sabotage knob, or a protocol
  // bug).
  for (const mpi::RankId id : tx.spawned) {
    if (mpi_->alive(id) &&
        std::find(job.members.begin(), job.members.end(), id) ==
            job.members.end()) {
      ++ghost_ranks_;
      if (obs::MetricsRegistry* m = options_.metrics) {
        m->counter("malleable.ghost_ranks").inc();
      }
    }
  }
  history_.push_back(std::move(record));
  job.tx.reset();
  if (outcome_listener_) {
    outcome_listener_(history_.back());
  }
}

}  // namespace ars::malleable
