#include "ars/net/flowmeter.hpp"

#include <algorithm>

namespace ars::net {

void FlowMeter::add(double t0, double t1, double bytes) {
  if (bytes <= 0.0) {
    return;
  }
  if (t1 < t0) {
    std::swap(t0, t1);
  }
  segments_.push_back(Segment{t0, t1, bytes});
  total_ += bytes;
  prune(t1);
}

void FlowMeter::prune(double now) {
  const double horizon = now - retention_;
  while (!segments_.empty() && segments_.front().end < horizon) {
    segments_.pop_front();
  }
}

double FlowMeter::bytes_between(double t0, double t1) const noexcept {
  double bytes = 0.0;
  for (const auto& segment : segments_) {
    if (segment.end <= segment.begin) {
      // Instantaneous burst: counted if inside the window.
      if (segment.begin >= t0 && segment.begin <= t1) {
        bytes += segment.bytes;
      }
      continue;
    }
    const double overlap = std::min(segment.end, t1) -
                           std::max(segment.begin, t0);
    if (overlap > 0.0) {
      bytes += segment.bytes * overlap / (segment.end - segment.begin);
    }
  }
  return bytes;
}

double FlowMeter::rate_bps(double window, double now) const noexcept {
  if (window <= 0.0) {
    return 0.0;
  }
  return bytes_between(now - window, now) / window;
}

}  // namespace ars::net
