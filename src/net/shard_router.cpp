#include "ars/net/shard_router.hpp"

#include <stdexcept>
#include <utility>

namespace ars::net {

ShardRouter::ShardRouter(sim::ShardGroup& group)
    : ShardRouter(group, Options{}) {}

ShardRouter::ShardRouter(sim::ShardGroup& group, Options options)
    : group_(&group),
      options_(options),
      networks_(group.size(), nullptr),
      forwarded_(group.size()) {
  if (options_.cross_latency < group.lookahead()) {
    throw std::invalid_argument(
        "ShardRouter cross_latency must be >= the group lookahead");
  }
}

ShardRouter::~ShardRouter() {
  for (Network* network : networks_) {
    if (network != nullptr) {
      network->set_shard_router(nullptr, 0);
    }
  }
}

void ShardRouter::attach(std::size_t shard, Network& network) {
  if (shard >= networks_.size()) {
    throw std::out_of_range("ShardRouter::attach: shard out of range");
  }
  if (networks_[shard] != nullptr) {
    throw std::invalid_argument("ShardRouter::attach: shard already wired");
  }
  networks_[shard] = &network;
  network.set_shard_router(this, shard);
  for (const std::string& host : network.host_names()) {
    assign_host(host, shard);
  }
}

void ShardRouter::assign_host(const std::string& host, std::size_t shard) {
  if (shard >= networks_.size()) {
    throw std::out_of_range("ShardRouter::assign_host: shard out of range");
  }
  const auto [it, inserted] = hosts_.emplace(host, shard);
  if (!inserted && it->second != shard) {
    throw std::invalid_argument("host assigned to two shards: " + host);
  }
}

std::optional<std::size_t> ShardRouter::shard_of(
    const std::string& host) const {
  const auto it = hosts_.find(host);
  return it == hosts_.end() ? std::nullopt
                            : std::optional<std::size_t>(it->second);
}

bool ShardRouter::routes(const std::string& host,
                         std::size_t from_shard) const {
  const auto it = hosts_.find(host);
  return it != hosts_.end() && it->second != from_shard &&
         networks_[it->second] != nullptr;
}

void ShardRouter::forward(std::size_t src_shard, Message message,
                          double extra_delay, int copies) {
  const auto it = hosts_.find(message.dst_host);
  if (it == hosts_.end() || networks_[it->second] == nullptr) {
    return;  // caller checked routes(); defensive no-op
  }
  const std::size_t dst_shard = it->second;
  Network* dst_net = networks_[dst_shard];
  const sim::SimTime at = group_->engine(src_shard).now() +
                          options_.cross_latency +
                          std::max(extra_delay, 0.0);
  for (int copy = 0; copy < copies; ++copy) {
    Message shipped = copy + 1 < copies ? message : std::move(message);
    group_->post(src_shard, dst_shard, at,
                 [dst_net, msg = std::move(shipped)]() mutable {
                   dst_net->deliver_local(std::move(msg));
                 });
  }
  forwarded_[src_shard].value += static_cast<std::uint64_t>(copies);
}

std::uint64_t ShardRouter::forwarded() const {
  std::uint64_t total = 0;
  for (const Counter& counter : forwarded_) {
    total += counter.value;
  }
  return total;
}

}  // namespace ars::net
