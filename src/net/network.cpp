#include "ars/net/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "ars/net/shard_router.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"

namespace ars::net {

namespace {
constexpr double kByteEpsilon = 1e-6;  // sub-byte residue counts as done
// Completion events must strictly advance virtual time even when `now` is
// large: below one ulp of `now`, now + delay == now and the event loop
// would spin forever on floating-point residue.
constexpr double kMinCompletionDelay = 1e-9;
}  // namespace

Network::Network(sim::Engine& engine) : Network(engine, Options{}) {}

Network::Network(sim::Engine& engine, Options options)
    : engine_(&engine), options_(options), last_update_(engine.now()) {}

Network::~Network() {
  // Kill in-flight datagram deliveries; their transfer guards withdraw the
  // associated bandwidth jobs.
  for (auto& fiber : delivery_fibers_) {
    fiber.kill();
  }
  completion_event_.cancel();
  assert(jobs_.empty() && "Network destroyed with active transfers");
}

void Network::attach(host::Host& h) {
  if (hosts_.contains(h.name())) {
    throw std::invalid_argument("host already attached: " + h.name());
  }
  HostRecord rec;
  rec.host = &h;
  rec.ip = "10.0.0." + std::to_string(next_ip_suffix_++);
  hosts_.emplace(h.name(), std::move(rec));
}

host::Host* Network::find_host(const std::string& name) const {
  const auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.host;
}

std::vector<std::string> Network::host_names() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& [name, rec] : hosts_) {
    names.push_back(name);
  }
  return names;
}

Network::HostRecord& Network::record(const std::string& hostname) {
  const auto it = hosts_.find(hostname);
  if (it == hosts_.end()) {
    throw std::out_of_range("unknown host: " + hostname);
  }
  return it->second;
}

const Network::HostRecord& Network::record(const std::string& hostname) const {
  const auto it = hosts_.find(hostname);
  if (it == hosts_.end()) {
    throw std::out_of_range("unknown host: " + hostname);
  }
  return it->second;
}

Endpoint& Network::bind(const std::string& hostname, int port) {
  (void)record(hostname);  // validate host
  const auto key = std::make_pair(hostname, port);
  if (endpoints_.contains(key)) {
    throw std::invalid_argument("port already bound: " + hostname + ":" +
                                std::to_string(port));
  }
  auto endpoint = std::make_unique<Endpoint>(*engine_);
  Endpoint& ref = *endpoint;
  endpoints_.emplace(key, std::move(endpoint));
  return ref;
}

void Network::unbind(const std::string& hostname, int port) {
  const auto it = endpoints_.find(std::make_pair(hostname, port));
  if (it != endpoints_.end()) {
    it->second->inbox.close();
    endpoints_.erase(it);
  }
}

int Network::allocate_port(const std::string& hostname) {
  return record(hostname).next_port++;
}

void Network::post(Message message) {
  if (message.size_bytes == 0) {
    message.size_bytes = message.payload.size() + options_.message_overhead;
  }
  message.sent_at = engine_->now();
  if (message.trace.set() && obs::active(options_.tracer)) {
    obs::Attrs attrs{{"dst", message.dst_host},
                     {"port", message.dst_port},
                     {"bytes", static_cast<std::size_t>(message.size_bytes)}};
    obs::stamp(attrs, message.trace);
    options_.tracer->instant("net.send", "net", message.src_host,
                             std::move(attrs));
  }
  if (!hosts_.contains(message.dst_host)) {
    if (shard_router_ != nullptr && route_cross_shard(message)) {
      return;  // handled (forwarded, or dropped by the fault verdict)
    }
    ARS_LOG_WARN("net", "dropping message to unknown host "
                            << message.dst_host);
    count_drop(message.src_host, "unknown_host");
    return;
  }
  int copies = 1;
  double extra_delay = 0.0;
  if (fault_policy_ != nullptr) {
    const FaultPolicy::PostVerdict verdict = fault_policy_->on_post(message);
    if (verdict.drop) {
      ARS_LOG_WARN("net", "fault drops message " << message.src_host << " -> "
                                                 << message.dst_host << ":"
                                                 << message.dst_port);
      count_drop(message.src_host, "fault");
      return;
    }
    copies += std::max(verdict.duplicates, 0);
    extra_delay = std::max(verdict.extra_delay, 0.0);
  }
  // Deliver through a detached fiber so the datagram pays the same latency
  // and bandwidth-sharing costs as any other traffic.
  auto deliver = [](Network* net, Message msg, double hold) -> sim::Task<> {
    if (hold > 0.0) {
      co_await sim::delay(*net->engine_, hold);
    }
    (void)co_await net->transfer(msg.src_host, msg.dst_host,
                                 static_cast<double>(msg.size_bytes));
    msg.delivered_at = net->engine_->now();
    const auto it = net->endpoints_.find(
        std::make_pair(msg.dst_host, msg.dst_port));
    if (it == net->endpoints_.end() || it->second->inbox.closed()) {
      ARS_LOG_WARN("net", "dropping message to unbound "
                              << msg.dst_host << ":" << msg.dst_port);
      net->count_drop(msg.src_host, "unbound_port");
      co_return;
    }
    if (msg.trace.set() && obs::active(net->options_.tracer)) {
      obs::Attrs attrs{{"src", msg.src_host},
                       {"port", msg.dst_port},
                       {"latency_ms", (msg.delivered_at - msg.sent_at) * 1e3}};
      obs::stamp(attrs, msg.trace);
      net->options_.tracer->instant("net.recv", "net", msg.dst_host,
                                    std::move(attrs));
    }
    it->second->inbox.send(std::move(msg));
  };
  // Prune finished deliveries so the tracking list stays small.
  std::erase_if(delivery_fibers_,
                [](const sim::Fiber& f) { return f.done(); });
  for (int copy = 1; copy < copies; ++copy) {  // injected duplicates
    delivery_fibers_.push_back(sim::Fiber::spawn(
        *engine_, deliver(this, message, extra_delay), "net.post"));
  }
  delivery_fibers_.push_back(sim::Fiber::spawn(
      *engine_, deliver(this, std::move(message), extra_delay), "net.post"));
}

bool Network::route_cross_shard(Message& message) {
  if (!shard_router_->routes(message.dst_host, shard_id_)) {
    return false;
  }
  // Same source-side fault semantics as the local path: the verdict (and
  // any seeded random state it advances) is charged where the message is
  // posted, so a fixed shard layout keeps fault runs deterministic.
  int copies = 1;
  double extra_delay = 0.0;
  if (fault_policy_ != nullptr) {
    const FaultPolicy::PostVerdict verdict = fault_policy_->on_post(message);
    if (verdict.drop) {
      ARS_LOG_WARN("net", "fault drops message " << message.src_host << " -> "
                                                 << message.dst_host << ":"
                                                 << message.dst_port);
      count_drop(message.src_host, "fault");
      return true;
    }
    copies += std::max(verdict.duplicates, 0);
    extra_delay = std::max(verdict.extra_delay, 0.0);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("ars_net_cross_shard_total").inc(copies);
  }
  shard_router_->forward(shard_id_, std::move(message), extra_delay, copies);
  return true;
}

void Network::deliver_local(Message message) {
  message.delivered_at = engine_->now();
  const auto it =
      endpoints_.find(std::make_pair(message.dst_host, message.dst_port));
  if (it == endpoints_.end() || it->second->inbox.closed()) {
    ARS_LOG_WARN("net", "dropping message to unbound "
                            << message.dst_host << ":" << message.dst_port);
    // The poster lives on another shard, so only this network's totals and
    // the labeled counter move; the per-poster count stays on its own shard.
    count_drop(message.src_host, "unbound_port");
    return;
  }
  if (message.trace.set() && obs::active(options_.tracer)) {
    obs::Attrs attrs{
        {"src", message.src_host},
        {"port", message.dst_port},
        {"latency_ms", (message.delivered_at - message.sent_at) * 1e3}};
    obs::stamp(attrs, message.trace);
    options_.tracer->instant("net.recv", "net", message.dst_host,
                             std::move(attrs));
  }
  it->second->inbox.send(std::move(message));
}

sim::Task<double> Network::transfer(std::string src, std::string dst,
                                    double bytes) {
  const double start = engine_->now();
  co_await sim::delay(*engine_, options_.latency);
  if (src == dst || bytes <= 0.0) {
    co_return engine_->now() - start;
  }
  HostRecord& src_rec = record(src);
  HostRecord& dst_rec = record(dst);

  // RAII registration: a killed fiber (or a migration that withdraws) must
  // release its NIC share immediately.
  struct JobGuard {
    Network* net;
    TransferJob job;
    JobGuard(Network* n, sim::Engine& e, HostRecord* s, HostRecord* d,
             double total)
        : net(n), job(e, s, d, total) {
      net->register_job(&job);
    }
    ~JobGuard() {
      if (!job.completed) {
        net->withdraw_job(&job);
      }
    }
  };

  JobGuard guard{this, *engine_, &src_rec, &dst_rec, bytes};
  co_await guard.job.done.wait();
  co_return engine_->now() - start;
}

void Network::advance() {
  const double now = engine_->now();
  const double dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  for (auto* job : jobs_) {
    const double moved = std::min(job->rate * dt, job->remaining);
    if (moved > 0.0) {
      job->remaining -= moved;
      job->src->tx_meter.add(last_update_, now, moved);
      job->dst->rx_meter.add(last_update_, now, moved);
    }
  }
  last_update_ = now;
}

void Network::recompute_rates() {
  for (auto* job : jobs_) {
    const double tx_share =
        options_.bandwidth_bps / std::max(job->src->tx_active, 1);
    const double rx_share =
        options_.bandwidth_bps / std::max(job->dst->rx_active, 1);
    job->rate = std::min(tx_share, rx_share);
    if (fault_policy_ != nullptr) {
      // Degraded links slow bulk transfers; factor 0 (partition) stalls them
      // until on_fault_change() reports the link healed.
      const double factor = std::clamp(
          fault_policy_->bandwidth_factor(job->src->host->name(),
                                          job->dst->host->name()),
          0.0, 1.0);
      job->rate *= factor;
    }
  }
}

void Network::reschedule_completion() {
  completion_event_.cancel();
  if (jobs_.empty()) {
    return;
  }
  double next = std::numeric_limits<double>::infinity();
  for (const auto* job : jobs_) {
    if (job->rate > 0.0) {
      next = std::min(next, job->remaining / job->rate);
    }
  }
  if (std::isfinite(next)) {
    completion_event_ = engine_->schedule_after(
        std::max(next, kMinCompletionDelay),
        [this] { on_completion_event(); });
  }
}

void Network::on_completion_event() {
  advance();
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    TransferJob* job = *it;
    if (job->remaining <= kByteEpsilon) {
      it = jobs_.erase(it);
      --job->src->tx_active;
      --job->dst->rx_active;
      job->completed = true;
      job->done.fire();
    } else {
      ++it;
    }
  }
  recompute_rates();
  reschedule_completion();
}

void Network::register_job(TransferJob* job) {
  advance();
  jobs_.push_back(job);
  ++job->src->tx_active;
  ++job->dst->rx_active;
  recompute_rates();
  reschedule_completion();
}

void Network::withdraw_job(TransferJob* job) {
  advance();
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job), jobs_.end());
  --job->src->tx_active;
  --job->dst->rx_active;
  recompute_rates();
  reschedule_completion();
}

void Network::set_fault_policy(FaultPolicy* policy) noexcept {
  fault_policy_ = policy;
  on_fault_change();
}

void Network::on_fault_change() {
  advance();
  recompute_rates();
  reschedule_completion();
}

std::uint64_t Network::dropped_count(const std::string& hostname) const {
  const auto it = hosts_.find(hostname);
  return it == hosts_.end() ? 0 : it->second.messages_dropped;
}

void Network::count_drop(const std::string& src_host, const char* reason) {
  ++dropped_total_;
  const auto it = hosts_.find(src_host);
  if (it != hosts_.end()) {
    ++it->second.messages_dropped;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("ars_net_dropped_total", {{"reason", reason}})
        .inc();
  }
}

const FlowMeter& Network::tx_meter(const std::string& hostname) const {
  return record(hostname).tx_meter;
}

const FlowMeter& Network::rx_meter(const std::string& hostname) const {
  return record(hostname).rx_meter;
}

double Network::tx_rate_bps(const std::string& hostname,
                            double window) const {
  // Fold in the live portion of in-flight transfers so sensors see current
  // traffic, not just completed accounting intervals.
  const HostRecord& rec = record(hostname);
  double bytes = rec.tx_meter.bytes_between(engine_->now() - window,
                                            engine_->now());
  const double live_span = engine_->now() - last_update_;
  if (live_span > 0.0) {
    for (const auto* job : jobs_) {
      if (job->src == &rec) {
        bytes += std::min(job->rate * std::min(live_span, window),
                          job->remaining);
      }
    }
  }
  return window > 0.0 ? bytes / window : 0.0;
}

double Network::rx_rate_bps(const std::string& hostname,
                            double window) const {
  const HostRecord& rec = record(hostname);
  double bytes = rec.rx_meter.bytes_between(engine_->now() - window,
                                            engine_->now());
  const double live_span = engine_->now() - last_update_;
  if (live_span > 0.0) {
    for (const auto* job : jobs_) {
      if (job->dst == &rec) {
        bytes += std::min(job->rate * std::min(live_span, window),
                          job->remaining);
      }
    }
  }
  return window > 0.0 ? bytes / window : 0.0;
}

}  // namespace ars::net
