#include "ars/net/commhog.hpp"

namespace ars::net {

CommHog::CommHog(Network& network, Options options)
    : network_(&network), options_(std::move(options)) {}

sim::Task<> CommHog::pump(std::string from, std::string to) {
  auto& engine = network_->engine();
  const double chunk = options_.rate_bps * options_.period;
  while (true) {
    const double started = engine.now();
    (void)co_await network_->transfer(from, to, chunk);
    const double elapsed = engine.now() - started;
    if (elapsed < options_.period) {
      // Pace to the target rate; under contention the transfer itself is
      // the pacer and the achieved rate degrades naturally.
      co_await sim::delay(engine, options_.period - elapsed);
    }
  }
}

void CommHog::start() {
  if (running_) {
    return;
  }
  running_ = true;
  auto& engine = network_->engine();
  fibers_.push_back(sim::Fiber::spawn(engine, pump(options_.src, options_.dst),
                                      options_.name + ".fwd"));
  if (options_.bidirectional) {
    fibers_.push_back(sim::Fiber::spawn(
        engine, pump(options_.dst, options_.src), options_.name + ".rev"));
  }
  if (host::Host* src = network_->find_host(options_.src)) {
    src->adjust_established_sockets(options_.sockets);
  }
  if (host::Host* dst = network_->find_host(options_.dst)) {
    dst->adjust_established_sockets(options_.sockets);
  }
}

void CommHog::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (auto& fiber : fibers_) {
    fiber.kill();
  }
  fibers_.clear();
  if (host::Host* src = network_->find_host(options_.src)) {
    src->adjust_established_sockets(-options_.sockets);
  }
  if (host::Host* dst = network_->find_host(options_.dst)) {
    dst->adjust_established_sockets(-options_.sockets);
  }
}

}  // namespace ars::net
