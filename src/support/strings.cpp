#include "ars/support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ars::support {

namespace {

bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) {
    ++begin;
  }
  while (end > begin && is_space(text[end - 1])) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) {
      ++i;
    }
    if (i > start) {
      fields.emplace_back(text.substr(start, i - start));
    }
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) {
    return false;
  }
  return std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
    return std::tolower(static_cast<unsigned char>(x)) ==
           std::tolower(static_cast<unsigned char>(y));
  });
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return std::nullopt;
  }
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return std::nullopt;
  }
  std::int64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    return std::nullopt;
  }
  return value;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) {
      out += separator;
    }
    out += pieces[i];
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

}  // namespace ars::support
