#include "ars/support/byteorder.hpp"

#include <stdexcept>

namespace ars::support {

namespace {

void append_be(std::vector<std::byte>& out, std::uint64_t value, int bytes) {
  for (int shift = (bytes - 1) * 8; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::byte>((value >> shift) & 0xffU));
  }
}

std::uint64_t read_be(std::span<const std::byte> in, std::size_t& offset,
                      int bytes) {
  if (offset + static_cast<std::size_t>(bytes) > in.size()) {
    throw std::out_of_range("byteorder: buffer underrun");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    value = (value << 8) | static_cast<std::uint64_t>(in[offset + i]);
  }
  offset += static_cast<std::size_t>(bytes);
  return value;
}

}  // namespace

void put_be16(std::vector<std::byte>& out, std::uint16_t value) {
  append_be(out, value, 2);
}
void put_be32(std::vector<std::byte>& out, std::uint32_t value) {
  append_be(out, value, 4);
}
void put_be64(std::vector<std::byte>& out, std::uint64_t value) {
  append_be(out, value, 8);
}
void put_be_double(std::vector<std::byte>& out, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  put_be64(out, bits);
}

std::uint16_t get_be16(std::span<const std::byte> in, std::size_t& offset) {
  return static_cast<std::uint16_t>(read_be(in, offset, 2));
}
std::uint32_t get_be32(std::span<const std::byte> in, std::size_t& offset) {
  return static_cast<std::uint32_t>(read_be(in, offset, 4));
}
std::uint64_t get_be64(std::span<const std::byte> in, std::size_t& offset) {
  return read_be(in, offset, 8);
}
double get_be_double(std::span<const std::byte> in, std::size_t& offset) {
  const std::uint64_t bits = get_be64(in, offset);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace ars::support
