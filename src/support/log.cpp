#include "ars/support/log.hpp"

#include <cstdio>

namespace ars::support {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view component,
             std::string_view message, double sim_time) {
    std::fprintf(stderr, "[%10.3f] %-5s %-12.*s %.*s\n", sim_time,
                 std::string(to_string(level)).c_str(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  };
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_clock(ClockFn clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

void Logger::set_sink(SinkFn sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::set_forward(SinkFn forward) {
  const std::lock_guard<std::mutex> lock(mutex_);
  forward_ = std::move(forward);
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (!enabled(level)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const double sim_time = clock_ ? clock_() : -1.0;
  if (sink_) {
    sink_(level, component, message, sim_time);
  }
  if (forward_) {
    forward_(level, component, message, sim_time);
  }
}

}  // namespace ars::support
