#include "ars/support/rng.hpp"

#include <cmath>

namespace ars::support {

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF sampling; clamp the uniform away from 0 to avoid log(0).
  double u = uniform();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

}  // namespace ars::support
