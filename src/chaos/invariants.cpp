#include "ars/chaos/invariants.hpp"

#include <map>
#include <set>

#include "ars/obs/tracer.hpp"

namespace ars::chaos {

std::string InvariantReport::summary() const {
  if (ok()) {
    return "ok";
  }
  std::string text;
  for (const Violation& violation : violations) {
    if (!text.empty()) {
      text += "\n";
    }
    text += violation.invariant + " [" + violation.subject + "]: " +
            violation.detail;
  }
  return text;
}

void InvariantChecker::expect_app(std::string process_name) {
  expected_apps_.push_back(std::move(process_name));
}

void InvariantChecker::expect_alive(std::string host_name) {
  expected_alive_.push_back(std::move(host_name));
}

InvariantReport InvariantChecker::check() const {
  InvariantReport report;
  report.apps_checked = expected_apps_.size();
  report.hosts_checked = expected_alive_.size();
  const auto violate = [&report](std::string invariant, std::string subject,
                                 std::string detail) {
    report.violations.push_back(Violation{
        std::move(invariant), std::move(subject), std::move(detail)});
  };

  // Scan the trace once: exits per process, resumes, relaunches.
  std::map<std::string, int> exits;       // process name -> exit count
  std::size_t resumed_events = 0;
  for (const obs::TraceEvent& event : runtime_->tracer().events()) {
    if (event.kind != obs::EventKind::kInstant) {
      continue;
    }
    if (event.name == "process.exit") {
      ++exits[event.track];
      ++report.exits_seen;
    } else if (event.name == "migration.resumed") {
      ++resumed_events;
    } else if (event.name == "process.relaunch") {
      ++report.relaunches_seen;
    } else if (event.name == "ckpt.torn_restore") {
      ++report.torn_restores;
      violate("no-torn-checkpoint", event.track,
              "relaunch restored an incomplete checkpoint");
    }
  }

  // Exactly-once completion.
  const bool quiesced = runtime_->engine().pending_events() == 0;
  for (const std::string& app : expected_apps_) {
    const auto it = exits.find(app);
    const int count = it == exits.end() ? 0 : it->second;
    if (count == 1) {
      continue;
    }
    if (count > 1) {
      violate("exactly-once-finish", app,
              "finished " + std::to_string(count) + " times");
    } else if (quiesced) {
      violate("deadlock-watchdog", app,
              "sim time quiesced with the application unfinished");
    } else {
      violate("exactly-once-finish", app, "did not finish by the horizon");
    }
  }

  // No double-live instance: a process name on more than one host at once.
  std::map<std::string, std::set<std::string>> live_on;
  for (const std::string& host_name : runtime_->host_names()) {
    for (const host::ProcessInfo& info :
         runtime_->host(host_name).processes().snapshot()) {
      if (info.migration_enabled) {
        live_on[info.name].insert(host_name);
      }
    }
  }
  for (const auto& [name, hosts] : live_on) {
    if (hosts.size() > 1) {
      std::string where;
      for (const std::string& host_name : hosts) {
        where += (where.empty() ? "" : ", ") + host_name;
      }
      violate("single-live-instance", name, "live on " + where);
    }
  }

  // Exactly-once migration: the middleware's succeeded timelines and the
  // trace's resume events must agree one-to-one.
  for (const hpcm::MigrationTimeline& timeline :
       runtime_->middleware().history()) {
    if (timeline.succeeded) {
      ++report.migrations_succeeded;
    }
    if (timeline.outcome == "aborted") {
      ++report.migrations_aborted;
    } else if (timeline.outcome == "rolled-back") {
      ++report.migrations_rolled_back;
    }
  }
  if (resumed_events != report.migrations_succeeded) {
    violate("exactly-once-migration", "middleware",
            std::to_string(report.migrations_succeeded) +
                " migrations succeeded but " +
                std::to_string(resumed_events) + " resume events recorded");
  }

  // No stranded work: a restart parked on the retry list means a lost
  // process was never placed — every park must drain by the horizon, once
  // the faults heal and capacity returns (pairs with exactly-once-finish:
  // parked work may finish late, but never zero times and never silently).
  for (const registry::ProcessEntry& process :
       runtime_->scheduler().stranded()) {
    violate("no-stranded-work", process.name,
            "restart still parked on the retry list at the horizon");
  }

  // No lost process: an aborted (pre-commit) or rolled-back (post-commit)
  // migration must leave exactly one live or restartable instance — the
  // process finished, is live on some host, is parked for relaunch in the
  // middleware, or is on the registry's retry list.  Anything else means
  // the transaction destroyed the application.
  std::set<std::string> restartable;
  for (const std::string& name : runtime_->middleware().parked_for_relaunch()) {
    restartable.insert(name);
  }
  for (const registry::ProcessEntry& process :
       runtime_->scheduler().stranded()) {
    restartable.insert(process.name);
  }
  for (const hpcm::MigrationTimeline& timeline :
       runtime_->middleware().history()) {
    if (timeline.outcome != "aborted" && timeline.outcome != "rolled-back") {
      continue;
    }
    const auto exited = exits.find(timeline.process);
    const bool finished = exited != exits.end() && exited->second > 0;
    const bool live = live_on.count(timeline.process) > 0;
    if (!finished && !live && restartable.count(timeline.process) == 0) {
      violate("no-lost-process", timeline.process,
              "migration " + timeline.outcome + " (" +
                  timeline.abort_reason + " in " + timeline.abort_phase +
                  ") left no live or restartable instance");
    }
  }

  // No lost rank: at every terminal resize outcome the malleable engine
  // counted spawned children still alive outside membership (ground truth
  // against the mpi process table); any ghost means a grow/shrink
  // transaction leaked a rank.  Aborts must also restore the original
  // world size, and a job whose root survived must finish.
  malleable::MalleableEngine& malleable = runtime_->malleable();
  report.ghost_ranks = malleable.ghost_ranks();
  if (report.ghost_ranks > 0) {
    violate("no-lost-rank", "malleable",
            std::to_string(report.ghost_ranks) +
                " rank(s) alive outside membership at outcome time");
  }
  for (const malleable::ResizeOutcome& outcome : malleable.history()) {
    ++report.resizes_checked;
    if (outcome.outcome == malleable::kAborted &&
        outcome.ranks_after != outcome.ranks_before) {
      violate("no-lost-rank", outcome.job,
              "aborted " + std::string(malleable::verb_name(outcome.verb)) +
                  " moved the world from " +
                  std::to_string(outcome.ranks_before) + " to " +
                  std::to_string(outcome.ranks_after) + " ranks");
    }
  }
  for (const std::string& job : malleable.job_names()) {
    if (malleable.failed(job)) {
      continue;  // a dead root legitimately tears the job down
    }
    if (!malleable.finished(job)) {
      violate(quiesced ? "deadlock-watchdog" : "malleable-job-finish", job,
              "malleable job unfinished at the horizon");
    }
  }

  // Lease convergence: every host expected alive must have re-registered
  // (entry present) and escaped `unavailable` once the faults healed.
  for (const std::string& host_name : expected_alive_) {
    const auto state = runtime_->scheduler().host_state(host_name);
    if (!state.has_value()) {
      violate("lease-convergence", host_name,
              "not in the registry's host table at the horizon");
    } else if (*state == rules::SystemState::kUnavailable) {
      violate("lease-convergence", host_name,
              "still marked unavailable at the horizon");
    }
  }

  return report;
}

}  // namespace ars::chaos
