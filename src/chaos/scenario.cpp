#include "ars/chaos/scenario.hpp"

#include <memory>
#include <vector>

#include "ars/ckpt/strategy.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/rules/policy.hpp"
#include "ars/support/rng.hpp"

namespace ars::chaos {

std::uint64_t fnv1a(const std::string& data) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

/// Checkpointing counter application (the failover tests' workload shape):
/// restores its loop index after a migration or relaunch, checkpoints
/// periodically, and records where it finished.
struct ScenarioApp {
  static constexpr int kBlocks = 8;
  static constexpr int kBlockDoubles = 8 * 1024;  // 64 KiB per block

  int iterations = 60;
  int checkpoint_every = 10;
  /// Pre-copy runs carry a block-structured state (one block rewritten per
  /// iteration — the write set the rounds must chase) plus a scratch entry
  /// erased halfway, so deltas ship tombstones under fire.
  bool heavy_state = false;
  /// Strategy-driven checkpointing (DESIGN.md §17): poll the middleware's
  /// checkpoint plan every iteration instead of the fixed every-N schedule.
  bool strategy_checkpoints = false;
  /// Opaque payload dragged along so checkpoint writes cost store time.
  std::uint64_t opaque_bytes = 0;
  bool finished = false;
  std::string finished_on;

  hpcm::MigrationEngine::MigratableApp make() {
    return [this](mpi::Proc& proc,
                  hpcm::MigrationContext& ctx) -> sim::Task<> {
      std::int64_t i = ctx.restored() ? *ctx.state().get_int("i") : 0;
      bool scratch_live = true;
      std::vector<std::vector<double>> data;
      if (heavy_state) {
        data.assign(kBlocks, std::vector<double>(kBlockDoubles, 0.0));
        if (ctx.restored()) {
          scratch_live = ctx.state().contains("scratch");
          for (int b = 0; b < kBlocks; ++b) {
            data[static_cast<std::size_t>(b)] =
                *ctx.state().get_doubles("block" + std::to_string(b));
          }
        }
      }
      ctx.on_save([this, &ctx, &i, &scratch_live, &data] {
        ctx.state().set_int("i", i);
        if (!heavy_state) {
          return;
        }
        if (scratch_live) {
          ctx.state().set_string("scratch", "pre-copy tombstone bait");
        }
        for (int b = 0; b < kBlocks; ++b) {
          ctx.state().set_doubles("block" + std::to_string(b),
                                  data[static_cast<std::size_t>(b)]);
        }
      });
      if (opaque_bytes > 0) {
        ctx.state().set_opaque("payload", opaque_bytes);
      }
      for (; i < iterations; ++i) {
        co_await ctx.poll_point();
        if (heavy_state && scratch_live && i == iterations / 2) {
          ctx.state().erase("scratch");
          scratch_live = false;
        }
        if (strategy_checkpoints) {
          co_await ctx.maybe_checkpoint();
        } else if (checkpoint_every > 0 && i > 0 &&
                   i % checkpoint_every == 0) {
          co_await ctx.checkpoint();
        }
        co_await proc.compute(1.0);
        if (heavy_state) {
          data[static_cast<std::size_t>(i % kBlocks)][0] += 1.0;
        }
      }
      finished = true;
      finished_on = proc.host().name();
    };
  }
};

}  // namespace

ScenarioReport run_scenario(const ScenarioOptions& options) {
  rules::MigrationPolicy policy = rules::paper_policy2();
  policy.set_warmup(20.0);
  core::ClusterConfig config = core::make_cluster(options.hosts, policy);
  config.registry_host = "ws1";
  config.auto_restart = true;
  // The sabotage knob disables lease expiry in effect (the sweeper never
  // sees a stale lease), so crashed hosts' work is never relaunched — the
  // checker must catch the stranded applications.
  config.lease_ttl = options.sabotage_lease_expiry ? 1.0e18 : 25.0;
  config.monitor_reregister_period = 20.0;
  config.registry_legacy_scan = options.legacy_scan;
  config.registry_audit = options.audit_decisions
                              ? registry::AuditMode::kAuto
                              : registry::AuditMode::kOff;
  config.monitor_delta_heartbeats = options.delta_heartbeats;
  // Tight transaction timeouts so migration-window faults resolve (abort
  // or commit) well inside the horizon.
  config.hpcm.init_timeout = 8.0;
  config.hpcm.eager_timeout = 20.0;
  config.hpcm.ack_timeout = 8.0;
  config.hpcm.sabotage_skip_rollback = options.sabotage_migration_rollback;
  config.hpcm.precopy = options.precopy;
  // Malleable jobs: the resize planner grows them into slack and shrinks
  // them off pressure; tight transaction timeouts so resize-window stalls
  // resolve (abort or rollback) well inside the horizon.
  config.enable_resize_planner = options.malleable_jobs > 0;
  config.resize_cooldown = 20.0;
  config.malleable.spawn_timeout = 12.0;
  config.malleable.redistribute_timeout = 25.0;
  config.malleable.sabotage_skip_resize_rollback =
      options.sabotage_resize_rollback;
  // Checkpoint scheduling (DESIGN.md §17): checkpoints route through the
  // shared store; "cooperative" additionally turns on the registry's I/O
  // scheduler (the runtime wires the request path from the same knob).
  config.hpcm.ckpt_strategy = options.ckpt_strategy;
  config.hpcm.ckpt_mtbf = options.ckpt_mtbf;
  config.hpcm.ckpt_aggregate_bps = options.ckpt_aggregate_mbps * 1.0e6;
  config.hpcm.sabotage_torn_commit = options.sabotage_torn_checkpoint;
  core::ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();

  // Staggered application launches, derived from the seed alone.
  support::Rng rng{options.seed};
  std::vector<std::unique_ptr<ScenarioApp>> apps;
  std::vector<std::string> app_names;
  for (int i = 1; i <= options.apps; ++i) {
    apps.push_back(std::make_unique<ScenarioApp>());
    ScenarioApp& app = *apps.back();
    app.iterations = options.iterations;
    app.checkpoint_every = options.checkpoint_every;
    app.heavy_state = options.precopy;
    app.strategy_checkpoints = !options.ckpt_strategy.empty();
    app.opaque_bytes =
        static_cast<std::uint64_t>(options.ckpt_state_mb * 1.0e6);
    const std::string name = "job" + std::to_string(i);
    app_names.push_back(name + ".0");
    const std::string host =
        "ws" + std::to_string((i - 1) % options.hosts + 1);
    const double start_at = rng.uniform(10.0, 30.0);
    runtime.engine().schedule_at(start_at, [&runtime, &app, name, host] {
      runtime.launch_app(host, app.make(), name,
                         hpcm::ApplicationSchema{name});
    });
  }

  // Malleable jobs launch staggered on host pairs; the planner takes it
  // from there.  Everything (start time, placement) derives from the seed.
  for (int i = 1; i <= options.malleable_jobs; ++i) {
    malleable::JobSpec spec;
    spec.name = "mjob" + std::to_string(i);
    spec.workload.blocks = 16;
    spec.workload.work_per_block = 0.25;
    spec.workload.bytes_per_block = 2.0e5;
    spec.workload.iterations = options.iterations * 3;
    spec.workload.sync_bytes = 4096.0;
    spec.min_ranks = 1;
    spec.max_ranks = 6;
    const int base = ((i - 1) * 2) % options.hosts;
    const std::vector<std::string> world = {
        "ws" + std::to_string(base + 1),
        "ws" + std::to_string((base + 1) % options.hosts + 1)};
    const double start_at = rng.uniform(10.0, 30.0);
    runtime.engine().schedule_at(start_at, [&runtime, spec, world] {
      (void)runtime.launch_malleable_job(spec, world);
    });
  }

  // A CPU hog overloads ws1 so the run includes policy-driven migrations,
  // not only injected faults.
  host::CpuHog hog{runtime.host("ws1"),
                   {.threads = 3, .duration = 120.0, .name = "hog"}};
  if (options.with_load) {
    runtime.engine().schedule_at(40.0, [&hog] { hog.start(); });
  }

  FaultInjector injector{runtime, options.plan, options.seed};
  injector.arm();

  InvariantChecker checker{runtime};
  for (const std::string& name : app_names) {
    checker.expect_app(name);
  }
  for (const std::string& host_name : runtime.host_names()) {
    // Hosts a permanent crash leaves dead are exempt from the liveness
    // expectation; everything else must converge after the faults heal.
    bool permanently_dead = false;
    for (const FaultSpec& spec : options.plan.specs()) {
      if (spec.kind == FaultKind::kHostCrash && spec.permanent() &&
          spec.host_a == host_name) {
        permanently_dead = true;
      }
      // A migration-window destination crash with no reboot delay leaves
      // the (named) destination down for good.
      if (spec.kind == FaultKind::kMigrationDestCrash && spec.delay <= 0.0 &&
          spec.host_a == host_name) {
        permanently_dead = true;
      }
      // A resize target crash with no reboot kills SOME host for good, and
      // which one depends on the planner — no host can be promised alive.
      if (spec.kind == FaultKind::kResizeTargetCrash && spec.delay <= 0.0) {
        permanently_dead = true;
      }
      // Crash-rate arrivals with no reboot leave any matching host down for
      // good (the wildcard spares the registry host, as the injector does).
      if (spec.kind == FaultKind::kHostCrashRate && spec.delay <= 0.0 &&
          (spec.host_a == host_name ||
           (spec.host_a == "*" && host_name != config.registry_host))) {
        permanently_dead = true;
      }
    }
    if (!permanently_dead) {
      checker.expect_alive(host_name);
    }
  }

  runtime.run_until(options.horizon);

  ScenarioReport report;
  report.invariants = checker.check();
  const std::string trace = runtime.tracer().to_jsonl();
  report.trace_hash = fnv1a(trace);
  if (options.keep_trace || !report.invariants.ok()) {
    // Black-box rule: a failing run keeps its evidence.
    report.trace_jsonl = trace;
    report.metrics_json = runtime.metrics().to_json();
  }
  report.events_executed = runtime.engine().events_executed();
  report.final_time = runtime.engine().now();
  report.migration_attempts = runtime.middleware().history().size();
  for (const hpcm::MigrationTimeline& timeline :
       runtime.middleware().history()) {
    if (timeline.succeeded) {
      ++report.migrations_succeeded;
    }
    if (timeline.outcome == "aborted") {
      ++report.migrations_aborted;
    } else if (timeline.outcome == "rolled-back") {
      ++report.migrations_rolled_back;
    }
    report.precopy_rounds +=
        static_cast<std::size_t>(timeline.precopy_rounds);
  }
  for (const malleable::ResizeOutcome& outcome :
       runtime.malleable().history()) {
    ++report.resizes_attempted;
    if (outcome.outcome == malleable::kCommitted) {
      ++report.resizes_committed;
    } else if (outcome.outcome == malleable::kAborted) {
      ++report.resizes_aborted;
    } else if (outcome.outcome == malleable::kPartialRollback) {
      ++report.resizes_rolled_back;
    }
  }
  report.ghost_ranks = runtime.malleable().ghost_ranks();
  report.ckpt_commits = runtime.middleware().shared_store().commits();
  report.ckpt_aborts = runtime.middleware().shared_store().aborts();
  report.ckpt_deferred = runtime.middleware().ckpt_deferred();
  report.ckpt_preempted = runtime.middleware().ckpt_preempted();
  report.torn_restores = runtime.middleware().torn_restores();
  const ckpt::Waste cluster_waste = runtime.middleware().waste().cluster();
  report.waste_overhead_s = cluster_waste.overhead_s;
  report.waste_lost_work_s = cluster_waste.lost_work_s;
  report.waste_restart_s = cluster_waste.restart_s;
  report.faults = injector.stats();
  report.messages_dropped = runtime.network().dropped_total();
  report.decisions = runtime.scheduler().decisions().size();
  report.decision_log_hash = fnv1a(runtime.scheduler().decision_log());
  return report;
}

}  // namespace ars::chaos
