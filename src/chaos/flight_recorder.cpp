#include "ars/chaos/flight_recorder.hpp"

#include <filesystem>
#include <fstream>

namespace ars::chaos {

namespace {

using obs::JsonArray;
using obs::JsonObject;
using obs::JsonValue;

JsonValue scenario_to_json(const ScenarioOptions& options) {
  JsonObject scenario;
  scenario.emplace("hosts", static_cast<double>(options.hosts));
  scenario.emplace("apps", static_cast<double>(options.apps));
  scenario.emplace("iterations", static_cast<double>(options.iterations));
  scenario.emplace("checkpoint_every",
                   static_cast<double>(options.checkpoint_every));
  scenario.emplace("horizon", options.horizon);
  scenario.emplace("seed", static_cast<double>(options.seed));
  scenario.emplace("sabotage_lease_expiry", options.sabotage_lease_expiry);
  scenario.emplace("sabotage_migration_rollback",
                   options.sabotage_migration_rollback);
  scenario.emplace("with_load", options.with_load);
  scenario.emplace("legacy_scan", options.legacy_scan);
  scenario.emplace("audit_decisions", options.audit_decisions);
  scenario.emplace("delta_heartbeats", options.delta_heartbeats);
  scenario.emplace("malleable_jobs",
                   static_cast<double>(options.malleable_jobs));
  scenario.emplace("sabotage_resize_rollback",
                   options.sabotage_resize_rollback);
  scenario.emplace("precopy", options.precopy);
  return JsonValue{std::move(scenario)};
}

support::Expected<ScenarioOptions> scenario_from_json(const JsonValue& value) {
  if (!value.is_object()) {
    return support::make_error("bundle.scenario", "not an object");
  }
  ScenarioOptions options;
  const auto number = [&value](const char* key, double fallback) {
    const JsonValue* member = value.find(key);
    return member != nullptr && member->is_number() ? member->as_number()
                                                    : fallback;
  };
  const auto boolean = [&value](const char* key, bool fallback) {
    const JsonValue* member = value.find(key);
    return member != nullptr && member->is_bool() ? member->as_bool()
                                                  : fallback;
  };
  options.hosts = static_cast<int>(number("hosts", options.hosts));
  options.apps = static_cast<int>(number("apps", options.apps));
  options.iterations =
      static_cast<int>(number("iterations", options.iterations));
  options.checkpoint_every = static_cast<int>(
      number("checkpoint_every", options.checkpoint_every));
  options.horizon = number("horizon", options.horizon);
  options.seed = static_cast<std::uint64_t>(
      number("seed", static_cast<double>(options.seed)));
  options.sabotage_lease_expiry =
      boolean("sabotage_lease_expiry", options.sabotage_lease_expiry);
  options.sabotage_migration_rollback = boolean(
      "sabotage_migration_rollback", options.sabotage_migration_rollback);
  options.with_load = boolean("with_load", options.with_load);
  options.legacy_scan = boolean("legacy_scan", options.legacy_scan);
  options.audit_decisions =
      boolean("audit_decisions", options.audit_decisions);
  options.delta_heartbeats =
      boolean("delta_heartbeats", options.delta_heartbeats);
  options.malleable_jobs = static_cast<int>(
      number("malleable_jobs", options.malleable_jobs));
  options.sabotage_resize_rollback = boolean(
      "sabotage_resize_rollback", options.sabotage_resize_rollback);
  // Bundles recorded before pre-copy existed have no such key; the default
  // (false) preserves their byte-identical replays.
  options.precopy = boolean("precopy", options.precopy);
  return options;
}

}  // namespace

JsonValue make_bundle(const ScenarioOptions& options,
                      const ScenarioReport& report,
                      const FlightTrigger& trigger) {
  JsonObject root;
  root.emplace("version", 1.0);
  JsonObject trigger_object;
  trigger_object.emplace("kind", trigger.kind);
  trigger_object.emplace("detail", trigger.detail);
  root.emplace("trigger", std::move(trigger_object));
  root.emplace("scenario", scenario_to_json(options));
  // The fault plan round-trips through its own JSON form; embed it parsed
  // so the bundle is one well-formed document, not nested text.
  if (auto plan = obs::json_parse(options.plan.to_json());
      plan.has_value()) {
    root.emplace("plan", *std::move(plan));
  }
  JsonArray violations;
  for (const Violation& violation : report.invariants.violations) {
    JsonObject entry;
    entry.emplace("invariant", violation.invariant);
    entry.emplace("subject", violation.subject);
    entry.emplace("detail", violation.detail);
    violations.push_back(JsonValue{std::move(entry)});
  }
  root.emplace("violations", std::move(violations));
  root.emplace("violations_summary", report.invariants.summary());
  // Hashes as decimal strings: they exceed a double's integer range.
  root.emplace("trace_hash", std::to_string(report.trace_hash));
  root.emplace("decision_log_hash", std::to_string(report.decision_log_hash));
  JsonObject stats;
  stats.emplace("events_executed",
                static_cast<double>(report.events_executed));
  stats.emplace("final_time", report.final_time);
  stats.emplace("migration_attempts",
                static_cast<double>(report.migration_attempts));
  stats.emplace("migrations_succeeded",
                static_cast<double>(report.migrations_succeeded));
  stats.emplace("migrations_aborted",
                static_cast<double>(report.migrations_aborted));
  stats.emplace("migrations_rolled_back",
                static_cast<double>(report.migrations_rolled_back));
  stats.emplace("messages_dropped",
                static_cast<double>(report.messages_dropped));
  stats.emplace("decisions", static_cast<double>(report.decisions));
  root.emplace("stats", std::move(stats));
  if (!report.metrics_json.empty()) {
    if (auto metrics = obs::json_parse(report.metrics_json);
        metrics.has_value()) {
      root.emplace("metrics", *std::move(metrics));
    }
  }
  root.emplace("trace_jsonl", report.trace_jsonl);
  return JsonValue{std::move(root)};
}

support::Status write_bundle(const std::string& path,
                             const JsonValue& bundle) {
  const std::filesystem::path target{path};
  std::error_code ec;
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      return support::make_error("bundle.write", path + ": " + ec.message());
    }
  }
  std::ofstream out(path);
  if (!out) {
    return support::make_error("bundle.write", "cannot open " + path);
  }
  out << bundle.dump() << "\n";
  if (!out) {
    return support::make_error("bundle.write", "short write to " + path);
  }
  return support::Status::ok();
}

support::Expected<BundleReplay> replay_bundle(std::string_view bundle_json) {
  auto doc = obs::json_parse(bundle_json);
  if (!doc.has_value()) {
    return support::make_error("bundle.parse", doc.error().to_string());
  }
  const JsonValue* scenario = doc->find("scenario");
  if (scenario == nullptr) {
    return support::make_error("bundle.parse", "missing scenario");
  }
  auto options = scenario_from_json(*scenario);
  if (!options.has_value()) {
    return options.error();
  }
  if (const JsonValue* plan = doc->find("plan")) {
    auto parsed = FaultPlan::from_json(plan->dump());
    if (!parsed.has_value()) {
      return support::make_error("bundle.parse",
                                 "plan: " + parsed.error().to_string());
    }
    options->plan = *std::move(parsed);
  }
  BundleReplay replay;
  if (const JsonValue* trigger = doc->find("trigger")) {
    if (const JsonValue* kind = trigger->find("kind");
        kind != nullptr && kind->is_string()) {
      replay.trigger.kind = kind->as_string();
    }
    if (const JsonValue* detail = trigger->find("detail");
        detail != nullptr && detail->is_string()) {
      replay.trigger.detail = detail->as_string();
    }
  }
  if (const JsonValue* hash = doc->find("trace_hash");
      hash != nullptr && hash->is_string()) {
    replay.recorded_trace_hash = std::stoull(hash->as_string());
  }
  if (const JsonValue* summary = doc->find("violations_summary");
      summary != nullptr && summary->is_string()) {
    replay.recorded_violations = summary->as_string();
  }
  // The rerun must keep its trace so the comparison is on actual bytes,
  // not only the hash.
  options->keep_trace = true;
  replay.report = run_scenario(*options);
  replay.trace_identical =
      replay.report.trace_hash == replay.recorded_trace_hash;
  replay.violations_match =
      replay.report.invariants.summary() == replay.recorded_violations;
  return replay;
}

}  // namespace ars::chaos
