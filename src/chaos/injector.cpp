#include "ars/chaos/injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"

namespace ars::chaos {

namespace {

bool side_matches(const std::string& side, const std::string& host) {
  return side == "*" || side == host;
}

}  // namespace

FaultInjector::FaultInjector(core::ReschedulerRuntime& runtime,
                             FaultPlan plan, std::uint64_t seed)
    : runtime_(&runtime), plan_(std::move(plan)), rng_(seed) {}

FaultInjector::~FaultInjector() {
  for (auto& event : events_) {
    event.cancel();
  }
  if (phase_listener_installed_) {
    runtime_->middleware().set_phase_listener(nullptr);
  }
  if (resize_listener_installed_) {
    runtime_->malleable().set_phase_listener(nullptr);
  }
  if (armed_ && runtime_->network().fault_policy() == this) {
    runtime_->network().set_fault_policy(nullptr);
  }
}

void FaultInjector::arm() {
  if (armed_) {
    return;
  }
  armed_ = true;
  bool wants_migration_faults = false;
  for (const FaultSpec& spec : plan_.specs()) {
    // Host-targeted faults must name real, non-wildcard hosts.
    const bool host_targeted = spec.kind == FaultKind::kHostCrash ||
                               spec.kind == FaultKind::kCpuSlowdown ||
                               spec.kind == FaultKind::kMonitorStall;
    if (host_targeted &&
        (spec.host_a == "*" ||
         runtime_->network().find_host(spec.host_a) == nullptr)) {
      throw std::invalid_argument("fault plan \"" + plan_.name() +
                                  "\" targets unknown host: " + spec.host_a);
    }
    const bool migration_window =
        spec.kind == FaultKind::kMigrationDestCrash ||
        spec.kind == FaultKind::kMigrationLinkCut;
    if (migration_window) {
      // Wildcard destinations are allowed (the trigger is the transaction,
      // not a wall-clock event), but a named one must exist.
      if (spec.host_a != "*" &&
          runtime_->network().find_host(spec.host_a) == nullptr) {
        throw std::invalid_argument("fault plan \"" + plan_.name() +
                                    "\" targets unknown host: " +
                                    spec.host_a);
      }
      wants_migration_faults = true;
    }
  }
  bool wants_resize_faults = false;
  for (const FaultSpec& spec : plan_.specs()) {
    if (spec.kind == FaultKind::kResizeTargetCrash) {
      wants_resize_faults = true;
    }
  }
  runtime_->network().set_fault_policy(this);
  if (wants_resize_faults) {
    runtime_->malleable().set_phase_listener(
        [this](const malleable::ResizePhaseEvent& event) {
          on_resize_phase(event);
        });
    resize_listener_installed_ = true;
  }
  if (wants_migration_faults) {
    runtime_->middleware().set_phase_listener(
        [this](const hpcm::PhaseEvent& event) { on_migration_phase(event); });
    phase_listener_installed_ = true;
  }
  sim::Engine& engine = runtime_->engine();
  for (std::size_t i = 0; i < plan_.specs().size(); ++i) {
    const FaultSpec& spec = plan_.specs()[i];
    const bool migration_window =
        spec.kind == FaultKind::kMigrationDestCrash ||
        spec.kind == FaultKind::kMigrationLinkCut;
    if (migration_window || spec.kind == FaultKind::kResizeTargetCrash) {
      continue;  // triggered by phase entry, not by wall-clock events
    }
    if (spec.kind == FaultKind::kHostCrashRate) {
      if (spec.host_a != "*" &&
          runtime_->network().find_host(spec.host_a) == nullptr) {
        throw std::invalid_argument("fault plan \"" + plan_.name() +
                                    "\" targets unknown host: " + spec.host_a);
      }
      schedule_crash_arrivals(spec);
      continue;  // its schedule IS the arrivals, no activate/deactivate
    }
    events_.push_back(
        engine.schedule_at(spec.at, [this, i] { activate(i); }));
    if (!spec.permanent()) {
      events_.push_back(
          engine.schedule_at(spec.until, [this, i] { deactivate(i); }));
    }
  }
}

bool FaultInjector::spec_active(const FaultSpec& spec) const {
  const double now = runtime_->engine().now();
  return now >= spec.at && (spec.permanent() || now < spec.until);
}

bool FaultInjector::direction_matches(const FaultSpec& spec,
                                      const std::string& src,
                                      const std::string& dst) {
  return side_matches(spec.host_a, src) && side_matches(spec.host_b, dst);
}

bool FaultInjector::link_matches(const FaultSpec& spec, const std::string& a,
                                 const std::string& b) {
  if (a == b) {
    return false;  // loopback is never cut
  }
  return (side_matches(spec.host_a, a) && side_matches(spec.host_b, b)) ||
         (side_matches(spec.host_a, b) && side_matches(spec.host_b, a));
}

net::FaultPolicy::PostVerdict FaultInjector::on_post(
    const net::Message& message) {
  PostVerdict verdict;
  // Evaluate every active spec (no early exit): the rng is consumed in a
  // stable order regardless of which fault fires first.
  for (const FaultSpec& spec : plan_.specs()) {
    if (!spec_active(spec)) {
      continue;
    }
    switch (spec.kind) {
      case FaultKind::kPartition:
        if (link_matches(spec, message.src_host, message.dst_host)) {
          verdict.drop = true;
        }
        break;
      case FaultKind::kMessageLoss:
        if (direction_matches(spec, message.src_host, message.dst_host) &&
            rng_.uniform() < spec.probability) {
          verdict.drop = true;
        }
        break;
      case FaultKind::kMessageDuplicate:
        if (direction_matches(spec, message.src_host, message.dst_host) &&
            rng_.uniform() < spec.probability) {
          verdict.duplicates += 1;
        }
        break;
      case FaultKind::kMessageDelay:
        if (direction_matches(spec, message.src_host, message.dst_host) &&
            rng_.uniform() < spec.probability) {
          verdict.extra_delay += spec.delay;
        }
        break;
      default:
        break;  // host faults do not act on individual datagrams
    }
  }
  // Dynamic migration-window cuts behave like a two-host partition.
  for (const LinkCut& cut : link_cuts_) {
    if ((cut.a == message.src_host && cut.b == message.dst_host) ||
        (cut.a == message.dst_host && cut.b == message.src_host)) {
      verdict.drop = true;
    }
  }
  if (verdict.drop) {
    ++stats_.messages_dropped;
  } else {
    stats_.messages_duplicated +=
        static_cast<std::uint64_t>(verdict.duplicates);
    if (verdict.extra_delay > 0.0) {
      ++stats_.messages_delayed;
    }
  }
  return verdict;
}

double FaultInjector::bandwidth_factor(const std::string& src,
                                       const std::string& dst) {
  double factor = 1.0;
  for (const FaultSpec& spec : plan_.specs()) {
    if (!spec_active(spec)) {
      continue;
    }
    if (spec.kind == FaultKind::kPartition && link_matches(spec, src, dst)) {
      return 0.0;
    }
    if (spec.kind == FaultKind::kLinkDegrade && link_matches(spec, src, dst)) {
      factor *= std::clamp(spec.factor, 0.0, 1.0);
    }
  }
  for (const LinkCut& cut : link_cuts_) {
    if ((cut.a == src && cut.b == dst) || (cut.a == dst && cut.b == src)) {
      return 0.0;
    }
  }
  return factor;
}

void FaultInjector::trace_fault(const FaultSpec& spec, const char* phase) {
  obs::Tracer& tracer = runtime_->tracer();
  if (!obs::active(&tracer)) {
    return;
  }
  tracer.instant("chaos.fault", "chaos", "chaos",
                 {{"kind", std::string(to_string(spec.kind))},
                  {"phase", phase},
                  {"host_a", spec.host_a},
                  {"host_b", spec.host_b}});
}

void FaultInjector::activate(std::size_t index) {
  const FaultSpec& spec = plan_.specs()[index];
  trace_fault(spec, "inject");
  ARS_LOG_WARN("chaos", "inject " << to_string(spec.kind) << " ("
                                  << spec.host_a << ", " << spec.host_b
                                  << ")");
  switch (spec.kind) {
    case FaultKind::kHostCrash:
      if (down_hosts_.insert(spec.host_a).second) {
        runtime_->fail_host(spec.host_a);
        ++stats_.host_crashes;
      }
      break;
    case FaultKind::kCpuSlowdown: {
      host::CpuModel& cpu = runtime_->host(spec.host_a).cpu();
      saved_cpu_speed_.emplace(spec.host_a, cpu.speed());
      cpu.set_speed(cpu.speed() * std::max(spec.factor, 1e-3));
      ++stats_.cpu_slowdowns;
      break;
    }
    case FaultKind::kMonitorStall:
      runtime_->monitor_on(spec.host_a).stop();
      ++stats_.monitor_stalls;
      break;
    case FaultKind::kRegistryCrash:
      runtime_->crash_registry();
      ++stats_.registry_crashes;
      break;
    case FaultKind::kPartition:
      ++stats_.partitions;
      runtime_->network().on_fault_change();
      break;
    case FaultKind::kLinkDegrade:
      ++stats_.link_degrades;
      runtime_->network().on_fault_change();
      break;
    case FaultKind::kResizeStall:
      runtime_->malleable().set_phase_stall(spec.phase, spec.delay);
      ++stats_.resize_stalls;
      break;
    case FaultKind::kMigrationPrecopyStall:
      runtime_->middleware().set_phase_stall("precopy", spec.delay);
      ++stats_.migration_precopy_stalls;
      break;
    default:
      break;  // message faults act lazily, per post()
  }
}

void FaultInjector::deactivate(std::size_t index) {
  const FaultSpec& spec = plan_.specs()[index];
  trace_fault(spec, "heal");
  ARS_LOG_INFO("chaos", "heal " << to_string(spec.kind) << " ("
                                << spec.host_a << ", " << spec.host_b
                                << ")");
  switch (spec.kind) {
    case FaultKind::kHostCrash:
      if (down_hosts_.erase(spec.host_a) > 0) {
        runtime_->restart_host(spec.host_a);
        ++stats_.host_restarts;
      }
      break;
    case FaultKind::kCpuSlowdown: {
      const auto it = saved_cpu_speed_.find(spec.host_a);
      if (it != saved_cpu_speed_.end()) {
        runtime_->host(spec.host_a).cpu().set_speed(it->second);
        saved_cpu_speed_.erase(it);
      }
      break;
    }
    case FaultKind::kMonitorStall:
      runtime_->monitor_on(spec.host_a).start();
      break;
    case FaultKind::kRegistryCrash:
      runtime_->restart_registry();
      break;
    case FaultKind::kPartition:
    case FaultKind::kLinkDegrade:
      // Stalled/degraded transfers pick their full rates back up.
      runtime_->network().on_fault_change();
      break;
    case FaultKind::kResizeStall:
      runtime_->malleable().set_phase_stall(spec.phase, 0.0);
      break;
    case FaultKind::kMigrationPrecopyStall:
      runtime_->middleware().set_phase_stall("precopy", 0.0);
      break;
    default:
      break;
  }
}

void FaultInjector::on_migration_phase(const hpcm::PhaseEvent& event) {
  // Evaluate every armed migration-window spec; randomness is consumed in
  // spec order so (plan, seed) stays fully deterministic.
  for (const FaultSpec& spec : plan_.specs()) {
    const bool migration_window =
        spec.kind == FaultKind::kMigrationDestCrash ||
        spec.kind == FaultKind::kMigrationLinkCut;
    if (!migration_window || !spec_active(spec)) {
      continue;
    }
    if (!spec.phase.empty() && spec.phase != event.phase) {
      continue;
    }
    if (!side_matches(spec.host_a, event.destination)) {
      continue;
    }
    if (rng_.uniform() >= spec.probability) {
      continue;
    }
    trace_fault(spec, "inject");
    // React via a zero-delay event: phase listeners must not reenter the
    // migration engine inline.
    sim::Engine& engine = runtime_->engine();
    if (spec.kind == FaultKind::kMigrationDestCrash) {
      events_.push_back(engine.schedule_after(
          0.0, [this, dest = event.destination, reboot = spec.delay] {
            crash_migration_destination(dest, reboot);
          }));
    } else {
      events_.push_back(engine.schedule_after(
          0.0, [this, a = event.source, b = event.destination,
                heal = spec.delay > 0.0 ? spec.delay
                                        : std::max(spec.until -
                                                       runtime_->engine()
                                                           .now(),
                                                   1.0)] {
            cut_migration_link(a, b, heal);
          }));
    }
  }
}

void FaultInjector::on_resize_phase(const malleable::ResizePhaseEvent& event) {
  if (event.verb != malleable::ResizeVerb::kExpand || event.hosts.empty()) {
    return;  // only expands have spawn targets to kill
  }
  // Spec order keeps rng consumption — and therefore the whole run —
  // deterministic in (plan, seed).
  for (const FaultSpec& spec : plan_.specs()) {
    if (spec.kind != FaultKind::kResizeTargetCrash || !spec_active(spec)) {
      continue;
    }
    if (!spec.phase.empty() && spec.phase != event.phase) {
      continue;
    }
    if (rng_.uniform() >= spec.probability) {
      continue;
    }
    const std::size_t pick = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(event.hosts.size()) - 1));
    trace_fault(spec, "inject");
    // React via a zero-delay event: phase listeners must not reenter the
    // malleable engine inline.
    events_.push_back(runtime_->engine().schedule_after(
        0.0, [this, host = event.hosts[pick], reboot = spec.delay] {
          crash_resize_target(host, reboot);
        }));
  }
}

void FaultInjector::schedule_crash_arrivals(const FaultSpec& spec) {
  // Expand the target set.  A wildcard spares the registry host: the
  // control plane's own fault tolerance is the control-loss plan's job, and
  // a registry lost mid-window cannot relaunch the other crashes' victims
  // (soft state wiped), which would fail the no-lost-process invariant for
  // reasons the checkpoint campaign is not studying.
  std::vector<std::string> targets;
  if (spec.host_a == "*") {
    for (const std::string& name : runtime_->host_names()) {
      if (name != runtime_->config().registry_host) {
        targets.push_back(name);
      }
    }
  } else {
    targets.push_back(spec.host_a);
  }
  // Pre-draw every arrival now, per host in cluster order: rng consumption
  // is independent of event interleaving, so (plan, seed) determines the
  // whole crash schedule.
  sim::Engine& engine = runtime_->engine();
  for (const std::string& host : targets) {
    double t = spec.at;
    while (true) {
      t += -spec.mtbf * std::log(1.0 - rng_.uniform());
      if (t >= spec.until) {
        break;
      }
      events_.push_back(engine.schedule_at(
          t, [this, host, reboot = spec.delay] { rate_crash(host, reboot); }));
    }
  }
}

void FaultInjector::rate_crash(const std::string& host, double reboot_after) {
  if (!down_hosts_.insert(host).second) {
    return;  // already down (overlapping arrival or another fault)
  }
  ARS_LOG_WARN("chaos", "crash-rate arrival fells " << host);
  ++stats_.rate_crashes;
  ++stats_.host_crashes;
  runtime_->fail_host(host);
  if (reboot_after > 0.0) {
    events_.push_back(
        runtime_->engine().schedule_after(reboot_after, [this, host] {
          if (down_hosts_.erase(host) > 0) {
            runtime_->restart_host(host);
            ++stats_.host_restarts;
          }
        }));
  }
}

void FaultInjector::crash_resize_target(const std::string& host,
                                        double reboot_after) {
  if (!down_hosts_.insert(host).second) {
    return;  // already down (another fault beat us to it)
  }
  ARS_LOG_WARN("chaos", "resize-window crash of spawn target " << host);
  ++stats_.resize_target_crashes;
  runtime_->fail_host(host);
  if (reboot_after > 0.0) {
    events_.push_back(
        runtime_->engine().schedule_after(reboot_after, [this, host] {
          if (down_hosts_.erase(host) > 0) {
            runtime_->restart_host(host);
            ++stats_.host_restarts;
          }
        }));
  }
}

void FaultInjector::crash_migration_destination(const std::string& dest,
                                                double reboot_after) {
  if (!down_hosts_.insert(dest).second) {
    return;  // already down (another fault beat us to it)
  }
  ARS_LOG_WARN("chaos", "migration-window crash of destination " << dest);
  ++stats_.migration_dest_crashes;
  runtime_->fail_host(dest);
  if (reboot_after > 0.0) {
    events_.push_back(runtime_->engine().schedule_after(
        reboot_after, [this, dest] {
          if (down_hosts_.erase(dest) > 0) {
            runtime_->restart_host(dest);
            ++stats_.host_restarts;
          }
        }));
  }
}

void FaultInjector::cut_migration_link(const std::string& a,
                                       const std::string& b,
                                       double heal_after) {
  if (a == b) {
    return;  // loopback is never cut
  }
  ARS_LOG_WARN("chaos",
               "migration-window link cut " << a << " <-> " << b << " for "
                                            << heal_after << "s");
  ++stats_.migration_link_cuts;
  link_cuts_.push_back(LinkCut{a, b});
  runtime_->network().on_fault_change();
  events_.push_back(
      runtime_->engine().schedule_after(heal_after, [this, a, b] {
        const auto it = std::find_if(
            link_cuts_.begin(), link_cuts_.end(), [&](const LinkCut& cut) {
              return cut.a == a && cut.b == b;
            });
        if (it != link_cuts_.end()) {
          link_cuts_.erase(it);
          runtime_->network().on_fault_change();
        }
      }));
}

}  // namespace ars::chaos
