#include "ars/chaos/faultplan.hpp"

#include <algorithm>
#include <utility>

#include "ars/obs/json.hpp"

namespace ars::chaos {

using support::Expected;
using support::make_error;

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kMessageLoss:
      return "message_loss";
    case FaultKind::kMessageDuplicate:
      return "message_duplicate";
    case FaultKind::kMessageDelay:
      return "message_delay";
    case FaultKind::kLinkDegrade:
      return "link_degrade";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHostCrash:
      return "host_crash";
    case FaultKind::kHostCrashRate:
      return "host_crash_rate";
    case FaultKind::kCpuSlowdown:
      return "cpu_slowdown";
    case FaultKind::kMonitorStall:
      return "monitor_stall";
    case FaultKind::kRegistryCrash:
      return "registry_crash";
    case FaultKind::kMigrationDestCrash:
      return "migration_dest_crash";
    case FaultKind::kMigrationLinkCut:
      return "migration_link_cut";
    case FaultKind::kMigrationPrecopyStall:
      return "migration_precopy_stall";
    case FaultKind::kResizeStall:
      return "resize_stall";
    case FaultKind::kResizeTargetCrash:
      return "resize_target_crash";
  }
  return "?";
}

Expected<FaultKind> fault_kind_from_string(std::string_view text) {
  for (const FaultKind kind :
       {FaultKind::kMessageLoss, FaultKind::kMessageDuplicate,
        FaultKind::kMessageDelay, FaultKind::kLinkDegrade,
        FaultKind::kPartition, FaultKind::kHostCrash,
        FaultKind::kHostCrashRate, FaultKind::kCpuSlowdown,
        FaultKind::kMonitorStall, FaultKind::kRegistryCrash,
        FaultKind::kMigrationDestCrash, FaultKind::kMigrationLinkCut,
        FaultKind::kMigrationPrecopyStall, FaultKind::kResizeStall,
        FaultKind::kResizeTargetCrash}) {
    if (text == to_string(kind)) {
      return kind;
    }
  }
  return make_error("chaos.unknown_kind",
                    "unknown fault kind: " + std::string(text));
}

FaultPlan& FaultPlan::add(FaultSpec spec) {
  specs_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::message_loss(double at, double until, double probability,
                                   std::string src, std::string dst) {
  FaultSpec spec;
  spec.kind = FaultKind::kMessageLoss;
  spec.at = at;
  spec.until = until;
  spec.probability = probability;
  spec.host_a = std::move(src);
  spec.host_b = std::move(dst);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::message_duplicate(double at, double until,
                                        double probability, std::string src,
                                        std::string dst) {
  FaultSpec spec;
  spec.kind = FaultKind::kMessageDuplicate;
  spec.at = at;
  spec.until = until;
  spec.probability = probability;
  spec.host_a = std::move(src);
  spec.host_b = std::move(dst);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::message_delay(double at, double until,
                                    double probability, double delay,
                                    std::string src, std::string dst) {
  FaultSpec spec;
  spec.kind = FaultKind::kMessageDelay;
  spec.at = at;
  spec.until = until;
  spec.probability = probability;
  spec.delay = delay;
  spec.host_a = std::move(src);
  spec.host_b = std::move(dst);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::link_degrade(double at, double until, double factor,
                                   std::string a, std::string b) {
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDegrade;
  spec.at = at;
  spec.until = until;
  spec.factor = factor;
  spec.host_a = std::move(a);
  spec.host_b = std::move(b);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::partition(double at, double heal_at, std::string side_a,
                                std::string side_b) {
  FaultSpec spec;
  spec.kind = FaultKind::kPartition;
  spec.at = at;
  spec.until = heal_at;
  spec.host_a = std::move(side_a);
  spec.host_b = std::move(side_b);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::host_crash(double at, double restart_at,
                                 std::string host) {
  FaultSpec spec;
  spec.kind = FaultKind::kHostCrash;
  spec.at = at;
  spec.until = restart_at;
  spec.host_a = std::move(host);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::host_crash_rate(double at, double until, double mtbf,
                                      std::string host, double reboot_after) {
  FaultSpec spec;
  spec.kind = FaultKind::kHostCrashRate;
  spec.at = at;
  spec.until = until;
  spec.mtbf = mtbf;
  spec.delay = reboot_after;
  spec.host_a = std::move(host);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::cpu_slowdown(double at, double until, double factor,
                                   std::string host) {
  FaultSpec spec;
  spec.kind = FaultKind::kCpuSlowdown;
  spec.at = at;
  spec.until = until;
  spec.factor = factor;
  spec.host_a = std::move(host);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::monitor_stall(double at, double until,
                                    std::string host) {
  FaultSpec spec;
  spec.kind = FaultKind::kMonitorStall;
  spec.at = at;
  spec.until = until;
  spec.host_a = std::move(host);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::registry_crash(double at, double restart_at) {
  FaultSpec spec;
  spec.kind = FaultKind::kRegistryCrash;
  spec.at = at;
  spec.until = restart_at;
  return add(std::move(spec));
}

FaultPlan& FaultPlan::migration_dest_crash(double at, double until,
                                           std::string phase,
                                           double probability,
                                           double reboot_after,
                                           std::string dest) {
  FaultSpec spec;
  spec.kind = FaultKind::kMigrationDestCrash;
  spec.at = at;
  spec.until = until;
  spec.phase = std::move(phase);
  spec.probability = probability;
  spec.delay = reboot_after;
  spec.host_a = std::move(dest);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::migration_link_cut(double at, double until,
                                         std::string phase,
                                         double probability,
                                         double heal_after, std::string dest) {
  FaultSpec spec;
  spec.kind = FaultKind::kMigrationLinkCut;
  spec.at = at;
  spec.until = until;
  spec.phase = std::move(phase);
  spec.probability = probability;
  spec.delay = heal_after;
  spec.host_a = std::move(dest);
  return add(std::move(spec));
}

FaultPlan& FaultPlan::migration_precopy_stall(double at, double until,
                                              double stall_seconds) {
  FaultSpec spec;
  spec.kind = FaultKind::kMigrationPrecopyStall;
  spec.at = at;
  spec.until = until;
  spec.phase = "precopy";
  spec.delay = stall_seconds;
  return add(std::move(spec));
}

FaultPlan& FaultPlan::resize_stall(double at, double until, std::string phase,
                                   double stall_seconds) {
  FaultSpec spec;
  spec.kind = FaultKind::kResizeStall;
  spec.at = at;
  spec.until = until;
  spec.phase = std::move(phase);
  spec.delay = stall_seconds;
  return add(std::move(spec));
}

FaultPlan& FaultPlan::resize_target_crash(double at, double until,
                                          std::string phase,
                                          double probability,
                                          double reboot_after) {
  FaultSpec spec;
  spec.kind = FaultKind::kResizeTargetCrash;
  spec.at = at;
  spec.until = until;
  spec.phase = std::move(phase);
  spec.probability = probability;
  spec.delay = reboot_after;
  return add(std::move(spec));
}

double FaultPlan::last_disruption_end() const noexcept {
  double last = 0.0;
  for (const FaultSpec& spec : specs_) {
    double end = spec.permanent() ? spec.at : spec.until;
    if (spec.kind == FaultKind::kHostCrashRate) {
      // The final arrival can land just inside the window and still owe its
      // reboot: the cluster is not quiet until that completes too.
      end += spec.delay;
    }
    last = std::max(last, end);
  }
  return last;
}

std::string FaultPlan::to_json() const {
  obs::JsonArray faults;
  for (const FaultSpec& spec : specs_) {
    obs::JsonObject fault;
    fault.emplace("kind", std::string(to_string(spec.kind)));
    fault.emplace("at", spec.at);
    fault.emplace("until", spec.until);
    fault.emplace("host_a", spec.host_a);
    fault.emplace("host_b", spec.host_b);
    fault.emplace("probability", spec.probability);
    fault.emplace("factor", spec.factor);
    fault.emplace("delay", spec.delay);
    if (!spec.phase.empty()) {
      // Only migration-window faults carry a phase; omitting the key keeps
      // pre-existing plan files byte-identical to their builtins.
      fault.emplace("phase", spec.phase);
    }
    if (spec.mtbf > 0.0) {
      // Only host_crash_rate carries an mtbf (same byte-compat rule).
      fault.emplace("mtbf", spec.mtbf);
    }
    faults.emplace_back(std::move(fault));
  }
  obs::JsonObject root;
  root.emplace("name", name_);
  root.emplace("faults", std::move(faults));
  return obs::JsonValue{std::move(root)}.dump();
}

namespace {

/// Read a numeric member; `required` distinguishes "must exist" from
/// "defaulted".  Non-numbers are always errors.
Expected<double> number_member(const obs::JsonValue& fault,
                               const std::string& key, bool required,
                               double fallback) {
  const obs::JsonValue* member = fault.find(key);
  if (member == nullptr) {
    if (required) {
      return make_error("chaos.missing_key", "fault missing \"" + key + "\"");
    }
    return fallback;
  }
  if (!member->is_number()) {
    return make_error("chaos.bad_type", "\"" + key + "\" must be a number");
  }
  return member->as_number();
}

Expected<std::string> string_member(const obs::JsonValue& fault,
                                    const std::string& key,
                                    std::string fallback) {
  const obs::JsonValue* member = fault.find(key);
  if (member == nullptr) {
    return fallback;
  }
  if (!member->is_string()) {
    return make_error("chaos.bad_type", "\"" + key + "\" must be a string");
  }
  return member->as_string();
}

}  // namespace

Expected<FaultPlan> FaultPlan::from_json(std::string_view text) {
  auto document = obs::json_parse(text);
  if (!document.has_value()) {
    return document.error();
  }
  if (!document->is_object()) {
    return make_error("chaos.bad_plan", "plan must be a JSON object");
  }
  for (const auto& [key, value] : document->as_object()) {
    if (key != "name" && key != "faults") {
      return make_error("chaos.unknown_key", "unknown plan key \"" + key +
                                                 "\"");
    }
  }
  FaultPlan plan;
  if (const obs::JsonValue* name = document->find("name");
      name != nullptr) {
    if (!name->is_string()) {
      return make_error("chaos.bad_type", "\"name\" must be a string");
    }
    plan.name_ = name->as_string();
  }
  const obs::JsonValue* faults = document->find("faults");
  if (faults == nullptr || !faults->is_array()) {
    return make_error("chaos.bad_plan", "plan needs a \"faults\" array");
  }
  for (const obs::JsonValue& fault : faults->as_array()) {
    if (!fault.is_object()) {
      return make_error("chaos.bad_plan", "each fault must be an object");
    }
    static constexpr const char* kKnownKeys[] = {
        "kind", "at", "until", "host_a", "host_b", "probability", "factor",
        "delay", "phase", "mtbf"};
    for (const auto& [key, value] : fault.as_object()) {
      if (std::find(std::begin(kKnownKeys), std::end(kKnownKeys), key) ==
          std::end(kKnownKeys)) {
        return make_error("chaos.unknown_key",
                          "unknown fault key \"" + key + "\"");
      }
    }
    const obs::JsonValue* kind = fault.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return make_error("chaos.missing_key",
                        "fault needs a string \"kind\"");
    }
    auto parsed_kind = fault_kind_from_string(kind->as_string());
    if (!parsed_kind.has_value()) {
      return parsed_kind.error();
    }
    FaultSpec spec;
    spec.kind = *parsed_kind;
    auto at = number_member(fault, "at", /*required=*/true, 0.0);
    if (!at.has_value()) {
      return at.error();
    }
    spec.at = *at;
    auto until = number_member(fault, "until", false, -1.0);
    auto probability = number_member(fault, "probability", false, 1.0);
    auto factor = number_member(fault, "factor", false, 1.0);
    auto delay = number_member(fault, "delay", false, 0.0);
    auto mtbf = number_member(fault, "mtbf", false, 0.0);
    auto host_a = string_member(fault, "host_a", "*");
    auto host_b = string_member(fault, "host_b", "*");
    auto phase = string_member(fault, "phase", "");
    for (const support::Error* error :
         {until.has_value() ? nullptr : &until.error(),
          probability.has_value() ? nullptr : &probability.error(),
          factor.has_value() ? nullptr : &factor.error(),
          delay.has_value() ? nullptr : &delay.error(),
          mtbf.has_value() ? nullptr : &mtbf.error(),
          host_a.has_value() ? nullptr : &host_a.error(),
          host_b.has_value() ? nullptr : &host_b.error(),
          phase.has_value() ? nullptr : &phase.error()}) {
      if (error != nullptr) {
        return *error;
      }
    }
    spec.until = *until;
    spec.probability = *probability;
    spec.factor = *factor;
    spec.delay = *delay;
    spec.mtbf = *mtbf;
    spec.host_a = *host_a;
    spec.host_b = *host_b;
    spec.phase = *phase;
    if (spec.probability < 0.0 || spec.probability > 1.0) {
      return make_error("chaos.bad_value",
                        "\"probability\" must be in [0, 1]");
    }
    if (spec.factor < 0.0) {
      return make_error("chaos.bad_value", "\"factor\" must be >= 0");
    }
    if (spec.kind == FaultKind::kHostCrashRate) {
      if (spec.mtbf <= 0.0) {
        return make_error("chaos.bad_value",
                          "host_crash_rate needs \"mtbf\" > 0");
      }
      if (spec.permanent()) {
        return make_error("chaos.bad_value",
                          "host_crash_rate needs a finite \"until\"");
      }
    }
    const bool resize_fault = spec.kind == FaultKind::kResizeStall ||
                              spec.kind == FaultKind::kResizeTargetCrash;
    if (resize_fault) {
      if (spec.phase != "spawn" && spec.phase != "redistribute") {
        return make_error(
            "chaos.bad_value",
            "resize fault \"phase\" must be spawn or redistribute");
      }
    } else if (spec.kind == FaultKind::kMigrationPrecopyStall) {
      if (!spec.phase.empty() && spec.phase != "precopy") {
        return make_error("chaos.bad_value",
                          "migration_precopy_stall \"phase\" must be precopy");
      }
      spec.phase = "precopy";
    } else if (!spec.phase.empty() && spec.phase != "init" &&
               spec.phase != "precopy" && spec.phase != "eager" &&
               spec.phase != "ack" && spec.phase != "restore") {
      return make_error(
          "chaos.bad_value",
          "\"phase\" must be one of init/precopy/eager/ack/restore");
    }
    plan.specs_.push_back(std::move(spec));
  }
  return plan;
}

Expected<FaultPlan> FaultPlan::builtin(const std::string& name) {
  if (name == "control-loss") {
    // The control plane misbehaves but every machine stays up: datagram
    // loss, duplication and delay storms, one monitor silent past the
    // lease, and a registry cold restart.  Soft state (paper §3) must
    // absorb all of it without touching the applications.
    FaultPlan plan{"control-loss"};
    plan.message_loss(40.0, 200.0, 0.30)
        .message_duplicate(40.0, 200.0, 0.10)
        .message_delay(60.0, 180.0, 0.20, 0.5)
        .monitor_stall(100.0, 160.0, "ws2")
        .registry_crash(220.0, 240.0);
    return plan;
  }
  if (name == "churn") {
    // Machines and links misbehave: a host dies and reboots (its work is
    // relaunched from checkpoints elsewhere), a CPU throttles, a host is
    // partitioned past the lease and heals, a link degrades.
    FaultPlan plan{"churn"};
    plan.host_crash(45.0, 110.0, "ws3")
        .cpu_slowdown(130.0, 200.0, 0.5, "ws2")
        .partition(260.0, 320.0, "ws4")
        .link_degrade(340.0, 380.0, 0.3, "ws1", "ws2");
    return plan;
  }
  if (name == "resize-storm") {
    // Malleable jobs under fire: spawn phases stall into their timeout,
    // spawn targets crash and reboot mid-expand, redistribution stalls
    // force rollbacks, and ambient control-plane loss rides along.  The
    // no-lost-rank invariant must hold through all of it.
    FaultPlan plan{"resize-storm"};
    plan.resize_stall(60.0, 140.0, "spawn", 30.0)
        .resize_target_crash(160.0, 260.0, "spawn", 0.6, 40.0)
        .resize_stall(280.0, 360.0, "redistribute", 45.0)
        .message_loss(60.0, 360.0, 0.10)
        .host_crash(400.0, 440.0, "ws4");
    return plan;
  }
  if (name == "precopy-storm") {
    // Iterative pre-copy under fire: destinations crash while rounds are
    // in flight and during the freeze tail, the source<->destination link
    // is severed mid-round, and stalled rounds run into their timeout.
    // Every pre-ACK failure must abort to the intact source (pre-copied
    // rounds discarded), every post-ACK failure must roll back — and no
    // process may ever be lost.
    FaultPlan plan{"precopy-storm"};
    plan.migration_dest_crash(40.0, 140.0, "precopy", 0.375, 30.0)
        .migration_dest_crash(50.0, 200.0, "eager", 0.375, 30.0)
        .migration_dest_crash(60.0, 260.0, "ack", 0.375, 30.0)
        .migration_dest_crash(50.0, 320.0, "restore", 0.5, 30.0)
        .migration_link_cut(40.0, 320.0, "precopy", 0.25, 30.0)
        .migration_precopy_stall(150.0, 230.0, 120.0)
        .cpu_slowdown(30.0, 90.0, 0.5, "ws2");
    return plan;
  }
  if (name == "ckpt-storm") {
    // Failure-waste campaign plan (DESIGN.md §17): every worker host draws
    // exponential crash arrivals through a long window (the registry host is
    // spared — its fault tolerance is control-loss's job), with reboots fast
    // enough that relaunches land well inside the horizon.  Ambient message
    // loss keeps the control plane honest while checkpoints stream through
    // the shared store.
    FaultPlan plan{"ckpt-storm"};
    plan.host_crash_rate(40.0, 400.0, 150.0, "*", 30.0)
        .message_loss(60.0, 300.0, 0.05);
    return plan;
  }
  return make_error("chaos.unknown_plan", "no builtin plan named \"" + name +
                                              "\" (see builtin_names())");
}

std::vector<std::string> FaultPlan::builtin_names() {
  return {"control-loss", "churn", "resize-storm", "precopy-storm",
          "ckpt-storm"};
}

}  // namespace ars::chaos
