#include "ars/registry/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"

namespace ars::registry {

using rules::SystemState;
using xmlproto::ProtocolMessage;

namespace {

std::string process_key(const std::string& host, int pid) {
  return host + ":" + std::to_string(pid);
}

const char* strategy_name(DestinationStrategy strategy) {
  switch (strategy) {
    case DestinationStrategy::kFirstFit:
      return "first-fit";
    case DestinationStrategy::kBestFit:
      return "best-fit";
    case DestinationStrategy::kRandomFit:
      return "random-fit";
  }
  return "?";
}

/// The audit record as a trace event: one attribute per scanned host, so
/// the decision's full why-not trail is visible in the trace viewer.
void emit_decision_event(obs::Tracer* tracer, double now,
                         const std::string& track, const Decision& decision,
                         const std::string& kind,
                         const obs::TraceCtx& ctx = {},
                         std::uint64_t cause_txn = 0) {
  if (tracer == nullptr) {
    return;
  }
  obs::Attrs attrs{{"kind", kind},
                   {"source", decision.source},
                   {"process", decision.process_name},
                   {"destination", decision.destination.empty()
                                       ? std::string("none")
                                       : decision.destination},
                   {"escalated", decision.escalated}};
  obs::stamp(attrs, ctx);
  if (cause_txn != 0) {
    attrs.push_back({"cause_txn", static_cast<std::size_t>(cause_txn)});
  }
  for (const CandidateAudit& candidate : decision.candidates) {
    attrs.push_back({"candidate." + candidate.host, candidate.reason});
  }
  tracer->instant_at(now, "scheduler.decision", "scheduler", track,
                     std::move(attrs));
}

/// Rewrite the accepted verdicts once a destination is chosen.
void mark_chosen(std::vector<CandidateAudit>* audit, const std::string& chosen,
                 DestinationStrategy strategy) {
  if (audit == nullptr) {
    return;
  }
  for (CandidateAudit& candidate : *audit) {
    if (!candidate.accepted) {
      continue;
    }
    candidate.reason =
        candidate.host == chosen
            ? "chosen (" + std::string(strategy_name(strategy)) + ")"
            : "eligible (not chosen)";
    candidate.accepted = candidate.host == chosen;
  }
}

bool same_process(const ProcessEntry& a, const ProcessEntry& b) {
  return a.host == b.host && a.pid == b.pid;
}

}  // namespace

Registry::Registry(host::Host& h, net::Network& network, Config config)
    : host_(&h), network_(&network), config_(std::move(config)),
      rng_(config_.random_seed) {
  if (config_.port == 0) {
    config_.port = network_->allocate_port(host_->name());
  }
  if (config_.metrics != nullptr) {
    // Pre-register the resize-planner series so exports are stable at zero
    // (the malleable.* convention).
    for (const char* verb : {"expand", "shrink"}) {
      config_.metrics->counter("registry.resizes_commanded",
                               {{"verb", verb}});
    }
    for (const char* outcome : {"committed", "aborted", "partial-rollback"}) {
      config_.metrics->counter("registry.resize_outcomes",
                               {{"outcome", outcome}});
    }
    if (config_.enable_ckpt_io) {
      // Same stable-at-zero convention for the I/O-scheduler verdicts.
      for (const char* verb : {"admit", "defer", "preempt"}) {
        config_.metrics->counter("registry.ckpt_grants", {{"verb", verb}});
      }
      config_.metrics->counter("registry.ckpt_slots_expired");
    }
  }
  ckpt::IoScheduler::Config io;
  io.max_concurrent = config_.ckpt_max_concurrent;
  io.defer_retry = config_.ckpt_defer_retry;
  io.preempt_risk_ratio = config_.ckpt_preempt_risk;
  io.slot_ttl = config_.ckpt_slot_ttl;
  ckpt_io_ = ckpt::IoScheduler(io);
}

Registry::~Registry() { stop(); }

void Registry::start() {
  if (running_) {
    return;
  }
  running_ = true;
  endpoint_ = &network_->bind(host_->name(), config_.port);
  fibers_.push_back(sim::Fiber::spawn(host_->engine(), serve(),
                                      "registry.serve"));
  fibers_.push_back(sim::Fiber::spawn(host_->engine(), sweep(),
                                      "registry.sweep"));
  if (!config_.parent_host.empty()) {
    fibers_.push_back(sim::Fiber::spawn(host_->engine(), report_health(),
                                        "registry.health"));
  }
}

void Registry::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (auto& fiber : fibers_) {
    fiber.kill();
  }
  fibers_.clear();
  network_->unbind(host_->name(), config_.port);
  endpoint_ = nullptr;
}

void Registry::clear_soft_state() {
  hosts_.clear();
  for (StateList& list : index_) {
    list = StateList{};
  }
  processes_.clear();
  stranded_.clear();
  inflight_.clear();
  pending_relaunches_.clear();
  children_.clear();
  next_registration_order_ = 0;
}

void Registry::register_schema(const hpcm::ApplicationSchema& schema) {
  schemas_.insert_or_assign(schema.name(), schema);
}

std::optional<SystemState> Registry::host_state(
    const std::string& name) const {
  const auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    return std::nullopt;
  }
  return it->second.state;
}

// -- state index ------------------------------------------------------------

HostEntry& Registry::ensure_entry(const std::string& name) {
  const auto [it, inserted] = hosts_.try_emplace(name);
  if (inserted) {
    it->second.info.host = name;
    index_insert(it->second);  // default state: unavailable
  }
  return it->second;
}

void Registry::index_insert(HostEntry& entry) {
  StateList& list = index_[state_slot(entry.state)];
  entry.index_prev = nullptr;
  entry.index_next = nullptr;
  if (entry.state == SystemState::kFree) {
    // The free list stays ordered by registration_order so first-fit is a
    // front-of-list walk.  Scan from the tail: a host re-entering `free`
    // usually belongs near the end (recent registrations churn most).
    HostEntry* after = list.tail;
    while (after != nullptr &&
           after->registration_order > entry.registration_order) {
      after = after->index_prev;
    }
    if (after == nullptr) {
      entry.index_next = list.head;
      if (list.head != nullptr) {
        list.head->index_prev = &entry;
      }
      list.head = &entry;
      if (list.tail == nullptr) {
        list.tail = &entry;
      }
    } else {
      entry.index_prev = after;
      entry.index_next = after->index_next;
      if (after->index_next != nullptr) {
        after->index_next->index_prev = &entry;
      }
      after->index_next = &entry;
      if (list.tail == after) {
        list.tail = &entry;
      }
    }
  } else {
    // Non-free lists are never scanned for destinations: O(1) append.
    entry.index_prev = list.tail;
    if (list.tail != nullptr) {
      list.tail->index_next = &entry;
    }
    list.tail = &entry;
    if (list.head == nullptr) {
      list.head = &entry;
    }
  }
  ++list.size;
}

void Registry::index_remove(HostEntry& entry) {
  StateList& list = index_[state_slot(entry.state)];
  if (entry.index_prev != nullptr) {
    entry.index_prev->index_next = entry.index_next;
  } else {
    list.head = entry.index_next;
  }
  if (entry.index_next != nullptr) {
    entry.index_next->index_prev = entry.index_prev;
  } else {
    list.tail = entry.index_prev;
  }
  entry.index_prev = nullptr;
  entry.index_next = nullptr;
  --list.size;
}

void Registry::set_state(HostEntry& entry, SystemState next) {
  if (entry.state == next) {
    return;
  }
  index_remove(entry);
  entry.state = next;
  index_insert(entry);
}

void Registry::reposition(HostEntry& entry) {
  index_remove(entry);
  index_insert(entry);
}

std::vector<std::string> Registry::indexed_hosts(SystemState state) const {
  const StateList& list = index_[state_slot(state)];
  std::vector<std::string> names;
  names.reserve(list.size);
  for (const HostEntry* entry = list.head; entry != nullptr;
       entry = entry->index_next) {
    names.push_back(entry->info.host);
  }
  return names;
}

std::size_t Registry::indexed_count(SystemState state) const {
  return index_[state_slot(state)].size;
}

bool Registry::index_consistent() const {
  std::size_t total = 0;
  for (std::size_t slot = 0; slot < 4; ++slot) {
    const StateList& list = index_[slot];
    std::size_t count = 0;
    const HostEntry* prev = nullptr;
    for (const HostEntry* entry = list.head; entry != nullptr;
         entry = entry->index_next) {
      if (entry->index_prev != prev || state_slot(entry->state) != slot) {
        return false;
      }
      if (slot == state_slot(SystemState::kFree) && prev != nullptr &&
          prev->registration_order > entry->registration_order) {
        return false;
      }
      prev = entry;
      if (++count > hosts_.size()) {
        return false;  // cycle
      }
    }
    if (list.tail != prev || count != list.size) {
      return false;
    }
    total += count;
  }
  return total == hosts_.size();
}

// -- wire protocol ----------------------------------------------------------

void Registry::send_to(const std::string& dst_host, int dst_port,
                       const ProtocolMessage& message, obs::TraceCtx ctx) {
  net::Message wire;
  wire.src_host = host_->name();
  wire.dst_host = dst_host;
  wire.dst_port = dst_port;
  wire.payload = xmlproto::encode(message, ctx);
  wire.trace = ctx;
  network_->post(std::move(wire));
}

sim::Task<> Registry::serve() {
  while (true) {
    const net::Message wire = co_await endpoint_->inbox.recv();
    auto envelope = xmlproto::decode_envelope(wire.payload);
    if (!envelope.has_value()) {
      ARS_LOG_WARN("registry", "undecodable message from "
                                   << wire.src_host << ": "
                                   << envelope.error().to_string());
      continue;
    }
    handle(envelope->message, wire.src_host, envelope->trace);
  }
}

void Registry::deliver(const ProtocolMessage& message,
                       const std::string& from_host, obs::TraceCtx ctx) {
  handle(message, from_host, ctx);
}

void Registry::handle(const ProtocolMessage& message,
                      const std::string& from_host, obs::TraceCtx ctx) {
  const double now = host_->engine().now();
  if (const auto* reg = std::get_if<xmlproto::RegisterMsg>(&message)) {
    HostEntry& entry = ensure_entry(reg->info.host);
    entry.info = reg->info;
    // A re-registration may omit ports (they have not changed); never
    // forget a known command path.
    if (reg->monitor_port != 0) {
      entry.monitor_port = reg->monitor_port;
    }
    if (reg->commander_port != 0) {
      entry.commander_port = reg->commander_port;
    }
    entry.last_update = now;
    // Assign the registration order BEFORE admission: set_state inserts
    // into the free list ordered by registration_order, and an order-0
    // entry would walk the whole list from the tail — an O(hosts) step
    // that turns a cold registration storm quadratic.
    if (entry.registration_order == 0) {
      entry.registration_order = ++next_registration_order_;
      reposition(entry);
    }
    if (entry.state == SystemState::kUnavailable) {
      if (!entry.status_seen) {
        // Brand-new host: admit optimistically, there is no status yet.
        set_state(entry, SystemState::kFree);
      }
      // Re-admission after a lease expiry keeps the host `unavailable`
      // until a fresh UpdateMsg arrives: `entry.status` still holds
      // pre-crash metrics and must not feed destination conditions.
    }
    ARS_LOG_INFO("registry", "registered host " << reg->info.host);
    return;
  }
  if (const auto* update = std::get_if<xmlproto::UpdateMsg>(&message)) {
    HostEntry& entry = ensure_entry(update->status.host);
    entry.status = update->status;
    entry.last_update = now;
    entry.status_seen = true;
    if (entry.registration_order == 0) {
      entry.registration_order = ++next_registration_order_;
      reposition(entry);
    }
    const auto state = rules::state_from_string(update->status.state);
    set_state(entry, state.has_value() ? *state : SystemState::kBusy);
    return;
  }
  if (const auto* batch = std::get_if<xmlproto::UpdateBatchMsg>(&message)) {
    for (const xmlproto::LeaseRenewal& renewal : batch->renewals) {
      const auto it = hosts_.find(renewal.host);
      // A compact renewal cannot (re)admit a host: admission needs a full
      // UpdateMsg so the table never holds made-up or stale status data.
      if (it == hosts_.end() || !it->second.status_seen ||
          it->second.state == SystemState::kUnavailable) {
        if (config_.metrics != nullptr) {
          config_.metrics->counter("registry.renewals_rejected").inc();
        }
        continue;
      }
      HostEntry& entry = it->second;
      entry.last_update = now;
      entry.status.timestamp = renewal.timestamp;
      const auto state = rules::state_from_string(renewal.state);
      if (state.has_value() && *state != SystemState::kUnavailable) {
        entry.status.state = renewal.state;
        set_state(entry, *state);
      }
      if (config_.metrics != nullptr) {
        config_.metrics->counter("registry.renewals_applied").inc();
      }
    }
    return;
  }
  if (const auto* consult = std::get_if<xmlproto::ConsultMsg>(&message)) {
    std::erase_if(fibers_, [](const sim::Fiber& f) { return f.done(); });
    fibers_.push_back(sim::Fiber::spawn(host_->engine(),
                                        decide(*consult, ctx),
                                        "registry.decide"));
    return;
  }
  if (const auto* preg = std::get_if<xmlproto::ProcessRegisterMsg>(&message)) {
    if (preg->migration_enabled) {
      // Process names are cluster-unique: this registration supersedes any
      // older entry for the name — in particular the placeholder a
      // committed migration parks on the destination (see
      // on_migration_outcome) and the stale source-host entry whose
      // deregister got lost on the wire.
      std::erase_if(processes_, [&](const auto& kv) {
        return kv.second.name == preg->name;
      });
      ProcessEntry entry;
      entry.host = preg->host;
      entry.pid = preg->pid;
      entry.name = preg->name;
      entry.start_time = preg->start_time;
      entry.schema_name = preg->schema_name;
      processes_.insert_or_assign(process_key(preg->host, preg->pid),
                                  std::move(entry));
      if (!pending_relaunches_.empty()) {
        // A monitor re-reporting the process confirms its relaunch landed
        // (event-driven, so a fast process that exits before the TTL check
        // still counts as confirmed).
        std::erase_if(pending_relaunches_,
                      [&](const PendingRelaunch& pending) {
                        return pending.process.name == preg->name;
                      });
      }
    }
    return;
  }
  if (const auto* dereg =
          std::get_if<xmlproto::ProcessDeregisterMsg>(&message)) {
    // A deregister means the process left its host cleanly (finished or
    // migrated away) — any relaunch queued for it is stale.
    if (const auto it = processes_.find(process_key(dereg->host, dereg->pid));
        it != processes_.end()) {
      abandon_relaunch(it->second.name, "deregistered");
      processes_.erase(it);
    }
    return;
  }
  if (const auto* evac = std::get_if<xmlproto::EvacuateMsg>(&message)) {
    request_evacuation(evac->host, evac->reason);
    return;
  }
  if (const auto* ack = std::get_if<xmlproto::AckMsg>(&message)) {
    // Commander acknowledgements are informational except one: a relaunch
    // rejected because the process already exited normally.  Retrying that
    // forever would park finished work on the stranded list until the
    // horizon — abandon it instead.
    if (ack->of == "relaunch" && !ack->ok &&
        ack->detail.rfind("exited:", 0) == 0) {
      abandon_relaunch(ack->detail.substr(7), "exited");
    }
    return;
  }
  if (const auto* outcome =
          std::get_if<xmlproto::MigrationOutcomeMsg>(&message)) {
    on_migration_outcome(*outcome, ctx);
    return;
  }
  if (const auto* resize =
          std::get_if<xmlproto::ResizeOutcomeMsg>(&message)) {
    on_resize_outcome(*resize, ctx);
    return;
  }
  if (const auto* io = std::get_if<xmlproto::CkptIoRequestMsg>(&message)) {
    on_ckpt_io_request(*io, ctx);
    return;
  }
  if (const auto* health = std::get_if<xmlproto::HealthReportMsg>(&message)) {
    // Child-domain capacity, used to balance escalated consults.
    ChildDomain& child = children_[health->registry_host];
    if (health->registry_port != 0) {
      child.port = health->registry_port;
    }
    child.free_hosts = health->free_hosts;
    child.busy_hosts = health->busy_hosts;
    child.overloaded_hosts = health->overloaded_hosts;
    child.last_report = now;
    child.routed_consults = 0;  // fresh report supersedes the debits
    return;
  }
  ARS_LOG_WARN("registry", "unhandled " << xmlproto::message_type(message)
                                        << " from " << from_host);
}

sim::Task<> Registry::sweep() {
  while (true) {
    co_await sim::delay(host_->engine(), config_.sweep_period);
    const double now = host_->engine().now();
    // Retry stranded restarts first: capacity freed since the last sweep
    // (and this tick's expiries have not been processed yet).
    drain_stranded();
    // A placement whose outcome report was lost must not debit its
    // destination forever.
    const std::size_t live_debits = inflight_.size();
    std::vector<PlacementDebit> expired;
    for (const PlacementDebit& debit : inflight_) {
      if (now - debit.at > config_.placement_debit_ttl) {
        expired.push_back(debit);
      }
    }
    std::erase_if(inflight_, [&](const PlacementDebit& debit) {
      return now - debit.at > config_.placement_debit_ttl;
    });
    if (inflight_.size() != live_debits && config_.metrics != nullptr) {
      config_.metrics->counter("registry.placements_expired")
          .inc(static_cast<double>(live_debits - inflight_.size()));
      config_.metrics->gauge("registry.placements_inflight")
          .set(static_cast<double>(inflight_.size()));
    }
    // An expired migration debit whose process is on nobody's books means
    // the outcome report AND the destination's registration both vanished
    // (lossy wire, destination crash).  If that transfer committed, the
    // process died with the destination and no lease expiry will ever
    // speak for it — relaunch from checkpoint.  Exactly-once is safe: a
    // commander refuses to relaunch a process that exited normally and
    // the registry abandons the command.
    if (config_.auto_restart) {
      for (const PlacementDebit& debit : expired) {
        if (debit.process.rfind("resize:", 0) == 0) {
          continue;  // resize debits are per-target shares, not processes
        }
        const bool booked =
            std::any_of(processes_.begin(), processes_.end(),
                        [&](const auto& kv) {
                          return kv.second.name == debit.process;
                        });
        if (booked) {
          continue;
        }
        ARS_LOG_WARN("registry", "placement debit for "
                                     << debit.process
                                     << " expired with no book entry; "
                                        "relaunching from checkpoint");
        if (config_.metrics != nullptr) {
          config_.metrics->counter("registry.debit_orphan_restarts").inc();
        }
        ProcessEntry lost;
        lost.host = debit.dest;
        lost.pid = next_placeholder_pid_--;
        lost.name = debit.process;
        lost.start_time = now;
        lost.schema_name = debit.schema_name;
        RecoveryRound round;
        if (!restart_process(lost, round, /*record_stranded=*/true)) {
          const bool already = std::any_of(
              stranded_.begin(), stranded_.end(),
              [&](const ProcessEntry& p) { return p.name == lost.name; });
          if (!already) {
            stranded_.push_back(lost);
          }
        }
      }
    }
    // A relaunch command lost on the wire (partition, dead commander)
    // must not strand the process: unconfirmed relaunches re-park.
    confirm_relaunches(now);
    if (config_.enable_ckpt_io) {
      // Admitted checkpoint-write slots whose done/abort never arrived
      // (crashed host, lost report) must not starve waiting writers.
      const auto reaped = ckpt_io_.expire(now);
      if (!reaped.empty() && config_.metrics != nullptr) {
        config_.metrics->counter("registry.ckpt_slots_expired")
            .inc(static_cast<double>(reaped.size()));
      }
    }
    for (auto& [name, entry] : hosts_) {
      if (entry.state != SystemState::kUnavailable &&
          now - entry.last_update > config_.lease_ttl) {
        ARS_LOG_WARN("registry", "lease expired for host " << name);
        set_state(entry, SystemState::kUnavailable);
        if (config_.metrics != nullptr) {
          config_.metrics->counter("registry.lease_expirations").inc();
        }
        if (obs::active(config_.tracer)) {
          config_.tracer->instant(
              "registry.lease_expired", "scheduler", host_->name(),
              {{"host", name},
               {"silent_for", now - entry.last_update}});
        }
        if (config_.auto_restart) {
          restart_processes_of(name);
        }
      }
    }
    plan_resizes(now);
  }
}

void Registry::register_malleable_job(const std::string& name,
                                      const std::string& root_host,
                                      int ranks, int min_ranks, int max_ranks,
                                      const std::string& strategy) {
  MalleableJobEntry entry;
  entry.name = name;
  entry.root_host = root_host;
  entry.ranks = ranks;
  entry.min_ranks = min_ranks;
  entry.max_ranks = max_ranks;
  entry.strategy = strategy;
  malleable_jobs_.insert_or_assign(name, std::move(entry));
}

void Registry::plan_resizes(const double now) {
  if (!config_.enable_resize) {
    return;
  }
  // Membership census.  Load averages lag a fresh worker by tens of
  // seconds, so a host can sit on the free index while it is in fact
  // saturated; the planner therefore reasons from rank placement directly:
  // `occupied` hosts are never expand targets, and hosts shared by two
  // jobs shed the larger one without waiting for loadavg to confirm the
  // crowding.
  std::set<std::string> occupied;
  std::map<std::string, std::vector<std::string>> residents;  // host -> jobs
  std::map<std::string, std::vector<std::string>> members_of;
  if (config_.job_hosts) {
    for (const auto& [jname, jentry] : malleable_jobs_) {
      (void)jentry;
      std::vector<std::string> hosts = config_.job_hosts(jname);
      for (const std::string& h : hosts) {
        occupied.insert(h);
        residents[h].push_back(jname);
      }
      members_of.emplace(jname, std::move(hosts));
    }
  }
  std::set<std::string> victims_taken;  // at most one shed per host per sweep
  for (auto& [name, job] : malleable_jobs_) {
    if (job.resizing || now - job.last_resize_at < config_.resize_cooldown) {
      continue;
    }
    const auto root = hosts_.find(job.root_host);
    if (root == hosts_.end() || root->second.commander_port == 0 ||
        root->second.state == SystemState::kUnavailable) {
      continue;  // no command path to the job's root
    }
    const std::vector<std::string>& my_hosts = members_of[name];
    const std::set<std::string> member_hosts(my_hosts.begin(), my_hosts.end());
    std::vector<std::string> victims;
    const int shrinkable = job.ranks - job.min_ranks;
    // Crowding: a host carrying ranks of two jobs sheds the strictly
    // largest one (ties break on name), immediately — barrier-synchronized
    // SPMD jobs straggle on the slowest member, so one shared host halves
    // both jobs until it is repaired.
    for (const std::string& h : my_hosts) {
      if (static_cast<int>(victims.size()) >= shrinkable) {
        break;
      }
      if (h == job.root_host || victims_taken.count(h) != 0) {
        continue;
      }
      const std::vector<std::string>& who = residents[h];
      if (who.size() < 2) {
        continue;
      }
      bool shed = true;
      for (const std::string& other : who) {
        if (other == name) {
          continue;
        }
        const MalleableJobEntry& peer = malleable_jobs_.at(other);
        if (peer.ranks > job.ranks ||
            (peer.ranks == job.ranks && other > name)) {
          shed = false;  // the bigger resident sheds instead
          break;
        }
      }
      if (shed) {
        victims.push_back(h);
        victims_taken.insert(h);
      }
    }
    // Pressure: member hosts sitting on the overloaded index shed their
    // rank (the malleable analogue of a migration consult).
    for (const HostEntry* entry =
             index_[state_slot(SystemState::kOverloaded)].head;
         entry != nullptr && static_cast<int>(victims.size()) < shrinkable;
         entry = entry->index_next) {
      if (entry->info.host != job.root_host &&
          victims_taken.count(entry->info.host) == 0 &&
          member_hosts.count(entry->info.host) != 0) {
        victims.push_back(entry->info.host);
        victims_taken.insert(entry->info.host);
      }
    }
    if (!victims.empty()) {
      command_resize(job, "shrink", std::move(victims), now);
      continue;
    }
    // Slack: free hosts not already carrying a rank of this job (and not
    // already debited by another in-flight placement) take one new rank
    // each, up to the per-command step.
    if (job.ranks >= job.max_ranks) {
      continue;
    }
    const int step = std::min(config_.max_expand_step,
                              job.max_ranks - job.ranks);
    std::vector<std::string> targets;
    for (const HostEntry* entry = index_[state_slot(SystemState::kFree)].head;
         entry != nullptr && static_cast<int>(targets.size()) < step;
         entry = entry->index_next) {
      const std::string& candidate = entry->info.host;
      if (candidate == job.root_host || occupied.count(candidate) != 0 ||
          entry->draining || !entry->status_seen ||
          entry->suspect_until > now) {
        continue;
      }
      const bool debited = std::any_of(
          inflight_.begin(), inflight_.end(),
          [&](const PlacementDebit& d) { return d.dest == candidate; });
      if (debited) {
        continue;
      }
      targets.push_back(candidate);
    }
    if (!targets.empty()) {
      command_resize(job, "expand", std::move(targets), now);
    }
  }
}

void Registry::command_resize(MalleableJobEntry& job, const std::string& verb,
                              std::vector<std::string> hosts,
                              const double now) {
  const auto root = hosts_.find(job.root_host);
  if (root == hosts_.end() || root->second.commander_port == 0) {
    return;
  }
  obs::TraceCtx ctx;
  if (obs::active(config_.tracer)) {
    ctx.txn = config_.tracer->new_txn();
  }
  xmlproto::ResizeCmd cmd;
  cmd.job = job.name;
  cmd.verb = verb;
  cmd.delta = static_cast<int>(hosts.size());
  cmd.strategy = job.strategy;
  cmd.hosts = hosts;
  if (verb == "expand") {
    // Debit each target so parallel planning rounds spread placements
    // instead of piling onto the same slack host; the outcome report
    // credits them back, exactly like a migration's PlacementDebit.
    for (const std::string& target : hosts) {
      debit_placement("resize:" + job.name + ":" + target, target, "");
    }
    job.pending_targets = hosts;
  } else {
    job.pending_targets.clear();
  }
  job.resizing = true;
  job.last_resize_at = now;
  ++resizes_commanded_;
  if (config_.metrics != nullptr) {
    config_.metrics->counter("registry.resizes_commanded", {{"verb", verb}})
        .inc();
  }
  if (obs::active(config_.tracer)) {
    obs::Attrs attrs{{"job", job.name},
                     {"verb", verb},
                     {"delta", static_cast<double>(cmd.delta)},
                     {"root", job.root_host}};
    obs::stamp(attrs, ctx);
    config_.tracer->instant("registry.resize_commanded", "scheduler",
                            host_->name(), std::move(attrs));
  }
  ARS_LOG_INFO("registry", "commanding " << verb << "(" << job.name << ", "
                                         << cmd.delta << ") via "
                                         << job.root_host);
  send_to(job.root_host, root->second.commander_port, cmd, ctx);
}

void Registry::on_resize_outcome(const xmlproto::ResizeOutcomeMsg& outcome,
                                 obs::TraceCtx ctx) {
  const double now = host_->engine().now();
  if (config_.metrics != nullptr) {
    config_.metrics
        ->counter("registry.resize_outcomes", {{"outcome", outcome.outcome}})
        .inc();
  }
  if (obs::active(config_.tracer)) {
    obs::Attrs attrs{{"job", outcome.job},
                     {"verb", outcome.verb},
                     {"outcome", outcome.outcome},
                     {"reason", outcome.reason},
                     {"ranks_after", static_cast<double>(outcome.ranks_after)}};
    obs::stamp(attrs, ctx);
    config_.tracer->instant("registry.resize_outcome", "scheduler",
                            host_->name(), std::move(attrs));
  }
  // Credit every per-target debit of this job's in-flight command.
  const std::string prefix = "resize:" + outcome.job + ":";
  const std::size_t before = inflight_.size();
  std::erase_if(inflight_, [&](const PlacementDebit& debit) {
    return debit.process.rfind(prefix, 0) == 0;
  });
  if (inflight_.size() != before && config_.metrics != nullptr) {
    config_.metrics->counter("registry.placements_credited")
        .inc(static_cast<double>(before - inflight_.size()));
    config_.metrics->gauge("registry.placements_inflight")
        .set(static_cast<double>(inflight_.size()));
  }
  const auto it = malleable_jobs_.find(outcome.job);
  if (it == malleable_jobs_.end()) {
    return;
  }
  MalleableJobEntry& job = it->second;
  job.resizing = false;
  if (outcome.ranks_after > 0) {
    job.ranks = outcome.ranks_after;
  }
  if (outcome.outcome != "committed" && outcome.phase != "plan") {
    // Failed expand targets back off as spawn destinations, exactly like a
    // failed migration destination.  Plan-phase rejections never touched
    // the targets, so they stay in good standing.
    for (const std::string& target : job.pending_targets) {
      if (const auto hit = hosts_.find(target); hit != hosts_.end()) {
        hit->second.suspect_until = now + config_.suspect_backoff;
        if (config_.metrics != nullptr) {
          config_.metrics->counter("registry.hosts_suspected").inc();
        }
      }
    }
  }
  job.pending_targets.clear();
  if (outcome.reason == "job-finished" || outcome.reason == "job-failed") {
    malleable_jobs_.erase(it);  // terminal: stop planning resizes for it
  }
}

void Registry::on_ckpt_io_request(const xmlproto::CkptIoRequestMsg& request,
                                  obs::TraceCtx ctx) {
  if (!config_.enable_ckpt_io) {
    // Not scheduling checkpoint I/O: admit everything so a misconfigured
    // cooperative cluster degrades to periodic behaviour, not deadlock.
    if (request.verb == "request") {
      send_ckpt_grant(request.host,
                      {request.process, "admit", /*retry_after=*/0.0}, ctx);
    }
    return;
  }
  const double now = host_->engine().now();
  if (request.verb == "done" || request.verb == "abort") {
    ckpt_io_.release(request.process);  // idempotent under stale reports
    return;
  }
  if (request.verb != "request") {
    ARS_LOG_WARN("registry", "unknown ckpt_io verb '" << request.verb
                                                      << "' from "
                                                      << request.host);
    return;
  }
  const ckpt::Admission verdict =
      ckpt_io_.request(request.process, request.host, request.risk, now);
  const char* verb = verdict.verb == ckpt::Admission::Verb::kDefer
                         ? "defer"
                         : verdict.verb == ckpt::Admission::Verb::kPreempt
                               ? "preempt"
                               : "admit";
  if (config_.metrics != nullptr) {
    config_.metrics->counter("registry.ckpt_grants", {{"verb", verb}}).inc();
  }
  if (obs::active(config_.tracer)) {
    obs::Attrs attrs{{"process", request.process},
                     {"verb", std::string(verb)},
                     {"risk", request.risk},
                     {"active", static_cast<double>(ckpt_io_.active())}};
    obs::stamp(attrs, ctx);
    config_.tracer->instant("registry.ckpt_grant", "scheduler", host_->name(),
                            std::move(attrs));
  }
  if (verdict.verb == ckpt::Admission::Verb::kPreempt) {
    // Evict the victim first, then admit the requester: the victim's
    // commander aborts the in-flight write and backs off.
    send_ckpt_grant(verdict.victim_host,
                    {verdict.preempt_victim, "preempt", verdict.retry_after},
                    ctx);
    send_ckpt_grant(request.host, {request.process, "admit", 0.0}, ctx);
    return;
  }
  if (verdict.verb == ckpt::Admission::Verb::kDefer) {
    send_ckpt_grant(request.host,
                    {request.process, "defer", verdict.retry_after}, ctx);
    return;
  }
  send_ckpt_grant(request.host, {request.process, "admit", 0.0}, ctx);
}

void Registry::send_ckpt_grant(const std::string& host,
                               const xmlproto::CkptIoGrantMsg& grant,
                               obs::TraceCtx ctx) {
  const auto it = hosts_.find(host);
  if (it == hosts_.end() || it->second.commander_port == 0) {
    ARS_LOG_WARN("registry", "no commander path to " << host
                                                     << " for ckpt grant");
    return;
  }
  send_to(host, it->second.commander_port, grant, ctx);
}

void Registry::restart_processes_of(const std::string& lost_host) {
  // Failure recovery: every process registered on the silent host is
  // relaunched elsewhere from its latest checkpoint.  The destination's
  // commander performs the relaunch; the lost host's entries are dropped.
  // Placements within the round debit each other so the processes spread
  // instead of piling onto the first free host.
  std::vector<ProcessEntry> lost;
  for (const auto& [key, entry] : processes_) {
    if (entry.host == lost_host) {
      lost.push_back(entry);
    }
  }
  RecoveryRound round;
  for (const ProcessEntry& process : lost) {
    processes_.erase(process_key(process.host, process.pid));
    if (!restart_process(process, round, /*record_stranded=*/true)) {
      // Parked: the sweeper retries once capacity frees up.
      const bool already =
          std::any_of(stranded_.begin(), stranded_.end(),
                      [&](const ProcessEntry& p) {
                        return same_process(p, process);
                      });
      if (!already) {
        stranded_.push_back(process);
      }
    }
  }
}

bool Registry::restart_process(const ProcessEntry& process,
                               RecoveryRound& round, bool record_stranded,
                               obs::TraceCtx cause) {
  // A restart opens a fresh transaction: the registry is the originator
  // (no consult precedes it), so the decision event is the DAG root.
  obs::TraceCtx ctx;
  if (obs::active(config_.tracer)) {
    ctx.txn = config_.tracer->new_txn();
  }
  Decision decision;
  decision.at = host_->engine().now();
  decision.source = process.host;
  decision.pid = process.pid;
  decision.process_name = process.name;
  decision.restart = true;
  std::vector<CandidateAudit>* audit =
      want_audit() ? &decision.candidates : nullptr;
  const auto eligible =
      eligible_destinations(process.host, process.schema_name, audit);
  const hpcm::ApplicationSchema* schema = nullptr;
  if (const auto schema_it = schemas_.find(process.schema_name);
      schema_it != schemas_.end()) {
    schema = &schema_it->second;
  }
  // In-flight debits: restarts commanded earlier in this round occupy
  // resources the destination's next heartbeat cannot yet reflect.
  std::vector<const HostEntry*> viable;
  viable.reserve(eligible.size());
  for (const HostEntry* entry : eligible) {
    const auto debit_it = round.by_host.find(entry->info.host);
    if (debit_it != round.by_host.end() && schema != nullptr) {
      const auto& req = schema->requirements();
      const RecoveryRound::Debit& debit = debit_it->second;
      if (entry->info.memory_bytes < req.min_memory_bytes + debit.memory_bytes ||
          entry->info.disk_bytes < req.min_disk_bytes + debit.disk_bytes) {
        if (audit != nullptr) {
          for (CandidateAudit& candidate : *audit) {
            if (candidate.host == entry->info.host) {
              candidate.accepted = false;
              candidate.reason = "in-flight restarts exhaust resources";
            }
          }
        }
        continue;
      }
    }
    viable.push_back(entry);
  }
  if (viable.empty()) {
    if (record_stranded) {
      ARS_LOG_ERROR("registry", "no host to restart " << process.name
                                                      << " (lost with "
                                                      << process.host << ")");
      decisions_.push_back(decision);
      emit_decision_event(config_.tracer, decision.at, host_->name(),
                          decision, "restart-stranded", ctx, cause.txn);
      if (config_.metrics != nullptr) {
        config_.metrics->counter("registry.restarts_stranded").inc();
      }
    }
    return false;
  }
  // Spread the round: only destinations with the fewest placements so far
  // stay in play, then the configured strategy picks among them.
  int min_placements = std::numeric_limits<int>::max();
  const auto placements = [&round](const HostEntry* entry) {
    const auto it = round.by_host.find(entry->info.host);
    return it == round.by_host.end() ? 0 : it->second.placements;
  };
  for (const HostEntry* entry : viable) {
    min_placements = std::min(min_placements, placements(entry));
  }
  std::vector<const HostEntry*> spread;
  spread.reserve(viable.size());
  for (const HostEntry* entry : viable) {
    if (placements(entry) == min_placements) {
      spread.push_back(entry);
    }
  }
  const HostEntry* chosen = spread.front();
  switch (config_.strategy) {
    case DestinationStrategy::kFirstFit:
      break;
    case DestinationStrategy::kBestFit:
      for (const HostEntry* entry : spread) {
        if (entry->status.load1 < chosen->status.load1 ||
            (entry->status.load1 == chosen->status.load1 &&
             entry->status.load5 < chosen->status.load5)) {
          chosen = entry;
        }
      }
      break;
    case DestinationStrategy::kRandomFit:
      chosen = spread[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(spread.size()) - 1))];
      break;
  }
  mark_chosen(audit, chosen->info.host, config_.strategy);
  decision.destination = chosen->info.host;
  decisions_.push_back(decision);
  emit_decision_event(config_.tracer, decision.at, host_->name(), decision,
                      "restart", ctx, cause.txn);
  if (config_.metrics != nullptr) {
    config_.metrics->counter("registry.restarts_commanded").inc();
  }
  RecoveryRound::Debit& debit = round.by_host[chosen->info.host];
  ++debit.placements;
  if (schema != nullptr) {
    debit.memory_bytes += schema->requirements().min_memory_bytes;
    debit.disk_bytes += schema->requirements().min_disk_bytes;
  }
  xmlproto::RelaunchCmd command;
  command.process_name = process.name;
  command.lost_host = process.host;
  command.schema_name = process.schema_name;
  ARS_LOG_WARN("registry", "restarting " << process.name << " on "
                                         << chosen->info.host);
  send_to(chosen->info.host, chosen->commander_port, command, ctx);
  // Track the command until a monitor re-reports the process: the wire is
  // lossy and a vanished RelaunchCmd must not lose the process for good.
  std::erase_if(pending_relaunches_, [&](const PendingRelaunch& pending) {
    return pending.process.name == process.name;
  });
  pending_relaunches_.push_back(
      PendingRelaunch{process, chosen->info.host, host_->engine().now()});
  return true;
}

void Registry::abandon_relaunch(const std::string& process_name,
                                const std::string& reason) {
  const auto dropped =
      std::erase_if(stranded_, [&](const ProcessEntry& process) {
        return process.name == process_name;
      }) +
      std::erase_if(pending_relaunches_, [&](const PendingRelaunch& pending) {
        return pending.process.name == process_name;
      });
  if (dropped == 0) {
    return;
  }
  ARS_LOG_INFO("registry", "abandoning relaunch of " << process_name << " ("
                                                     << reason << ")");
  if (config_.metrics != nullptr) {
    config_.metrics->counter("registry.relaunches_abandoned").inc();
  }
  if (obs::active(config_.tracer)) {
    config_.tracer->instant(
        "registry.relaunch_abandoned", "scheduler", host_->name(),
        {{"process", process_name}, {"reason", reason}});
  }
}

void Registry::drain_stranded() {
  if (stranded_.empty()) {
    return;
  }
  // A stranded process a monitor has re-reported is alive again (an earlier
  // relaunch landed, or the lease expiry was spurious) — its retry is done.
  std::erase_if(stranded_, [&](const ProcessEntry& process) {
    for (const auto& [key, entry] : processes_) {
      if (entry.name == process.name) {
        if (config_.metrics != nullptr) {
          config_.metrics->counter("registry.stranded_recovered").inc();
        }
        return true;
      }
    }
    return false;
  });
  RecoveryRound round;
  std::vector<ProcessEntry> still;
  still.reserve(stranded_.size());
  for (const ProcessEntry& process : stranded_) {
    if (!restart_process(process, round, /*record_stranded=*/false)) {
      still.push_back(process);
    }
  }
  if (still.size() != stranded_.size() && config_.metrics != nullptr) {
    config_.metrics->counter("registry.stranded_recovered")
        .inc(static_cast<double>(stranded_.size() - still.size()));
  }
  stranded_.swap(still);
}

void Registry::confirm_relaunches(double now) {
  std::vector<PendingRelaunch> unconfirmed;
  std::erase_if(pending_relaunches_, [&](const PendingRelaunch& pending) {
    if (now - pending.commanded_at <= config_.relaunch_confirm_ttl) {
      return false;  // still inside the confirmation window
    }
    for (const auto& [key, entry] : processes_) {
      if (entry.name == pending.process.name) {
        return true;  // a monitor has re-reported it — relaunch landed
      }
    }
    unconfirmed.push_back(pending);
    return true;
  });
  for (const PendingRelaunch& pending : unconfirmed) {
    ARS_LOG_WARN("registry", "relaunch of " << pending.process.name << " on "
                                            << pending.dest
                                            << " unconfirmed; retrying");
    if (config_.metrics != nullptr) {
      config_.metrics->counter("registry.relaunches_retried").inc();
    }
    if (obs::active(config_.tracer)) {
      config_.tracer->instant("registry.relaunch_retry", "scheduler",
                              host_->name(),
                              {{"process", pending.process.name},
                               {"dest", pending.dest}});
    }
    const bool already = std::any_of(
        stranded_.begin(), stranded_.end(), [&](const ProcessEntry& p) {
          return p.name == pending.process.name;
        });
    if (!already) {
      stranded_.push_back(pending.process);
    }
  }
}

void Registry::debit_placement(const std::string& process_name,
                               const std::string& dest,
                               const std::string& schema_name) {
  // A process has at most one migration in flight: a new command for it
  // supersedes any stale debit (bounds the list when outcomes get lost).
  std::erase_if(inflight_, [&](const PlacementDebit& debit) {
    return debit.process == process_name;
  });
  PlacementDebit debit;
  debit.process = process_name;
  debit.dest = dest;
  debit.schema_name = schema_name;
  debit.at = host_->engine().now();
  if (const auto it = schemas_.find(schema_name); it != schemas_.end()) {
    debit.memory_bytes = it->second.requirements().min_memory_bytes;
    debit.disk_bytes = it->second.requirements().min_disk_bytes;
  }
  inflight_.push_back(std::move(debit));
  if (config_.metrics != nullptr) {
    config_.metrics->gauge("registry.placements_inflight")
        .set(static_cast<double>(inflight_.size()));
  }
}

std::pair<std::uint64_t, std::uint64_t> Registry::inflight_debit(
    const std::string& host_name) const {
  std::uint64_t memory = 0;
  std::uint64_t disk = 0;
  for (const PlacementDebit& debit : inflight_) {
    if (debit.dest == host_name) {
      memory += debit.memory_bytes;
      disk += debit.disk_bytes;
    }
  }
  return {memory, disk};
}

void Registry::on_migration_outcome(
    const xmlproto::MigrationOutcomeMsg& outcome, obs::TraceCtx ctx) {
  const double now = host_->engine().now();
  if (config_.metrics != nullptr) {
    config_.metrics
        ->counter("registry.migration_outcomes",
                  {{"outcome", outcome.outcome}})
        .inc();
  }
  if (obs::active(config_.tracer)) {
    obs::Attrs attrs{{"process", outcome.process},
                     {"dest", outcome.destination},
                     {"outcome", outcome.outcome},
                     {"reason", outcome.reason}};
    obs::stamp(attrs, ctx);
    config_.tracer->instant("registry.migration_outcome", "scheduler",
                            host_->name(), std::move(attrs));
  }
  // Credit the in-flight placement debit back (prefer the exact
  // destination; fall back to the process alone for re-planned debits).
  auto debit = std::find_if(
      inflight_.begin(), inflight_.end(), [&](const PlacementDebit& d) {
        return d.process == outcome.process && d.dest == outcome.destination;
      });
  if (debit == inflight_.end()) {
    debit = std::find_if(
        inflight_.begin(), inflight_.end(),
        [&](const PlacementDebit& d) { return d.process == outcome.process; });
  }
  std::string debited_schema;
  if (debit != inflight_.end()) {
    debited_schema = debit->schema_name;
    inflight_.erase(debit);
    if (config_.metrics != nullptr) {
      config_.metrics->counter("registry.placements_credited").inc();
      config_.metrics->gauge("registry.placements_inflight")
          .set(static_cast<double>(inflight_.size()));
    }
  }
  if (outcome.outcome == "committed") {
    // The authoritative ProcessRegisterMsg from the destination can be
    // lost or arrive after the destination dies; until it lands the
    // process would still be booked on the source — or on nobody once the
    // source's deregister arrives — and a destination crash in that
    // window would never trigger a relaunch.  Put the entry on the
    // destination's books now under a placeholder pid (rebuilt from the
    // placement debit if the deregister already erased it); the real
    // registration supersedes it by name.
    bool found = false;
    for (auto it = processes_.begin(); it != processes_.end(); ++it) {
      if (it->second.name != outcome.process) {
        continue;
      }
      found = true;
      if (it->second.host != outcome.destination) {
        ProcessEntry moved = it->second;
        processes_.erase(it);
        moved.host = outcome.destination;
        moved.pid = next_placeholder_pid_--;
        processes_.insert_or_assign(process_key(moved.host, moved.pid),
                                    std::move(moved));
      }
      break;
    }
    if (!found) {
      ProcessEntry rebuilt;
      rebuilt.host = outcome.destination;
      rebuilt.pid = next_placeholder_pid_--;
      rebuilt.name = outcome.process;
      rebuilt.start_time = now;
      rebuilt.schema_name = debited_schema;
      processes_.insert_or_assign(process_key(rebuilt.host, rebuilt.pid),
                                  std::move(rebuilt));
    }
    return;
  }
  // The destination failed mid-transaction: back it off as a destination
  // until it proves itself again.
  if (const auto it = hosts_.find(outcome.destination); it != hosts_.end()) {
    it->second.suspect_until = now + config_.suspect_backoff;
    ARS_LOG_WARN("registry", "marking " << outcome.destination
                                        << " suspect until t="
                                        << it->second.suspect_until << " ("
                                        << outcome.outcome << ": "
                                        << outcome.reason << ")");
    if (config_.metrics != nullptr) {
      config_.metrics->counter("registry.hosts_suspected").inc();
    }
  }
  if (outcome.outcome == "rolled-back") {
    // Post-commit destination loss: the process committed to the dead
    // destination, so the source lease never lapses for it — command the
    // checkpoint-restart directly instead of waiting for a lease that is
    // not coming.
    ProcessEntry lost;
    bool known = false;
    for (const auto& [key, entry] : processes_) {
      if (entry.name == outcome.process) {
        lost = entry;
        known = true;
        break;
      }
    }
    if (known) {
      processes_.erase(process_key(lost.host, lost.pid));
    } else {
      // The destination died before its monitor ever reported the arrival;
      // reconstruct what the relaunch needs from the outcome itself.
      lost.name = outcome.process;
      lost.host = outcome.destination;
    }
    if (config_.metrics != nullptr) {
      config_.metrics->counter("registry.rollback_restarts").inc();
    }
    RecoveryRound round;
    if (!restart_process(lost, round, /*record_stranded=*/true, ctx)) {
      const bool already = std::any_of(
          stranded_.begin(), stranded_.end(),
          [&](const ProcessEntry& p) { return p.name == lost.name; });
      if (!already) {
        stranded_.push_back(lost);
      }
    }
    return;
  }
  if (outcome.outcome != "aborted") {
    return;
  }
  // Aborted: the process still runs on the source.  Clear its cooldown
  // (this migration never happened) and re-plan right away.
  for (auto& [key, process] : processes_) {
    if (process.host == outcome.source && process.name == outcome.process) {
      process.last_migrated_at = -1.0e9;
    }
  }
  if (config_.replan_on_abort) {
    xmlproto::ConsultMsg consult;
    consult.host = outcome.source;
    consult.reason = "migration aborted (" + outcome.reason + ")";
    // The re-plan is a NEW transaction (one migration attempt per DAG);
    // the replan event links it back to the aborted one via cause_txn.
    obs::TraceCtx replan_ctx;
    if (obs::active(config_.tracer)) {
      replan_ctx.txn = config_.tracer->new_txn();
      obs::Attrs attrs{{"process", outcome.process},
                       {"source", outcome.source}};
      obs::stamp(attrs, replan_ctx);
      if (ctx.set()) {
        attrs.emplace_back("cause_txn", static_cast<std::size_t>(ctx.txn));
      }
      config_.tracer->instant("registry.replan", "scheduler", host_->name(),
                              std::move(attrs));
    }
    std::erase_if(fibers_, [](const sim::Fiber& f) { return f.done(); });
    fibers_.push_back(sim::Fiber::spawn(host_->engine(),
                                        decide(consult, replan_ctx),
                                        "registry.decide"));
  }
}

sim::Task<> Registry::report_health() {
  while (true) {
    co_await sim::delay(host_->engine(), config_.health_report_period);
    xmlproto::HealthReportMsg report;
    report.registry_host = host_->name();
    report.registry_port = config_.port;
    report.timestamp = host_->engine().now();
    // O(1) from the index list sizes.
    report.free_hosts =
        static_cast<int>(index_[state_slot(SystemState::kFree)].size);
    report.busy_hosts =
        static_cast<int>(index_[state_slot(SystemState::kBusy)].size);
    report.overloaded_hosts =
        static_cast<int>(index_[state_slot(SystemState::kOverloaded)].size);
    send_to(config_.parent_host, config_.parent_port, report);
  }
}

const ProcessEntry* Registry::select_process(const std::string& source_host) {
  // "The registry/scheduler tends to migrate a process that has the latest
  // completing time to reduce the possibility of migrating multiple
  // processes."  Estimated completion = start time + schema estimate.
  const double now = host_->engine().now();
  const ProcessEntry* best = nullptr;
  double best_completion = -1.0;
  for (auto& [key, entry] : processes_) {
    if (entry.host != source_host) {
      continue;
    }
    if (now - entry.last_migrated_at < config_.per_process_cooldown) {
      continue;
    }
    double est_exec = 0.0;
    const auto schema_it = schemas_.find(entry.schema_name);
    if (schema_it != schemas_.end()) {
      // Data-locality consideration (paper 5.3): a process that depends
      // heavily on host-local data is not migrated.
      if (schema_it->second.data_locality() >= config_.locality_threshold) {
        continue;
      }
      est_exec = schema_it->second.est_exec_time();
    }
    const double completion = entry.start_time + est_exec;
    if (best == nullptr || completion > best_completion) {
      best = &entry;
      best_completion = completion;
    }
  }
  return best;
}

bool Registry::want_audit() const {
  switch (config_.audit) {
    case AuditMode::kAlways:
      return true;
    case AuditMode::kOff:
      return false;
    case AuditMode::kAuto:
      break;
  }
  return obs::active(config_.tracer);
}

std::vector<const HostEntry*> Registry::eligible_destinations(
    const std::string& source_host, const std::string& schema_name,
    std::vector<CandidateAudit>* audit) const {
  const hpcm::ApplicationSchema* schema = nullptr;
  const auto schema_it = schemas_.find(schema_name);
  if (schema_it != schemas_.end()) {
    schema = &schema_it->second;
  }
  // The audited scan is inherently O(hosts): every registered host gets a
  // verdict.  Without an audit (and unless the reference scan is forced)
  // only the `free` index list is walked; both produce the identical
  // eligible sequence because only free hosts pass the state filter and
  // the free list preserves registration order.
  if (audit != nullptr || config_.use_legacy_scan) {
    return legacy_eligible(source_host, schema, schema_name, audit);
  }
  return indexed_eligible(source_host, schema);
}

std::vector<const HostEntry*> Registry::legacy_eligible(
    const std::string& source_host, const hpcm::ApplicationSchema* schema,
    const std::string& schema_name,
    std::vector<CandidateAudit>* audit) const {
  const double now = host_->engine().now();
  std::vector<const HostEntry*> ordered;
  ordered.reserve(hosts_.size());
  for (const auto& [name, entry] : hosts_) {
    ordered.push_back(&entry);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const HostEntry* a, const HostEntry* b) {
              return a->registration_order < b->registration_order;
            });
  const auto reject = [audit](const HostEntry* entry, std::string reason) {
    if (audit != nullptr) {
      audit->push_back({entry->info.host, false, std::move(reason)});
    }
  };
  std::vector<const HostEntry*> eligible;
  for (const HostEntry* entry : ordered) {
    if (entry->info.host == source_host) {
      reject(entry, "source host");
      continue;
    }
    if (entry->draining) {
      reject(entry, "draining (evacuated)");
      continue;
    }
    if (entry->suspect_until > now) {
      reject(entry, "suspect (recent migration failure)");
      continue;
    }
    if (!rules::actions_for(entry->state).migrate_in) {
      // only `free` hosts accept incoming applications
      reject(entry,
             "state=" + std::string(rules::to_string(entry->state)) +
                 " (not free)");
      continue;
    }
    if (entry->commander_port == 0) {
      // Update-before-Register ghost: no RegisterMsg has supplied ports
      // yet, so any command would be posted to port 0 and silently lost.
      reject(entry, "unregistered (no command port)");
      continue;
    }
    if (!config_.policy.accepts_destination(entry->status)) {
      reject(entry, "policy destination conditions");
      continue;
    }
    if (schema != nullptr) {
      const auto& req = schema->requirements();
      if (entry->info.memory_bytes < req.min_memory_bytes ||
          entry->info.disk_bytes < req.min_disk_bytes ||
          entry->info.cpu_speed < req.min_cpu_speed) {
        reject(entry, "insufficient resources for schema " + schema_name);
        continue;
      }
      const auto [mem_debit, disk_debit] =
          inflight_debit(entry->info.host);
      if ((mem_debit != 0 || disk_debit != 0) &&
          (entry->info.memory_bytes < req.min_memory_bytes + mem_debit ||
           entry->info.disk_bytes < req.min_disk_bytes + disk_debit)) {
        reject(entry, "in-flight placements exhaust resources");
        continue;
      }
    }
    if (audit != nullptr) {
      audit->push_back({entry->info.host, true, "eligible"});
    }
    eligible.push_back(entry);
  }
  return eligible;
}

std::vector<const HostEntry*> Registry::indexed_eligible(
    const std::string& source_host,
    const hpcm::ApplicationSchema* schema) const {
  const double now = host_->engine().now();
  const StateList& free_list = index_[state_slot(SystemState::kFree)];
  std::vector<const HostEntry*> eligible;
  eligible.reserve(free_list.size);
  for (const HostEntry* entry = free_list.head; entry != nullptr;
       entry = entry->index_next) {
    if (entry->info.host == source_host || entry->draining ||
        entry->suspect_until > now || entry->commander_port == 0) {
      continue;
    }
    if (!config_.policy.accepts_destination(entry->status)) {
      continue;
    }
    if (schema != nullptr) {
      const auto& req = schema->requirements();
      if (entry->info.memory_bytes < req.min_memory_bytes ||
          entry->info.disk_bytes < req.min_disk_bytes ||
          entry->info.cpu_speed < req.min_cpu_speed) {
        continue;
      }
      const auto [mem_debit, disk_debit] =
          inflight_debit(entry->info.host);
      if ((mem_debit != 0 || disk_debit != 0) &&
          (entry->info.memory_bytes < req.min_memory_bytes + mem_debit ||
           entry->info.disk_bytes < req.min_disk_bytes + disk_debit)) {
        continue;
      }
    }
    eligible.push_back(entry);
  }
  return eligible;
}

std::optional<std::string> Registry::first_fit_destination(
    const std::string& source_host, const std::string& schema_name) {
  const auto eligible = eligible_destinations(source_host, schema_name);
  if (eligible.empty()) {
    return std::nullopt;
  }
  return eligible.front()->info.host;
}

std::optional<std::string> Registry::choose_destination(
    const std::string& source_host, const std::string& schema_name,
    std::vector<CandidateAudit>* audit) {
  const auto eligible =
      eligible_destinations(source_host, schema_name, audit);
  if (eligible.empty()) {
    return std::nullopt;
  }
  const auto finish = [&](const std::string& chosen) {
    mark_chosen(audit, chosen, config_.strategy);
    return chosen;
  };
  switch (config_.strategy) {
    case DestinationStrategy::kFirstFit:
      return finish(eligible.front()->info.host);
    case DestinationStrategy::kBestFit: {
      // Least loaded (then least 5-min load as a tiebreak).
      const HostEntry* best = eligible.front();
      for (const HostEntry* entry : eligible) {
        if (entry->status.load1 < best->status.load1 ||
            (entry->status.load1 == best->status.load1 &&
             entry->status.load5 < best->status.load5)) {
          best = entry;
        }
      }
      return finish(best->info.host);
    }
    case DestinationStrategy::kRandomFit: {
      const auto index = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(eligible.size()) - 1));
      return finish(eligible[index]->info.host);
    }
  }
  return std::nullopt;
}

void Registry::request_evacuation(const std::string& host,
                                  const std::string& reason) {
  std::erase_if(fibers_, [](const sim::Fiber& f) { return f.done(); });
  fibers_.push_back(sim::Fiber::spawn(host_->engine(),
                                      evacuate(host, reason),
                                      "registry.evacuate"));
}

sim::Task<> Registry::evacuate(std::string drained_host, std::string reason) {
  co_await sim::delay(host_->engine(), config_.decision_delay);
  ARS_LOG_WARN("registry",
               "evacuating " << drained_host << " (" << reason << ")");
  if (config_.metrics != nullptr) {
    config_.metrics->counter("registry.evacuations").inc();
  }
  if (obs::active(config_.tracer)) {
    config_.tracer->instant("registry.evacuation", "scheduler",
                            host_->name(),
                            {{"host", drained_host}, {"reason", reason}});
  }
  // The host stops being a destination immediately and permanently
  // (heartbeats keep refreshing its state but not its draining mark).
  const auto host_it = hosts_.find(drained_host);
  if (host_it != hosts_.end()) {
    host_it->second.draining = true;
  }
  // Command every migration-enabled process off, each to its own first-fit
  // destination; placements interleave with the transfers, so re-evaluate
  // the candidate list per process.
  std::vector<ProcessEntry> targets;
  for (const auto& [key, entry] : processes_) {
    if (entry.host == drained_host) {
      targets.push_back(entry);
    }
  }
  for (const ProcessEntry& process : targets) {
    // Each evacuated process gets its own transaction (one migration per
    // DAG), rooted at its decision event.
    obs::TraceCtx ctx;
    if (obs::active(config_.tracer)) {
      ctx.txn = config_.tracer->new_txn();
    }
    Decision decision;
    auto destination = choose_destination(
        drained_host, process.schema_name,
        want_audit() ? &decision.candidates : nullptr);
    decision.at = host_->engine().now();
    decision.source = drained_host;
    decision.pid = process.pid;
    decision.process_name = process.name;
    decision.decision_latency = config_.decision_delay;
    if (!destination.has_value()) {
      ARS_LOG_ERROR("registry", "evacuation: no destination for "
                                    << process.name << " - process stays");
      decisions_.push_back(decision);
      emit_decision_event(config_.tracer, decision.at, host_->name(),
                          decision, "evacuate-stranded", ctx);
      continue;
    }
    decision.destination = *destination;
    decisions_.push_back(decision);
    emit_decision_event(config_.tracer, decision.at, host_->name(), decision,
                        "evacuate", ctx);
    const auto source_it = hosts_.find(drained_host);
    const auto dest_it = hosts_.find(*destination);
    if (source_it == hosts_.end() || dest_it == hosts_.end()) {
      continue;
    }
    xmlproto::MigrateCmd command;
    command.pid = process.pid;
    command.process_name = process.name;
    command.dest_host = *destination;
    command.dest_ip = dest_it->second.info.ip;
    command.dest_port = dest_it->second.commander_port;
    command.schema_name = process.schema_name;
    send_to(drained_host, source_it->second.commander_port, command, ctx);
    debit_placement(process.name, *destination, process.schema_name);
    ++evacuations_commanded_;
    // Give each migration a beat so the destinations' heartbeats can
    // reflect the newly placed work before the next placement.
    co_await sim::delay(host_->engine(), 1.0);
  }
}

bool Registry::route_to_child(const xmlproto::ConsultMsg& consult,
                              obs::TraceCtx ctx) {
  // A routed consult must carry the child's process selection and a
  // command return-path; without them the receiving domain could decide
  // nothing.
  if (consult.pid == 0 || consult.commander_port == 0) {
    return false;
  }
  ChildDomain* best = nullptr;
  const std::string* best_name = nullptr;
  int best_available = 0;
  for (auto& [name, child] : children_) {
    if (name == consult.origin_registry || child.port == 0) {
      continue;
    }
    // Conservative capacity estimate: reported free hosts minus consults
    // already routed there since that report.
    const int available = child.free_hosts - child.routed_consults;
    if (available <= 0) {
      continue;
    }
    if (best == nullptr || available > best_available) {
      best = &child;
      best_name = &name;
      best_available = available;
    }
  }
  if (best == nullptr) {
    return false;
  }
  ++best->routed_consults;
  send_to(*best_name, best->port, consult, ctx);
  if (config_.metrics != nullptr) {
    config_.metrics->counter("registry.consults_routed").inc();
  }
  if (obs::active(config_.tracer)) {
    obs::Attrs attrs{{"child", *best_name}, {"source", consult.host}};
    obs::stamp(attrs, ctx);
    config_.tracer->instant("registry.consult_routed", "scheduler",
                            host_->name(), std::move(attrs));
  }
  return true;
}

sim::Task<> Registry::decide(xmlproto::ConsultMsg consult, obs::TraceCtx ctx) {
  obs::Tracer* tracer = config_.tracer;
  std::uint64_t decide_span = 0;
  if (obs::active(tracer)) {
    obs::Attrs attrs{{"source", consult.host}, {"reason", consult.reason}};
    obs::stamp(attrs, ctx);
    decide_span = tracer->begin_span("scheduler.decide", "scheduler",
                                     host_->name(), std::move(attrs));
  }
  // Everything this decision sends descends from the decide span.
  const obs::TraceCtx out_ctx = ctx.child_of(decide_span);
  if (config_.metrics != nullptr) {
    config_.metrics->counter("scheduler.consults").inc();
  }
  const auto record = [this, tracer, decide_span,
                       out_ctx](const Decision& decision,
                                const char* outcome) {
    decisions_.push_back(decision);
    if (config_.metrics != nullptr) {
      config_.metrics
          ->histogram("scheduler.decision_latency", {},
                      {1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1.0})
          .observe(decision.decision_latency);
      config_.metrics
          ->counter("scheduler.decisions", {{"outcome", outcome}})
          .inc();
    }
    if (obs::active(tracer)) {
      emit_decision_event(tracer, decision.at, host_->name(), decision,
                          outcome, out_ctx);
      tracer->end_span(decide_span, {{"outcome", outcome}});
    }
  };
  // The measured decision latency (~0.002 s in §5.2).
  co_await sim::delay(host_->engine(), config_.decision_delay);
  const double now = host_->engine().now();

  Decision decision;
  decision.at = now;
  decision.source = consult.host;
  decision.decision_latency = config_.decision_delay;

  const ProcessEntry* process = select_process(consult.host);
  // An escalated consult carries the child's selection; adopt it when the
  // process is unknown locally.
  ProcessEntry carried;
  if (process == nullptr && consult.pid != 0) {
    carried.host = consult.host;
    carried.pid = consult.pid;
    carried.name = consult.process_name;
    carried.schema_name = consult.schema_name;
    process = &carried;
  }
  if (process == nullptr) {
    ARS_LOG_INFO("registry", "consult from " << consult.host << " ("
                                             << consult.reason
                                             << "): no migratable process");
    record(decision, "no-process");
    co_return;
  }
  decision.pid = process->pid;
  decision.process_name = process->name;

  auto destination = choose_destination(
      consult.host, process->schema_name,
      want_audit() ? &decision.candidates : nullptr);
  if (!destination.has_value() && !config_.parent_host.empty()) {
    // Hierarchical escalation: ask the parent registry, carrying the
    // process selection and the source commander's return-path so any
    // domain the parent picks can command the migration.
    decision.escalated = true;
    xmlproto::ConsultMsg escalate = consult;
    escalate.reason =
        consult.reason + " (escalated by " + host_->name() + ")";
    if (escalate.origin_registry.empty()) {
      escalate.origin_registry = host_->name();
    }
    escalate.pid = process->pid;
    escalate.process_name = process->name;
    escalate.schema_name = process->schema_name;
    if (escalate.commander_port == 0) {
      const auto source_it = hosts_.find(consult.host);
      if (source_it != hosts_.end()) {
        escalate.commander_port = source_it->second.commander_port;
      }
    }
    send_to(config_.parent_host, config_.parent_port, escalate, out_ctx);
    record(decision, "escalated");
    co_return;
  }
  if (!destination.has_value()) {
    // Top of the hierarchy with no local candidate: balance across child
    // domains using their health-report capacity counts.
    xmlproto::ConsultMsg routed = consult;
    routed.pid = process->pid;
    routed.process_name = process->name;
    routed.schema_name = process->schema_name;
    if (routed.origin_registry.empty()) {
      routed.origin_registry = host_->name();
    }
    if (routed.commander_port == 0) {
      const auto source_it = hosts_.find(consult.host);
      if (source_it != hosts_.end()) {
        routed.commander_port = source_it->second.commander_port;
      }
    }
    if (route_to_child(routed, out_ctx)) {
      decision.escalated = true;
      record(decision, "routed");
      co_return;
    }
    ARS_LOG_INFO("registry", "no destination for " << process->name
                                                   << " off "
                                                   << consult.host);
    record(decision, "no-destination");
    co_return;
  }
  decision.destination = *destination;

  const auto source_it = hosts_.find(consult.host);
  const auto dest_it = hosts_.find(*destination);
  int source_port =
      source_it != hosts_.end() ? source_it->second.commander_port : 0;
  if (source_port == 0) {
    source_port = consult.commander_port;
  }
  if (source_port == 0 || dest_it == hosts_.end()) {
    // Update-before-Register ghost source: no command path is known, and
    // a port-0 post would be dropped on the floor by the network.
    if (config_.metrics != nullptr) {
      config_.metrics->counter("registry.commands_unroutable").inc();
    }
    record(decision, "source-unreachable");
    co_return;
  }
  record(decision, "migrate");

  // Note the migration so the selector does not immediately re-choose it.
  const auto process_it =
      processes_.find(process_key(process->host, process->pid));
  if (process_it != processes_.end()) {
    process_it->second.last_migrated_at = now;
  }
  // In-flight debit until the source commander reports the outcome.
  debit_placement(process->name, *destination, process->schema_name);

  xmlproto::MigrateCmd command;
  command.pid = process->pid;
  command.process_name = process->name;
  command.dest_host = *destination;
  command.dest_ip = dest_it->second.info.ip;
  command.dest_port = dest_it->second.commander_port;
  command.schema_name = process->schema_name;
  ARS_LOG_INFO("registry", "decision: migrate " << process->name << " from "
                                                << consult.host << " to "
                                                << *destination);
  send_to(consult.host, source_port, command, out_ctx);
}

std::string Registry::decision_log() const {
  std::string out;
  out.reserve(decisions_.size() * 64);
  char stamp[32];
  for (const Decision& decision : decisions_) {
    std::snprintf(stamp, sizeof stamp, "%.6f", decision.at);
    out += stamp;
    out += ' ';
    out += decision.source;
    out += " -> ";
    out += decision.destination.empty() ? "-" : decision.destination;
    out += " pid=";
    out += std::to_string(decision.pid);
    out += " name=";
    out += decision.process_name;
    if (decision.escalated) {
      out += " escalated";
    }
    if (decision.restart) {
      out += " restart";
    }
    out += '\n';
  }
  return out;
}

}  // namespace ars::registry
