#include "ars/registry/registry.hpp"

#include <algorithm>

#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"

namespace ars::registry {

using rules::SystemState;
using xmlproto::ProtocolMessage;

namespace {

std::string process_key(const std::string& host, int pid) {
  return host + ":" + std::to_string(pid);
}

const char* strategy_name(DestinationStrategy strategy) {
  switch (strategy) {
    case DestinationStrategy::kFirstFit:
      return "first-fit";
    case DestinationStrategy::kBestFit:
      return "best-fit";
    case DestinationStrategy::kRandomFit:
      return "random-fit";
  }
  return "?";
}

/// The audit record as a trace event: one attribute per scanned host, so
/// the decision's full why-not trail is visible in the trace viewer.
void emit_decision_event(obs::Tracer* tracer, double now,
                         const std::string& track, const Decision& decision,
                         const std::string& kind) {
  if (tracer == nullptr) {
    return;
  }
  obs::Attrs attrs{{"kind", kind},
                   {"source", decision.source},
                   {"process", decision.process_name},
                   {"destination", decision.destination.empty()
                                       ? std::string("none")
                                       : decision.destination},
                   {"escalated", decision.escalated}};
  for (const CandidateAudit& candidate : decision.candidates) {
    attrs.push_back({"candidate." + candidate.host, candidate.reason});
  }
  tracer->instant_at(now, "scheduler.decision", "scheduler", track,
                     std::move(attrs));
}

}  // namespace

Registry::Registry(host::Host& h, net::Network& network, Config config)
    : host_(&h), network_(&network), config_(std::move(config)),
      rng_(config_.random_seed) {
  if (config_.port == 0) {
    config_.port = network_->allocate_port(host_->name());
  }
}

Registry::~Registry() { stop(); }

void Registry::start() {
  if (running_) {
    return;
  }
  running_ = true;
  endpoint_ = &network_->bind(host_->name(), config_.port);
  fibers_.push_back(sim::Fiber::spawn(host_->engine(), serve(),
                                      "registry.serve"));
  fibers_.push_back(sim::Fiber::spawn(host_->engine(), sweep(),
                                      "registry.sweep"));
  if (!config_.parent_host.empty()) {
    fibers_.push_back(sim::Fiber::spawn(host_->engine(), report_health(),
                                        "registry.health"));
  }
}

void Registry::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  for (auto& fiber : fibers_) {
    fiber.kill();
  }
  fibers_.clear();
  network_->unbind(host_->name(), config_.port);
  endpoint_ = nullptr;
}

void Registry::clear_soft_state() {
  hosts_.clear();
  processes_.clear();
  next_registration_order_ = 0;
}

void Registry::register_schema(const hpcm::ApplicationSchema& schema) {
  schemas_.insert_or_assign(schema.name(), schema);
}

std::optional<SystemState> Registry::host_state(
    const std::string& name) const {
  const auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    return std::nullopt;
  }
  return it->second.state;
}

void Registry::send_to(const std::string& dst_host, int dst_port,
                       const ProtocolMessage& message) {
  net::Message wire;
  wire.src_host = host_->name();
  wire.dst_host = dst_host;
  wire.dst_port = dst_port;
  wire.payload = xmlproto::encode(message);
  network_->post(std::move(wire));
}

sim::Task<> Registry::serve() {
  while (true) {
    const net::Message wire = co_await endpoint_->inbox.recv();
    auto message = xmlproto::decode(wire.payload);
    if (!message.has_value()) {
      ARS_LOG_WARN("registry", "undecodable message from "
                                   << wire.src_host << ": "
                                   << message.error().to_string());
      continue;
    }
    handle(*message, wire.src_host);
  }
}

void Registry::handle(const ProtocolMessage& message,
                      const std::string& from_host) {
  const double now = host_->engine().now();
  if (const auto* reg = std::get_if<xmlproto::RegisterMsg>(&message)) {
    HostEntry& entry = hosts_[reg->info.host];
    entry.info = reg->info;
    entry.monitor_port = reg->monitor_port;
    entry.commander_port = reg->commander_port;
    entry.last_update = now;
    if (entry.state == SystemState::kUnavailable) {
      entry.state = SystemState::kFree;
    }
    if (entry.registration_order == 0) {
      entry.registration_order = ++next_registration_order_;
    }
    ARS_LOG_INFO("registry", "registered host " << reg->info.host);
    return;
  }
  if (const auto* update = std::get_if<xmlproto::UpdateMsg>(&message)) {
    HostEntry& entry = hosts_[update->status.host];
    entry.status = update->status;
    entry.last_update = now;
    if (entry.registration_order == 0) {
      entry.registration_order = ++next_registration_order_;
    }
    const auto state = rules::state_from_string(update->status.state);
    entry.state = state.has_value() ? *state : SystemState::kBusy;
    return;
  }
  if (const auto* consult = std::get_if<xmlproto::ConsultMsg>(&message)) {
    std::erase_if(fibers_, [](const sim::Fiber& f) { return f.done(); });
    fibers_.push_back(sim::Fiber::spawn(
        host_->engine(), decide(consult->host, consult->reason),
        "registry.decide"));
    return;
  }
  if (const auto* preg = std::get_if<xmlproto::ProcessRegisterMsg>(&message)) {
    if (preg->migration_enabled) {
      ProcessEntry entry;
      entry.host = preg->host;
      entry.pid = preg->pid;
      entry.name = preg->name;
      entry.start_time = preg->start_time;
      entry.schema_name = preg->schema_name;
      processes_.insert_or_assign(process_key(preg->host, preg->pid),
                                  std::move(entry));
    }
    return;
  }
  if (const auto* dereg =
          std::get_if<xmlproto::ProcessDeregisterMsg>(&message)) {
    processes_.erase(process_key(dereg->host, dereg->pid));
    return;
  }
  if (const auto* evac = std::get_if<xmlproto::EvacuateMsg>(&message)) {
    request_evacuation(evac->host, evac->reason);
    return;
  }
  if (std::get_if<xmlproto::AckMsg>(&message) != nullptr) {
    return;  // commander acknowledgements: informational
  }
  if (std::get_if<xmlproto::HealthReportMsg>(&message) != nullptr) {
    return;  // child registry health: recorded implicitly by liveness
  }
  ARS_LOG_WARN("registry", "unhandled " << xmlproto::message_type(message)
                                        << " from " << from_host);
}

sim::Task<> Registry::sweep() {
  while (true) {
    co_await sim::delay(host_->engine(), config_.sweep_period);
    const double now = host_->engine().now();
    for (auto& [name, entry] : hosts_) {
      if (entry.state != SystemState::kUnavailable &&
          now - entry.last_update > config_.lease_ttl) {
        ARS_LOG_WARN("registry", "lease expired for host " << name);
        entry.state = SystemState::kUnavailable;
        if (config_.metrics != nullptr) {
          config_.metrics->counter("registry.lease_expirations").inc();
        }
        if (obs::active(config_.tracer)) {
          config_.tracer->instant(
              "registry.lease_expired", "scheduler", host_->name(),
              {{"host", name},
               {"silent_for", now - entry.last_update}});
        }
        if (config_.auto_restart) {
          restart_processes_of(name);
        }
      }
    }
  }
}

void Registry::restart_processes_of(const std::string& lost_host) {
  // Failure recovery: every process registered on the silent host is
  // relaunched elsewhere from its latest checkpoint.  The destination's
  // commander performs the relaunch; the lost host's entries are dropped.
  std::vector<ProcessEntry> lost;
  for (const auto& [key, entry] : processes_) {
    if (entry.host == lost_host) {
      lost.push_back(entry);
    }
  }
  for (const ProcessEntry& process : lost) {
    processes_.erase(process_key(process.host, process.pid));
    Decision decision;
    auto destination = choose_destination(lost_host, process.schema_name,
                                          &decision.candidates);
    decision.at = host_->engine().now();
    decision.source = lost_host;
    decision.pid = process.pid;
    decision.process_name = process.name;
    decision.restart = true;
    if (!destination.has_value()) {
      ARS_LOG_ERROR("registry", "no host to restart " << process.name
                                                      << " (lost with "
                                                      << lost_host << ")");
      decisions_.push_back(decision);
      emit_decision_event(config_.tracer, decision.at, host_->name(),
                          decision, "restart-stranded");
      continue;
    }
    decision.destination = *destination;
    decisions_.push_back(decision);
    emit_decision_event(config_.tracer, decision.at, host_->name(), decision,
                        "restart");
    if (config_.metrics != nullptr) {
      config_.metrics->counter("registry.restarts_commanded").inc();
    }
    const auto dest_it = hosts_.find(*destination);
    if (dest_it == hosts_.end()) {
      continue;
    }
    xmlproto::RelaunchCmd command;
    command.process_name = process.name;
    command.lost_host = lost_host;
    command.schema_name = process.schema_name;
    ARS_LOG_WARN("registry", "restarting " << process.name << " on "
                                           << *destination);
    send_to(*destination, dest_it->second.commander_port, command);
  }
}

sim::Task<> Registry::report_health() {
  while (true) {
    co_await sim::delay(host_->engine(), config_.health_report_period);
    xmlproto::HealthReportMsg report;
    report.registry_host = host_->name();
    report.timestamp = host_->engine().now();
    for (const auto& [name, entry] : hosts_) {
      switch (entry.state) {
        case SystemState::kFree:
          ++report.free_hosts;
          break;
        case SystemState::kBusy:
          ++report.busy_hosts;
          break;
        case SystemState::kOverloaded:
          ++report.overloaded_hosts;
          break;
        case SystemState::kUnavailable:
          break;
      }
    }
    send_to(config_.parent_host, config_.parent_port, report);
  }
}

const ProcessEntry* Registry::select_process(const std::string& source_host) {
  // "The registry/scheduler tends to migrate a process that has the latest
  // completing time to reduce the possibility of migrating multiple
  // processes."  Estimated completion = start time + schema estimate.
  const double now = host_->engine().now();
  const ProcessEntry* best = nullptr;
  double best_completion = -1.0;
  for (auto& [key, entry] : processes_) {
    if (entry.host != source_host) {
      continue;
    }
    if (now - entry.last_migrated_at < config_.per_process_cooldown) {
      continue;
    }
    double est_exec = 0.0;
    const auto schema_it = schemas_.find(entry.schema_name);
    if (schema_it != schemas_.end()) {
      // Data-locality consideration (paper 5.3): a process that depends
      // heavily on host-local data is not migrated.
      if (schema_it->second.data_locality() >= config_.locality_threshold) {
        continue;
      }
      est_exec = schema_it->second.est_exec_time();
    }
    const double completion = entry.start_time + est_exec;
    if (best == nullptr || completion > best_completion) {
      best = &entry;
      best_completion = completion;
    }
  }
  return best;
}

std::vector<const HostEntry*> Registry::eligible_destinations(
    const std::string& source_host, const std::string& schema_name,
    std::vector<CandidateAudit>* audit) const {
  const hpcm::ApplicationSchema* schema = nullptr;
  const auto schema_it = schemas_.find(schema_name);
  if (schema_it != schemas_.end()) {
    schema = &schema_it->second;
  }
  std::vector<const HostEntry*> ordered;
  ordered.reserve(hosts_.size());
  for (const auto& [name, entry] : hosts_) {
    ordered.push_back(&entry);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const HostEntry* a, const HostEntry* b) {
              return a->registration_order < b->registration_order;
            });
  const auto reject = [audit](const HostEntry* entry, std::string reason) {
    if (audit != nullptr) {
      audit->push_back({entry->info.host, false, std::move(reason)});
    }
  };
  std::vector<const HostEntry*> eligible;
  for (const HostEntry* entry : ordered) {
    if (entry->info.host == source_host) {
      reject(entry, "source host");
      continue;
    }
    if (entry->draining) {
      reject(entry, "draining (evacuated)");
      continue;
    }
    if (!rules::actions_for(entry->state).migrate_in) {
      // only `free` hosts accept incoming applications
      reject(entry,
             "state=" + std::string(rules::to_string(entry->state)) +
                 " (not free)");
      continue;
    }
    if (!config_.policy.accepts_destination(entry->status)) {
      reject(entry, "policy destination conditions");
      continue;
    }
    if (schema != nullptr) {
      const auto& req = schema->requirements();
      if (entry->info.memory_bytes < req.min_memory_bytes ||
          entry->info.disk_bytes < req.min_disk_bytes ||
          entry->info.cpu_speed < req.min_cpu_speed) {
        reject(entry, "insufficient resources for schema " + schema_name);
        continue;
      }
    }
    if (audit != nullptr) {
      audit->push_back({entry->info.host, true, "eligible"});
    }
    eligible.push_back(entry);
  }
  return eligible;
}

std::optional<std::string> Registry::first_fit_destination(
    const std::string& source_host, const std::string& schema_name) {
  const auto eligible = eligible_destinations(source_host, schema_name);
  if (eligible.empty()) {
    return std::nullopt;
  }
  return eligible.front()->info.host;
}

std::optional<std::string> Registry::choose_destination(
    const std::string& source_host, const std::string& schema_name,
    std::vector<CandidateAudit>* audit) {
  const auto eligible =
      eligible_destinations(source_host, schema_name, audit);
  const auto finish = [&](const std::string& chosen) {
    if (audit != nullptr) {
      for (CandidateAudit& candidate : *audit) {
        if (!candidate.accepted) {
          continue;
        }
        candidate.reason = candidate.host == chosen
                               ? "chosen (" +
                                     std::string(strategy_name(
                                         config_.strategy)) +
                                     ")"
                               : "eligible (not chosen)";
        candidate.accepted = candidate.host == chosen;
      }
    }
    return chosen;
  };
  if (eligible.empty()) {
    return std::nullopt;
  }
  switch (config_.strategy) {
    case DestinationStrategy::kFirstFit:
      return finish(eligible.front()->info.host);
    case DestinationStrategy::kBestFit: {
      // Least loaded (then least 5-min load as a tiebreak).
      const HostEntry* best = eligible.front();
      for (const HostEntry* entry : eligible) {
        if (entry->status.load1 < best->status.load1 ||
            (entry->status.load1 == best->status.load1 &&
             entry->status.load5 < best->status.load5)) {
          best = entry;
        }
      }
      return finish(best->info.host);
    }
    case DestinationStrategy::kRandomFit: {
      const auto index = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(eligible.size()) - 1));
      return finish(eligible[index]->info.host);
    }
  }
  return std::nullopt;
}

void Registry::request_evacuation(const std::string& host,
                                  const std::string& reason) {
  std::erase_if(fibers_, [](const sim::Fiber& f) { return f.done(); });
  fibers_.push_back(sim::Fiber::spawn(host_->engine(),
                                      evacuate(host, reason),
                                      "registry.evacuate"));
}

sim::Task<> Registry::evacuate(std::string drained_host, std::string reason) {
  co_await sim::delay(host_->engine(), config_.decision_delay);
  ARS_LOG_WARN("registry",
               "evacuating " << drained_host << " (" << reason << ")");
  if (config_.metrics != nullptr) {
    config_.metrics->counter("registry.evacuations").inc();
  }
  if (obs::active(config_.tracer)) {
    config_.tracer->instant("registry.evacuation", "scheduler",
                            host_->name(),
                            {{"host", drained_host}, {"reason", reason}});
  }
  // The host stops being a destination immediately and permanently
  // (heartbeats keep refreshing its state but not its draining mark).
  const auto host_it = hosts_.find(drained_host);
  if (host_it != hosts_.end()) {
    host_it->second.draining = true;
  }
  // Command every migration-enabled process off, each to its own first-fit
  // destination; placements interleave with the transfers, so re-evaluate
  // the candidate list per process.
  std::vector<ProcessEntry> targets;
  for (const auto& [key, entry] : processes_) {
    if (entry.host == drained_host) {
      targets.push_back(entry);
    }
  }
  for (const ProcessEntry& process : targets) {
    Decision decision;
    auto destination = choose_destination(drained_host, process.schema_name,
                                          &decision.candidates);
    decision.at = host_->engine().now();
    decision.source = drained_host;
    decision.pid = process.pid;
    decision.process_name = process.name;
    decision.decision_latency = config_.decision_delay;
    if (!destination.has_value()) {
      ARS_LOG_ERROR("registry", "evacuation: no destination for "
                                    << process.name << " - process stays");
      decisions_.push_back(decision);
      emit_decision_event(config_.tracer, decision.at, host_->name(),
                          decision, "evacuate-stranded");
      continue;
    }
    decision.destination = *destination;
    decisions_.push_back(decision);
    emit_decision_event(config_.tracer, decision.at, host_->name(), decision,
                        "evacuate");
    const auto source_it = hosts_.find(drained_host);
    const auto dest_it = hosts_.find(*destination);
    if (source_it == hosts_.end() || dest_it == hosts_.end()) {
      continue;
    }
    xmlproto::MigrateCmd command;
    command.pid = process.pid;
    command.process_name = process.name;
    command.dest_host = *destination;
    command.dest_ip = dest_it->second.info.ip;
    command.dest_port = dest_it->second.commander_port;
    command.schema_name = process.schema_name;
    send_to(drained_host, source_it->second.commander_port, command);
    ++evacuations_commanded_;
    // Give each migration a beat so the destinations' heartbeats can
    // reflect the newly placed work before the next placement.
    co_await sim::delay(host_->engine(), 1.0);
  }
}

sim::Task<> Registry::decide(std::string overloaded_host, std::string reason) {
  obs::Tracer* tracer = config_.tracer;
  const std::uint64_t decide_span =
      obs::active(tracer)
          ? tracer->begin_span("scheduler.decide", "scheduler", host_->name(),
                               {{"source", overloaded_host},
                                {"reason", reason}})
          : 0;
  if (config_.metrics != nullptr) {
    config_.metrics->counter("scheduler.consults").inc();
  }
  const auto record = [this, tracer, decide_span](const Decision& decision,
                                                  const char* outcome) {
    decisions_.push_back(decision);
    if (config_.metrics != nullptr) {
      config_.metrics
          ->histogram("scheduler.decision_latency", {},
                      {1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1.0})
          .observe(decision.decision_latency);
      config_.metrics
          ->counter("scheduler.decisions", {{"outcome", outcome}})
          .inc();
    }
    if (obs::active(tracer)) {
      emit_decision_event(tracer, decision.at, host_->name(), decision,
                          outcome);
      tracer->end_span(decide_span, {{"outcome", outcome}});
    }
  };
  // The measured decision latency (~0.002 s in §5.2).
  co_await sim::delay(host_->engine(), config_.decision_delay);
  const double now = host_->engine().now();

  Decision decision;
  decision.at = now;
  decision.source = overloaded_host;
  decision.decision_latency = config_.decision_delay;

  const ProcessEntry* process = select_process(overloaded_host);
  if (process == nullptr) {
    ARS_LOG_INFO("registry", "consult from " << overloaded_host << " ("
                                             << reason
                                             << "): no migratable process");
    record(decision, "no-process");
    co_return;
  }
  decision.pid = process->pid;
  decision.process_name = process->name;

  auto destination = choose_destination(
      overloaded_host, process->schema_name, &decision.candidates);
  if (!destination.has_value() && !config_.parent_host.empty()) {
    // Hierarchical escalation: ask the parent registry.
    decision.escalated = true;
    xmlproto::ConsultMsg escalate;
    escalate.host = overloaded_host;
    escalate.reason = reason + " (escalated by " + host_->name() + ")";
    send_to(config_.parent_host, config_.parent_port, escalate);
    record(decision, "escalated");
    co_return;
  }
  if (!destination.has_value()) {
    ARS_LOG_INFO("registry", "no destination for " << process->name
                                                   << " off "
                                                   << overloaded_host);
    record(decision, "no-destination");
    co_return;
  }
  decision.destination = *destination;
  record(decision, "migrate");

  const auto source_it = hosts_.find(overloaded_host);
  const auto dest_it = hosts_.find(*destination);
  if (source_it == hosts_.end() || dest_it == hosts_.end()) {
    co_return;
  }
  // Note the migration so the selector does not immediately re-choose it.
  const auto process_it =
      processes_.find(process_key(process->host, process->pid));
  if (process_it != processes_.end()) {
    process_it->second.last_migrated_at = now;
  }

  xmlproto::MigrateCmd command;
  command.pid = process->pid;
  command.process_name = process->name;
  command.dest_host = *destination;
  command.dest_ip = dest_it->second.info.ip;
  command.dest_port = dest_it->second.commander_port;
  command.schema_name = process->schema_name;
  ARS_LOG_INFO("registry", "decision: migrate " << process->name << " from "
                                                << overloaded_host << " to "
                                                << *destination);
  send_to(overloaded_host, source_it->second.commander_port, command);
}

}  // namespace ars::registry
