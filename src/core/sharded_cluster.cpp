#include "ars/core/sharded_cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "ars/obs/json.hpp"
#include "ars/rules/policy.hpp"

namespace ars::core {

namespace {

std::size_t checked_shards(int shards) {
  if (shards < 1) {
    throw std::invalid_argument("ShardedCluster: shards must be >= 1");
  }
  return static_cast<std::size_t>(shards);
}

std::string worker_name(int index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "ws%06d", index);
  return buf;
}

constexpr int kRootPort = 5000;
constexpr int kChildPort = 5100;
constexpr int kCommanderPort = 6000;

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

ShardedCluster::ShardedCluster(ShardedClusterOptions options)
    : options_(std::move(options)),
      group_(checked_shards(options_.shards),
             sim::ShardGroup::Options{options_.cross_latency}) {
  if (options_.hosts < 1) {
    throw std::invalid_argument("ShardedCluster: hosts must be >= 1");
  }
  const std::size_t shard_count = group_.size();
  shards_.reserve(shard_count);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    shards_.push_back(std::make_unique<Shard>());
    build_shard(shard);
  }
  router_ = std::make_unique<net::ShardRouter>(
      group_, net::ShardRouter::Options{options_.cross_latency});
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    router_->attach(shard, *shards_[shard]->net);
  }
}

ShardedCluster::~ShardedCluster() {
  for (auto& shard : shards_) {
    if (shard && shard->net) {
      shard->net->set_fault_policy(nullptr);
    }
  }
}

void ShardedCluster::build_shard(std::size_t shard) {
  Shard& state = *shards_[shard];
  sim::Engine& engine = group_.engine(shard);
  const std::size_t shard_count = group_.size();

  state.tracer = std::make_unique<obs::Tracer>(
      obs::Tracer::Options{options_.trace_capacity, options_.tracing});
  state.tracer->set_clock([&engine] { return engine.now(); });
  state.metrics = std::make_unique<obs::MetricsRegistry>();

  net::Network::Options net_options;
  net_options.metrics = state.metrics.get();
  net_options.tracer = options_.tracing ? state.tracer.get() : nullptr;
  state.net = std::make_unique<net::Network>(engine, net_options);

  if (options_.message_loss > 0.0 &&
      options_.loss_until > options_.loss_from) {
    // Salt the stream per shard so each LossPolicy is single-writer and a
    // shard's verdicts do not depend on other shards' traffic volume.
    const std::uint64_t salt =
        options_.seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1));
    state.faults = std::make_unique<LossPolicy>(
        engine, options_.message_loss, options_.loss_from,
        options_.loss_until, salt);
    state.net->set_fault_policy(state.faults.get());
  }

  const rules::MigrationPolicy policy = rules::paper_policy2();

  // Block partition: host i lives on shard i*shards/hosts's inverse — each
  // shard owns the contiguous global range [lo, hi).
  const auto total = static_cast<std::size_t>(options_.hosts);
  const std::size_t lo = shard * total / shard_count;
  const std::size_t hi = (shard + 1) * total / shard_count;
  const int overloaded_pct =
      static_cast<int>(options_.overloaded_fraction * 100.0 + 0.5);
  const int busy_pct = static_cast<int>(options_.busy_fraction * 100.0 + 0.5);
  for (std::size_t i = lo; i < hi; ++i) {
    host::HostSpec spec;
    spec.name = worker_name(static_cast<int>(i));
    auto h = std::make_unique<host::Host>(engine, spec);
    // Static, deterministic load (never sampled — see header comment):
    // spread the overloaded/busy hosts evenly through every shard's range.
    const int pct = static_cast<int>(i % 100);
    double ambient = 0.2;  // free (satisfies policy2's load1 < 1.0)
    if (pct < overloaded_pct) {
      ambient = 2.6;  // past policy2's load1 > 2.0 trigger
    } else if (pct < overloaded_pct + busy_pct) {
      ambient = 1.5;  // fails the destination conditions -> busy
    }
    h->loadavg().set_ambient_runnable(ambient);
    state.net->attach(*h);
    state.hosts.push_back(std::move(h));
  }

  // Registry tier.  The monitors' target must be bound before their first
  // registration arrives; Registry::start() binds synchronously at setup
  // (virtual t = 0) and the earliest datagram lands one latency later.
  std::string registry_host_name;
  int registry_port = 0;
  if (options_.hierarchical) {
    registry_host_name = "reg" + std::to_string(shard);
    registry_port = kChildPort;
    host::HostSpec spec;
    spec.name = registry_host_name;
    auto h = std::make_unique<host::Host>(engine, spec);
    state.net->attach(*h);

    registry::Registry::Config config;
    config.port = kChildPort;
    config.policy = policy;
    config.parent_host = "root";
    config.parent_port = kRootPort;
    config.audit = registry::AuditMode::kOff;
    config.tracer = options_.tracing ? state.tracer.get() : nullptr;
    config.metrics = state.metrics.get();
    state.registry =
        std::make_unique<registry::Registry>(*h, *state.net, config);
    state.hosts.push_back(std::move(h));
  } else {
    registry_host_name = "root";
    registry_port = kRootPort;
  }

  if (shard == 0) {
    host::HostSpec spec;
    spec.name = "root";
    auto h = std::make_unique<host::Host>(engine, spec);
    state.net->attach(*h);

    registry::Registry::Config config;
    config.port = kRootPort;
    config.policy = policy;
    config.audit = registry::AuditMode::kOff;
    config.tracer = options_.tracing ? state.tracer.get() : nullptr;
    config.metrics = state.metrics.get();
    auto root =
        std::make_unique<registry::Registry>(*h, *state.net, config);
    if (options_.hierarchical) {
      state.root = std::move(root);
    } else {
      state.registry = std::move(root);  // the flat registry IS the root
    }
    state.hosts.push_back(std::move(h));
  }

  if (state.root != nullptr) {
    state.root->start();
  }
  if (state.registry != nullptr) {
    state.registry->start();
  }

  // Monitors on the worker hosts only (the registry hosts are unmanaged).
  const std::size_t workers = hi - lo;
  for (std::size_t w = 0; w < workers; ++w) {
    host::Host& h = *state.hosts[w];
    monitor::Monitor::Config config;
    config.registry_host = registry_host_name;
    config.registry_port = registry_port;
    config.commander_port = kCommanderPort;
    config.policy = policy;
    config.delta_heartbeats = options_.delta_heartbeats;
    config.tracer = options_.tracing ? state.tracer.get() : nullptr;
    config.metrics = state.metrics.get();
    auto m = std::make_unique<monitor::Monitor>(h, *state.net, config);
    // Stagger the start phase deterministically across the heartbeat
    // period.  Synchronized monitors would heartbeat in lockstep waves of
    // `hosts` simultaneous datagrams, and the network's fluid
    // bandwidth-sharing pays O(concurrent transfers) per datagram — a
    // quadratic blowup at 100k hosts.  Spread out, the in-flight set stays
    // O(1) and the fleet behaves like real machines booted minutes apart.
    const double phase =
        static_cast<double>(((lo + w) * 9973) % 10007) / 10007.0 * 10.0;
    monitor::Monitor* raw = m.get();
    engine.schedule_at(phase, [raw] { raw->start(); });
    if (w < static_cast<std::size_t>(options_.crash_hosts) &&
        options_.crash_until > options_.crash_at) {
      engine.schedule_at(options_.crash_at, [raw] { raw->stop(); });
      engine.schedule_at(options_.crash_until, [raw] { raw->start(); });
    }
    state.monitors.push_back(std::move(m));
  }
}

registry::Registry& ShardedCluster::root_registry() {
  Shard& shard0 = *shards_.front();
  return shard0.root != nullptr ? *shard0.root : *shard0.registry;
}

registry::Registry& ShardedCluster::shard_registry(std::size_t shard) {
  Shard& state = *shards_.at(shard);
  if (state.registry != nullptr) {
    return *state.registry;
  }
  return root_registry();  // flat mode: non-zero shards share the root
}

ShardedClusterReport ShardedCluster::run() {
  if (ran_) {
    throw std::logic_error("ShardedCluster::run: call at most once");
  }
  ran_ = true;
  group_.run_until(options_.duration);

  ShardedClusterReport report;
  report.epochs = group_.epochs();
  report.cross_messages = router_->forwarded();
  std::vector<const obs::Tracer*> tracers;
  obs::MetricsRegistry merged;
  for (std::size_t shard = 0; shard < group_.size(); ++shard) {
    const Shard& state = *shards_[shard];
    const std::uint64_t events = group_.engine(shard).events_executed();
    report.shard_events.push_back(events);
    report.events += events;
    report.final_now = std::max(report.final_now, group_.engine(shard).now());
    report.dropped += state.net->dropped_total();
    for (const auto& m : state.monitors) {
      report.consults += m->consults_sent();
    }
    if (state.registry != nullptr) {
      report.registered_hosts +=
          static_cast<int>(state.registry->hosts().size());
    }
    tracers.push_back(state.tracer.get());
    merged.merge_from(*state.metrics);
    report.trace_events += state.tracer->events().size();
  }
  report.merged_trace = obs::merged_jsonl(tracers);
  report.trace_hash = fnv1a(report.merged_trace);
  report.metrics_json = merged.to_json();
  return report;
}

support::Expected<ShardedClusterOptions> load_cluster_plan(
    const std::string& json_text) {
  auto parsed = obs::json_parse(json_text);
  if (!parsed) {
    return parsed.error();
  }
  const obs::JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return support::make_error("plan.not_object",
                               "cluster plan must be a JSON object");
  }
  ShardedClusterOptions options;
  const auto num = [&root](const char* key, double fallback) {
    const obs::JsonValue* value = root.find(key);
    return value != nullptr && value->is_number() ? value->as_number()
                                                  : fallback;
  };
  const auto flag = [&root](const char* key, bool fallback) {
    const obs::JsonValue* value = root.find(key);
    return value != nullptr && value->is_bool() ? value->as_bool() : fallback;
  };
  if (const obs::JsonValue* name = root.find("name");
      name != nullptr && name->is_string()) {
    options.name = name->as_string();
  }
  options.shards = static_cast<int>(num("shards", options.shards));
  options.hosts = static_cast<int>(num("hosts", options.hosts));
  options.duration = num("duration", options.duration);
  options.cross_latency = num("cross_latency", options.cross_latency);
  options.hierarchical = flag("hierarchical", options.hierarchical);
  options.delta_heartbeats =
      flag("delta_heartbeats", options.delta_heartbeats);
  options.seed = static_cast<std::uint64_t>(
      num("seed", static_cast<double>(options.seed)));
  options.busy_fraction = num("busy_fraction", options.busy_fraction);
  options.overloaded_fraction =
      num("overloaded_fraction", options.overloaded_fraction);
  options.message_loss = num("message_loss", options.message_loss);
  options.loss_from = num("loss_from", options.loss_from);
  options.loss_until = num("loss_until", options.loss_until);
  options.crash_hosts =
      static_cast<int>(num("crash_hosts", options.crash_hosts));
  options.crash_at = num("crash_at", options.crash_at);
  options.crash_until = num("crash_until", options.crash_until);
  options.tracing = flag("tracing", options.tracing);
  options.trace_capacity = static_cast<std::size_t>(num(
      "trace_capacity", static_cast<double>(options.trace_capacity)));
  if (options.shards < 1) {
    return support::make_error("plan.shards", "shards must be >= 1");
  }
  if (options.hosts < 1) {
    return support::make_error("plan.hosts", "hosts must be >= 1");
  }
  return options;
}

}  // namespace ars::core
