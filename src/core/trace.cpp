#include "ars/core/trace.hpp"

#include <cstdio>

namespace ars::core {

void TraceRecorder::start(double interval) {
  if (running_) {
    return;
  }
  running_ = true;
  interval_ = interval;
  timer_ = engine_->schedule_after(interval_, [this] { sample_all(); });
}

void TraceRecorder::stop() {
  running_ = false;
  timer_.cancel();
}

void TraceRecorder::sample_all() {
  const double now = engine_->now();
  for (const std::string& name : network_->host_names()) {
    host::Host* h = network_->find_host(name);
    if (h == nullptr) {
      continue;
    }
    TraceSample sample;
    sample.t = now;
    sample.host = name;
    sample.load1 = h->loadavg().one_minute();
    sample.load5 = h->loadavg().five_minute();
    sample.cpu_util = h->cpu_utilization(interval_);
    sample.tx_bps = network_->tx_rate_bps(name, interval_);
    sample.rx_bps = network_->rx_rate_bps(name, interval_);
    sample.processes = h->total_process_count();
    samples_.push_back(std::move(sample));
  }
  if (running_) {
    timer_ = engine_->schedule_after(interval_, [this] { sample_all(); });
  }
}

std::vector<TraceSample> TraceRecorder::series(const std::string& host) const {
  std::vector<TraceSample> out;
  for (const auto& sample : samples_) {
    if (sample.host == host) {
      out.push_back(sample);
    }
  }
  return out;
}

std::string TraceRecorder::to_csv() const {
  std::string out = "t,host,load1,load5,cpu_util,tx_bps,rx_bps,processes\n";
  char line[256];
  for (const auto& s : samples_) {
    std::snprintf(line, sizeof line, "%.3f,%s,%.4f,%.4f,%.4f,%.1f,%.1f,%d\n",
                  s.t, s.host.c_str(), s.load1, s.load5, s.cpu_util,
                  s.tx_bps, s.rx_bps, s.processes);
    out += line;
  }
  return out;
}

double TraceRecorder::mean(const std::string& host, double t0, double t1,
                           double TraceSample::* field) const {
  double sum = 0.0;
  int count = 0;
  for (const auto& sample : samples_) {
    if (sample.host == host && sample.t >= t0 && sample.t <= t1) {
      sum += sample.*field;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace ars::core
