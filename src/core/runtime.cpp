#include "ars/core/runtime.hpp"

#include <stdexcept>

#include "ars/support/log.hpp"

namespace ars::core {

ClusterConfig make_cluster(int host_count, rules::MigrationPolicy policy) {
  ClusterConfig config;
  config.policy = std::move(policy);
  for (int i = 1; i <= host_count; ++i) {
    host::HostSpec spec;
    spec.name = "ws" + std::to_string(i);
    config.hosts.push_back(std::move(spec));
  }
  config.ambient_runnable = 0.26;  // the paper's idle-host load average
  return config;
}

ReschedulerRuntime::ReschedulerRuntime(ClusterConfig config)
    : config_(std::move(config)), tracer_(config_.trace) {
  if (config_.hosts.empty()) {
    throw std::invalid_argument("cluster needs at least one host");
  }
  if (config_.registry_host.empty()) {
    config_.registry_host = config_.hosts.front().name;
  }
  tracer_.set_clock([this] { return engine_.now(); });
  config_.hpcm.tracer = &tracer_;
  config_.hpcm.metrics = &metrics_;
  config_.network.metrics = &metrics_;
  config_.network.tracer = &tracer_;
  network_ = std::make_unique<net::Network>(engine_, config_.network);
  for (const host::HostSpec& spec : config_.hosts) {
    hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
    host::Host& h = *hosts_.back();
    h.loadavg().set_ambient_runnable(config_.ambient_runnable);
    h.set_ambient_process_count(config_.ambient_processes);
    network_->attach(h);
    hosts_by_name_.emplace(h.name(), &h);
  }
  mpi_ = std::make_unique<mpi::MpiSystem>(engine_, *network_, config_.mpi);
  hpcm_ = std::make_unique<hpcm::MigrationEngine>(*mpi_, config_.hpcm);
  config_.malleable.tracer = &tracer_;
  config_.malleable.metrics = &metrics_;
  malleable_ = std::make_unique<malleable::MalleableEngine>(
      *mpi_, *network_, config_.malleable);

  registry::Registry::Config registry_config;
  registry_config.policy = config_.policy;
  registry_config.lease_ttl = config_.lease_ttl;
  registry_config.decision_delay = config_.decision_delay;
  registry_config.per_process_cooldown = config_.per_process_cooldown;
  registry_config.strategy = config_.strategy;
  registry_config.auto_restart = config_.auto_restart;
  registry_config.audit = config_.registry_audit;
  registry_config.use_legacy_scan = config_.registry_legacy_scan;
  registry_config.tracer = &tracer_;
  registry_config.metrics = &metrics_;
  registry_config.enable_resize = config_.enable_resize_planner;
  registry_config.resize_cooldown = config_.resize_cooldown;
  registry_config.max_expand_step = config_.max_expand_step;
  registry_config.enable_ckpt_io = config_.hpcm.ckpt_strategy == "cooperative";
  registry_config.ckpt_max_concurrent = config_.ckpt_max_concurrent;
  registry_config.ckpt_defer_retry = config_.ckpt_defer_retry;
  registry_config.ckpt_preempt_risk = config_.ckpt_preempt_risk;
  registry_config.ckpt_slot_ttl = config_.ckpt_slot_ttl;
  registry_config.job_hosts = [this](const std::string& job) {
    // A finished job holds no hosts; without this guard its last world
    // would read as occupied until the registry's entry ages out.
    if (malleable_->finished(job) || malleable_->failed(job)) {
      return std::vector<std::string>{};
    }
    return malleable_->rank_hosts(job);
  };
  registry_ = std::make_unique<registry::Registry>(
      host(config_.registry_host), *network_, registry_config);

  for (const auto& h : hosts_) {
    commander::Commander::Config commander_config;
    commander_config.registry_host = config_.registry_host;
    commander_config.registry_port = registry_->port();
    commander_config.retry_limit = config_.command_retry_limit;
    commander_config.retry_backoff = config_.command_retry_backoff;
    commander_config.tracer = &tracer_;
    commander_config.metrics = &metrics_;
    commanders_.emplace(h->name(), std::make_unique<commander::Commander>(
                                       *h, *network_, *hpcm_,
                                       commander_config));
    monitor::Monitor::Config monitor_config;
    monitor_config.registry_host = config_.registry_host;
    monitor_config.registry_port = registry_->port();
    monitor_config.commander_port = commanders_.at(h->name())->port();
    monitor_config.policy = config_.policy;
    monitor_config.cycle_cpu_cost = config_.monitor_cycle_cpu_cost;
    monitor_config.reregister_period = config_.monitor_reregister_period;
    monitor_config.delta_heartbeats = config_.monitor_delta_heartbeats;
    monitor_config.full_status_every = config_.monitor_full_status_every;
    monitor_config.tracer = &tracer_;
    monitor_config.metrics = &metrics_;
    monitors_.emplace(h->name(), std::make_unique<monitor::Monitor>(
                                     *h, *network_, monitor_config));
  }
  // Transactional-migration feedback loop: every terminal outcome is
  // forwarded to the registry by the SOURCE host's commander (the source
  // stays authoritative until commit, so its commander is the survivor
  // that can still speak for an aborted transaction).
  hpcm_->set_outcome_listener([this](const hpcm::MigrationOutcome& o) {
    const auto it = commanders_.find(o.source);
    if (it == commanders_.end()) {
      return;  // the registry's debit TTL covers the silence
    }
    xmlproto::MigrationOutcomeMsg msg;
    msg.process = o.process;
    msg.source = o.source;
    msg.destination = o.destination;
    msg.outcome = o.outcome;
    msg.reason = o.reason;
    msg.phase = o.phase;
    msg.precopy_rounds = o.precopy_rounds;
    msg.precopy_bytes = static_cast<std::uint64_t>(o.precopy_bytes);
    it->second->report_outcome(msg, o.trace);
  });
  // Same feedback loop for resizes: the job's ROOT host's commander is the
  // reporter (the root runs the transaction and survives every abort path).
  malleable_->set_outcome_listener([this](const malleable::ResizeOutcome& o) {
    const auto roots = malleable_->rank_hosts(o.job);
    const std::string root_host = roots.empty() ? "" : roots.front();
    const auto it = commanders_.find(root_host);
    if (it == commanders_.end()) {
      return;  // the registry's debit TTL covers the silence
    }
    xmlproto::ResizeOutcomeMsg msg;
    msg.job = o.job;
    msg.verb = malleable::verb_name(o.verb);
    msg.delta = o.delta;
    msg.outcome = o.outcome;
    msg.reason = o.reason;
    msg.phase = o.phase;
    msg.ranks_after = o.ranks_after;
    it->second->report_resize_outcome(msg, o.trace);
  });
  for (auto& [name, c] : commanders_) {
    c->set_malleable(malleable_.get());
  }
  // Cooperative checkpointing: the middleware's I/O requests ride to the
  // registry's scheduler through the requesting host's commander (same
  // fire-and-forget contract as outcome reports).  Periodic and "none"
  // strategies stay fully host-local, so the sender is only wired when the
  // scheduler is actually in the loop.
  if (config_.hpcm.ckpt_strategy == "cooperative") {
    hpcm_->set_ckpt_request_sender(
        [this](const hpcm::MigrationEngine::CkptIoRequest& r) {
          const auto it = commanders_.find(r.host);
          if (it == commanders_.end()) {
            return;  // host gone: the scheduler's slot TTL covers it
          }
          xmlproto::CkptIoRequestMsg msg;
          msg.host = r.host;
          msg.process = r.process;
          msg.verb = r.verb;
          msg.bytes = r.bytes;
          msg.risk = r.risk;
          it->second->send_ckpt_request(msg);
        });
  }
  trace_ = std::make_unique<TraceRecorder>(engine_, *network_);
  // Stamp log records with virtual time while this runtime is alive.
  support::Logger::global().set_clock([this] { return engine_.now(); });
  if (config_.forward_logs_to_trace) {
    log_bridge_ = std::make_unique<obs::LogBridge>(tracer_);
  }
}

ReschedulerRuntime::~ReschedulerRuntime() {
  log_bridge_.reset();
  support::Logger::global().set_clock(nullptr);
  // Entities hold fibers suspended on network endpoints; stop them before
  // members are torn down.
  for (auto& [name, m] : monitors_) {
    m->stop();
  }
  for (auto& [name, c] : commanders_) {
    c->stop();
  }
  if (registry_) {
    registry_->stop();
  }
}

host::Host& ReschedulerRuntime::host(const std::string& name) {
  const auto it = hosts_by_name_.find(name);
  if (it == hosts_by_name_.end()) {
    throw std::out_of_range("no such host: " + name);
  }
  return *it->second;
}

monitor::Monitor& ReschedulerRuntime::monitor_on(const std::string& name) {
  return *monitors_.at(name);
}

commander::Commander& ReschedulerRuntime::commander_on(
    const std::string& name) {
  return *commanders_.at(name);
}

std::vector<std::string> ReschedulerRuntime::host_names() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& h : hosts_) {
    names.push_back(h->name());
  }
  return names;
}

void ReschedulerRuntime::start_rescheduler() {
  if (rescheduler_running_) {
    return;
  }
  rescheduler_running_ = true;
  registry_->start();
  for (auto& [name, c] : commanders_) {
    c->start();
  }
  for (auto& [name, m] : monitors_) {
    m->start();
  }
}

void ReschedulerRuntime::evacuate_host(const std::string& host_name,
                                       const std::string& reason) {
  (void)host(host_name);  // validate
  registry_->request_evacuation(host_name, reason);
}

int ReschedulerRuntime::fail_host(const std::string& host_name) {
  (void)host(host_name);  // validate
  // The rescheduler entities on the host die with it: their heartbeats
  // stop, so the registry's soft-state lease lapses.
  monitors_.at(host_name)->stop();
  commanders_.at(host_name)->stop();
  if (rescheduler_running_ && host_name == config_.registry_host) {
    registry_->stop();  // a co-located registry dies too
  }
  const int lost = hpcm_->crash_host(host_name);
  return lost + malleable_->on_host_failed(host_name);
}

void ReschedulerRuntime::restart_host(const std::string& host_name) {
  (void)host(host_name);  // validate
  if (!rescheduler_running_) {
    return;
  }
  if (host_name == config_.registry_host) {
    restart_registry();
  }
  commanders_.at(host_name)->start();
  monitors_.at(host_name)->start();
}

void ReschedulerRuntime::crash_registry() { registry_->stop(); }

void ReschedulerRuntime::restart_registry() {
  // Cold restart: the soft-state tables did not survive; the paper's claim
  // is that heartbeats and periodic re-announcements rebuild them.
  registry_->clear_soft_state();
  registry_->start();
  if (obs::active(&tracer_)) {
    tracer_.instant("registry.cold_restart", "scheduler",
                    config_.registry_host, {});
  }
}

mpi::RankId ReschedulerRuntime::launch_app(
    const std::string& host_name, hpcm::MigrationEngine::MigratableApp app,
    const std::string& name, hpcm::ApplicationSchema schema) {
  registry_->register_schema(schema);
  return hpcm_->launch(host_name, std::move(app), name, std::move(schema));
}

std::vector<mpi::RankId> ReschedulerRuntime::launch_malleable_job(
    const malleable::JobSpec& spec, const std::vector<std::string>& hosts) {
  auto members = malleable_->launch(spec, hosts);
  registry_->register_malleable_job(
      spec.name, hosts.front(), static_cast<int>(hosts.size()),
      spec.min_ranks, spec.max_ranks, mpi::spawn_strategy_name(spec.strategy));
  return members;
}

}  // namespace ars::core
