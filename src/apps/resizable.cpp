#include "ars/apps/resizable.hpp"

#include <algorithm>

namespace ars::apps {

malleable::Workload resizable_stencil(const Stencil1D::Params& params,
                                      int blocks) {
  malleable::Workload workload;
  workload.blocks = std::max(1, blocks);
  // One block carries one former rank's slab of cells.
  workload.work_per_block =
      static_cast<double>(params.cells_per_rank) * params.work_per_cell;
  workload.bytes_per_block =
      static_cast<double>(params.cells_per_rank) * 8.0;  // doubles
  workload.iterations = params.iterations;
  // Halo exchange rides the per-iteration sync: two neighbors per block.
  workload.sync_bytes = 2.0 * params.halo_bytes;
  return workload;
}

malleable::Workload resizable_matmul(const MatMul::Params& params) {
  const int row_blocks = std::max(1, params.n / std::max(1, params.block_rows));
  const double n = params.n;
  const double br = params.block_rows;
  malleable::Workload workload;
  workload.blocks = row_blocks;
  // Total work 2n^3*wpf split over row-blocks x k-panels.
  workload.iterations = row_blocks;
  workload.work_per_block = 2.0 * n * br * br * params.work_per_flop;
  // A row block + C row block live with the owner.
  workload.bytes_per_block = 2.0 * br * n * 8.0;
  // The k-panel of B broadcast each iteration.
  workload.sync_bytes = br * n * 8.0;
  return workload;
}

}  // namespace ars::apps
