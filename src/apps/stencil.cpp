#include "ars/apps/stencil.hpp"

#include <numeric>

namespace ars::apps {

namespace {

constexpr int kTagLeft = 11;   // message travelling left (to rank-1)
constexpr int kTagRight = 12;  // message travelling right (to rank+1)

std::vector<double> initial_cells(const Stencil1D::Params& params,
                                  int rank) {
  std::vector<double> cells(static_cast<std::size_t>(params.cells_per_rank));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    // Deterministic, rank-dependent ramp with a discontinuity to smooth.
    cells[i] = static_cast<double>(rank) * 100.0 +
               static_cast<double>(i % 17);
  }
  return cells;
}

void jacobi_step(std::vector<double>& cells, double left_halo,
                 double right_halo) {
  std::vector<double> next(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double left = i == 0 ? left_halo : cells[i - 1];
    const double right = i + 1 == cells.size() ? right_halo : cells[i + 1];
    next[i] = 0.5 * cells[i] + 0.25 * (left + right);
  }
  cells = std::move(next);
}

}  // namespace

std::vector<double> Stencil1D::reference_sums(const Params& params,
                                              int ranks) {
  // Serial re-enactment of the distributed computation.
  std::vector<std::vector<double>> domains;
  domains.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    domains.push_back(initial_cells(params, r));
  }
  for (int it = 0; it < params.iterations; ++it) {
    std::vector<std::vector<double>> next = domains;
    for (int r = 0; r < ranks; ++r) {
      const double left_halo = r == 0 ? 0.0 : domains[r - 1].back();
      const double right_halo =
          r + 1 == ranks ? 0.0 : domains[r + 1].front();
      jacobi_step(next[static_cast<std::size_t>(r)], left_halo, right_halo);
    }
    domains = std::move(next);
  }
  std::vector<double> sums;
  sums.reserve(domains.size());
  for (const auto& d : domains) {
    sums.push_back(std::accumulate(d.begin(), d.end(), 0.0));
  }
  return sums;
}

hpcm::ApplicationSchema Stencil1D::schema(const Params& params,
                                          const std::string& name) {
  hpcm::ApplicationSchema schema{name};
  schema.set_characteristic(
      hpcm::AppCharacteristic::kCommunicationIntensive);
  schema.set_est_exec_time(total_work_per_rank(params));
  schema.set_est_comm_bytes(
      static_cast<std::uint64_t>(params.cells_per_rank) * 8);
  return schema;
}

hpcm::MigrationEngine::MigratableApp Stencil1D::make(
    Params params, std::vector<RankResult>* results) {
  return [params, results](mpi::Proc& proc,
                           hpcm::MigrationContext& ctx) -> sim::Task<> {
    const mpi::Comm world = proc.world();
    const int rank = proc.world_rank();
    const int size = world.size();

    std::vector<double> cells;
    std::int64_t iteration = 0;
    if (ctx.restored()) {
      cells = *ctx.state().get_doubles("cells");
      iteration = *ctx.state().get_int("iteration");
    } else {
      cells = initial_cells(params, rank);
    }
    ctx.on_save([&ctx, &cells, &iteration] {
      ctx.state().set_doubles("cells", cells);
      ctx.state().set_int("iteration", iteration);
    });

    const double step_work = total_work_per_rank(params) /
                             static_cast<double>(params.iterations);
    for (; iteration < params.iterations; ++iteration) {
      co_await ctx.poll_point();
      // Halo exchange: boundary values to the neighbours, non-blocking
      // sends so adjacent ranks cannot deadlock.
      mpi::Request send_left;
      mpi::Request send_right;
      if (rank > 0) {
        mpi::MpiMessage m;
        m.values = {cells.front()};
        send_left =
            proc.isend(world, rank - 1, kTagLeft, params.halo_bytes, m);
      }
      if (rank + 1 < size) {
        mpi::MpiMessage m;
        m.values = {cells.back()};
        send_right =
            proc.isend(world, rank + 1, kTagRight, params.halo_bytes, m);
      }
      double left_halo = 0.0;
      double right_halo = 0.0;
      if (rank > 0) {
        const mpi::MpiMessage m = co_await proc.recv(world, rank - 1,
                                                     kTagRight);
        left_halo = m.values.at(0);
      }
      if (rank + 1 < size) {
        const mpi::MpiMessage m = co_await proc.recv(world, rank + 1,
                                                     kTagLeft);
        right_halo = m.values.at(0);
      }
      co_await send_left.wait();
      co_await send_right.wait();

      co_await proc.compute(step_work);
      jacobi_step(cells, left_halo, right_halo);
    }

    RankResult& out = (*results)[static_cast<std::size_t>(rank)];
    out.finished = true;
    out.local_sum = std::accumulate(cells.begin(), cells.end(), 0.0);
    out.finished_on = proc.host().name();
    out.migrations = ctx.migrations();
  };
}

}  // namespace ars::apps
