#include "ars/apps/test_tree.hpp"

#include <algorithm>
#include <numeric>

namespace ars::apps {

namespace {

enum Phase : std::int64_t {
  kBuild = 0,
  kFill = 1,
  kSort = 2,
  kSum = 3,
  kDone = 4,
};

std::vector<double> make_values(const TestTree::Params& params) {
  support::Rng rng{params.seed};
  std::vector<double> values(
      static_cast<std::size_t>(TestTree::node_count(params)));
  for (double& v : values) {
    v = static_cast<double>(rng.uniform_int(0, 1'000'000));
  }
  return values;
}

double phase_work(const TestTree::Params& params, std::int64_t phase) {
  const double knodes =
      static_cast<double>(TestTree::node_count(params)) / 1000.0;
  switch (phase) {
    case kBuild:
      return knodes * params.build_work_per_knode;
    case kFill:
      return knodes * params.fill_work_per_knode;
    case kSort:
      return knodes * params.sort_work_per_knode;
    case kSum:
      return knodes * params.sum_work_per_knode;
    default:
      return 0.0;
  }
}

}  // namespace

double TestTree::expected_sum(const Params& params) {
  const auto values = make_values(params);
  return std::accumulate(values.begin(), values.end(), 0.0);
}

double TestTree::total_work(const Params& params) {
  return phase_work(params, kBuild) + phase_work(params, kFill) +
         phase_work(params, kSort) + phase_work(params, kSum);
}

hpcm::ApplicationSchema TestTree::schema(const Params& params,
                                         const std::string& name) {
  hpcm::ApplicationSchema schema{name};
  schema.set_characteristic(hpcm::AppCharacteristic::kComputeIntensive);
  schema.set_est_exec_time(total_work(params));
  const auto nodes = static_cast<std::uint64_t>(node_count(params));
  schema.set_est_comm_bytes(nodes * (8 + params.node_overhead_bytes));
  hpcm::ResourceRequirements req;
  req.min_memory_bytes = nodes * (8 + params.node_overhead_bytes);
  req.min_cpu_speed = 0.1;
  schema.set_requirements(req);
  return schema;
}

hpcm::MigrationEngine::MigratableApp TestTree::make(Params params,
                                                    Result* out) {
  return [params, out](mpi::Proc& proc,
                       hpcm::MigrationContext& ctx) -> sim::Task<> {
    // ---- live state (collected/restored around migrations) ---------------
    std::int64_t phase = kBuild;
    double done_in_phase = 0.0;  // reference-seconds completed in this phase
    std::vector<double> values;

    if (ctx.restored()) {
      phase = *ctx.state().get_int("phase");
      done_in_phase = *ctx.state().get_double("done_in_phase");
      values = *ctx.state().get_doubles("values");
    }
    ctx.on_save([&ctx, &phase, &done_in_phase, &values, &params] {
      ctx.state().set_int("phase", phase);
      ctx.state().set_double("done_in_phase", done_in_phase);
      ctx.state().set_doubles("values", values);
      // The node structures themselves (pointers, headers) move as bulk.
      ctx.state().set_opaque(
          "tree_nodes", static_cast<std::uint64_t>(node_count(params)) *
                            params.node_overhead_bytes);
    });

    // ---- phase executor: burn the phase's work in poll-point chunks ------
    const auto run_phase = [&](std::int64_t target) -> sim::Task<> {
      const double total = phase_work(params, target);
      while (done_in_phase < total) {
        co_await ctx.poll_point();
        const double chunk =
            std::min(params.chunk_work, total - done_in_phase);
        co_await proc.compute(chunk);
        done_in_phase += chunk;
      }
    };

    while (phase != kDone) {
      co_await run_phase(phase);
      // Phase complete: apply the real data operation, advance.
      switch (phase) {
        case kBuild:
          values.assign(static_cast<std::size_t>(node_count(params)), 0.0);
          break;
        case kFill:
          values = make_values(params);
          break;
        case kSort:
          std::sort(values.begin(), values.end());
          break;
        case kSum:
          out->sum = std::accumulate(values.begin(), values.end(), 0.0);
          break;
        default:
          break;
      }
      ++phase;
      done_in_phase = 0.0;
    }

    out->finished = true;
    out->sorted = std::is_sorted(values.begin(), values.end());
    out->finished_on = proc.host().name();
    out->finished_at = proc.system().engine().now();
    out->migrations = ctx.migrations();
  };
}

}  // namespace ars::apps
