#include "ars/apps/productivity.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ars/apps/resizable.hpp"
#include "ars/obs/json.hpp"
#include "ars/rules/policy.hpp"

namespace ars::apps {
namespace {

support::Error plan_error(const std::string& path, const std::string& what) {
  return support::make_error("plan", path + ": " + what);
}

// Workload presets for the named kinds; "custom" starts from the
// malleable::Workload defaults and takes overrides verbatim.
malleable::Workload preset_workload(const std::string& kind) {
  if (kind == "stencil") {
    return resizable_stencil(Stencil1D::Params{});
  }
  if (kind == "matmul") {
    return resizable_matmul(MatMul::Params{});
  }
  return malleable::Workload{};
}

support::Expected<double> number_field(const obs::JsonValue& value,
                                       const std::string& path) {
  if (!value.is_number()) {
    return plan_error(path, "expected a number");
  }
  return value.as_number();
}

}  // namespace

support::Expected<QueuePlan> load_queue_plan(const std::string& json_text) {
  auto parsed = obs::json_parse(json_text);
  if (!parsed) {
    return support::make_error("plan", "$: " + parsed.error().message);
  }
  const obs::JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return plan_error("$", "expected an object");
  }

  static const std::set<std::string> kTopKeys = {
      "hosts", "resize_cooldown", "max_expand_step", "jobs"};
  for (const auto& [key, value] : root.as_object()) {
    (void)value;
    if (!kTopKeys.contains(key)) {
      return plan_error("$." + key, "unknown key");
    }
  }

  QueuePlan plan;
  if (const obs::JsonValue* hosts = root.find("hosts")) {
    auto n = number_field(*hosts, "$.hosts");
    if (!n) return n.error();
    plan.hosts = static_cast<int>(n.value());
    if (plan.hosts < 1) return plan_error("$.hosts", "must be >= 1");
  }
  if (const obs::JsonValue* cooldown = root.find("resize_cooldown")) {
    auto n = number_field(*cooldown, "$.resize_cooldown");
    if (!n) return n.error();
    plan.resize_cooldown = n.value();
  }
  if (const obs::JsonValue* step = root.find("max_expand_step")) {
    auto n = number_field(*step, "$.max_expand_step");
    if (!n) return n.error();
    plan.max_expand_step = static_cast<int>(n.value());
  }

  const obs::JsonValue* jobs = root.find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    return plan_error("$.jobs", "expected an array of jobs");
  }

  static const std::set<std::string> kJobKeys = {
      "name",      "kind",          "arrival",         "initial_ranks",
      "min_ranks", "max_ranks",     "blocks",          "work_per_block",
      "bytes_per_block", "iterations", "sync_bytes"};

  int index = 0;
  for (const obs::JsonValue& entry : jobs->as_array()) {
    const std::string path = "$.jobs[" + std::to_string(index) + "]";
    ++index;
    if (!entry.is_object()) {
      return plan_error(path, "expected an object");
    }
    for (const auto& [key, value] : entry.as_object()) {
      (void)value;
      if (!kJobKeys.contains(key)) {
        return plan_error(path + "." + key, "unknown key");
      }
    }

    QueueJob job;
    const obs::JsonValue* name = entry.find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return plan_error(path + ".name", "required non-empty string");
    }
    job.name = name->as_string();
    if (const obs::JsonValue* kind = entry.find("kind")) {
      if (!kind->is_string()) {
        return plan_error(path + ".kind", "expected a string");
      }
      job.kind = kind->as_string();
    }
    if (job.kind != "stencil" && job.kind != "matmul" && job.kind != "custom") {
      return plan_error(path + ".kind",
                        "unknown kind '" + job.kind +
                            "' (stencil | matmul | custom)");
    }
    job.workload = preset_workload(job.kind);

    struct NumField {
      const char* key;
      double* target;
    };
    double arrival = job.arrival;
    double initial_ranks = job.initial_ranks;
    double min_ranks = job.min_ranks;
    double max_ranks = job.max_ranks;
    double blocks = job.workload.blocks;
    double iterations = job.workload.iterations;
    const NumField fields[] = {
        {"arrival", &arrival},
        {"initial_ranks", &initial_ranks},
        {"min_ranks", &min_ranks},
        {"max_ranks", &max_ranks},
        {"blocks", &blocks},
        {"work_per_block", &job.workload.work_per_block},
        {"bytes_per_block", &job.workload.bytes_per_block},
        {"iterations", &iterations},
        {"sync_bytes", &job.workload.sync_bytes},
    };
    for (const NumField& field : fields) {
      if (const obs::JsonValue* value = entry.find(field.key)) {
        auto n = number_field(*value, path + "." + field.key);
        if (!n) return n.error();
        *field.target = n.value();
      }
    }
    job.arrival = arrival;
    job.initial_ranks = static_cast<int>(initial_ranks);
    job.min_ranks = static_cast<int>(min_ranks);
    job.max_ranks = static_cast<int>(max_ranks);
    job.workload.blocks = static_cast<int>(blocks);
    job.workload.iterations = static_cast<int>(iterations);

    if (job.initial_ranks < 1 || job.workload.blocks < 1 ||
        job.workload.iterations < 1) {
      return plan_error(path, "ranks/blocks/iterations must be >= 1");
    }
    if (job.min_ranks > job.initial_ranks ||
        job.initial_ranks > job.max_ranks) {
      return plan_error(path,
                        "need min_ranks <= initial_ranks <= max_ranks");
    }
    plan.jobs.push_back(std::move(job));
  }
  if (plan.jobs.empty()) {
    return plan_error("$.jobs", "at least one job required");
  }
  return plan;
}

CampaignResult run_queue(const QueuePlan& plan, bool malleability,
                         double deadline) {
  core::ClusterConfig config =
      core::make_cluster(plan.hosts, rules::paper_policy2());
  config.enable_resize_planner = malleability;
  config.resize_cooldown = plan.resize_cooldown;
  config.max_expand_step = plan.max_expand_step;
  core::ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();

  const std::vector<std::string> host_names = runtime.host_names();

  // Launch each job at its arrival on the emptiest hosts: count live ranks
  // of unfinished malleable jobs per host and fill least-loaded first (ties
  // break on host order, so placement is deterministic).
  for (const QueueJob& queued : plan.jobs) {
    runtime.engine().schedule_at(
        queued.arrival, [&runtime, &queued, &host_names] {
          std::map<std::string, int> occupancy;
          for (const std::string& host : host_names) {
            occupancy[host] = 0;
          }
          auto& malleable = runtime.malleable();
          for (const std::string& job : malleable.job_names()) {
            if (malleable.finished(job)) {
              continue;
            }
            for (const std::string& host : malleable.rank_hosts(job)) {
              ++occupancy[host];
            }
          }
          std::vector<std::string> ordered = host_names;
          std::stable_sort(ordered.begin(), ordered.end(),
                           [&occupancy](const std::string& a,
                                        const std::string& b) {
                             return occupancy[a] < occupancy[b];
                           });
          const int world =
              std::min<int>(queued.initial_ranks,
                            static_cast<int>(ordered.size()));
          ordered.resize(static_cast<std::size_t>(world));

          malleable::JobSpec spec;
          spec.name = queued.name;
          spec.workload = queued.workload;
          spec.min_ranks = queued.min_ranks;
          spec.max_ranks = queued.max_ranks;
          (void)runtime.launch_malleable_job(spec, ordered);
        });
  }

  double last_arrival = 0.0;
  for (const QueueJob& queued : plan.jobs) {
    last_arrival = std::max(last_arrival, queued.arrival);
  }

  // Step until every job has both launched and finished (all_finished() is
  // vacuously true before the first launch, hence the arrival guard).
  auto& malleable = runtime.malleable();
  while (runtime.engine().now() < deadline) {
    runtime.run_until(runtime.engine().now() + 1.0);
    if (runtime.engine().now() > last_arrival && malleable.all_finished() &&
        malleable.job_names().size() == plan.jobs.size()) {
      break;
    }
  }

  CampaignResult result;
  result.all_finished = malleable.all_finished() &&
                        malleable.job_names().size() == plan.jobs.size();
  for (const QueueJob& queued : plan.jobs) {
    const double at =
        malleable.finished(queued.name) ? malleable.finished_at(queued.name)
                                        : runtime.engine().now();
    result.finish_times.push_back(at);
    result.makespan = std::max(result.makespan, at);
  }
  double busy = 0.0;
  for (const std::string& host : host_names) {
    busy += runtime.host(host).cpu().cumulative_busy();
  }
  if (result.makespan > 0.0) {
    result.utilization =
        busy / (static_cast<double>(host_names.size()) * result.makespan);
  }
  result.resizes_commanded = runtime.scheduler().resizes_commanded();
  for (const malleable::ResizeOutcome& outcome : malleable.history()) {
    if (outcome.outcome == malleable::kCommitted) {
      ++result.resizes_committed;
    }
  }
  return result;
}

}  // namespace ars::apps
