#include "ars/apps/matmul.hpp"

#include <vector>

#include "ars/support/rng.hpp"

namespace ars::apps {

namespace {

void fill_inputs(const MatMul::Params& params, std::vector<double>& a,
                 std::vector<double>& b) {
  support::Rng rng{params.seed};
  const auto n = static_cast<std::size_t>(params.n);
  a.resize(n * n);
  b.resize(n * n);
  for (double& v : a) {
    v = rng.uniform(-1.0, 1.0);
  }
  for (double& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
}

void multiply_rows(const MatMul::Params& params, const std::vector<double>& a,
                   const std::vector<double>& b, std::vector<double>& c,
                   int row_begin, int row_end) {
  const int n = params.n;
  for (int i = row_begin; i < row_end; ++i) {
    for (int k = 0; k < n; ++k) {
      const double aik = a[static_cast<std::size_t>(i) * n + k];
      for (int j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(i) * n + j] +=
            aik * b[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
}

}  // namespace

double MatMul::expected_checksum(const Params& params) {
  std::vector<double> a;
  std::vector<double> b;
  fill_inputs(params, a, b);
  std::vector<double> c(a.size(), 0.0);
  multiply_rows(params, a, b, c, 0, params.n);
  double sum = 0.0;
  for (const double v : c) {
    sum += v;
  }
  return sum;
}

hpcm::ApplicationSchema MatMul::schema(const Params& params,
                                       const std::string& name) {
  hpcm::ApplicationSchema schema{name};
  schema.set_characteristic(hpcm::AppCharacteristic::kDataIntensive);
  schema.set_est_exec_time(total_work(params));
  const auto matrix_bytes =
      static_cast<std::uint64_t>(params.n) * params.n * 8;
  schema.set_est_comm_bytes(3 * matrix_bytes);
  hpcm::ResourceRequirements req;
  req.min_memory_bytes = 3 * matrix_bytes;
  schema.set_requirements(req);
  return schema;
}

hpcm::MigrationEngine::MigratableApp MatMul::make(Params params,
                                                  Result* out) {
  return [params, out](mpi::Proc& proc,
                       hpcm::MigrationContext& ctx) -> sim::Task<> {
    std::vector<double> a;
    std::vector<double> b;
    std::vector<double> c;
    std::int64_t next_row = 0;

    if (ctx.restored()) {
      a = *ctx.state().get_doubles("a");
      b = *ctx.state().get_doubles("b");
      c = *ctx.state().get_doubles("c");
      next_row = *ctx.state().get_int("next_row");
    } else {
      fill_inputs(params, a, b);
      c.assign(a.size(), 0.0);
    }
    ctx.on_save([&ctx, &a, &b, &c, &next_row] {
      ctx.state().set_doubles("a", a);
      ctx.state().set_doubles("b", b);
      ctx.state().set_doubles("c", c);
      ctx.state().set_int("next_row", next_row);
    });

    const double row_work =
        total_work(params) / static_cast<double>(params.n);
    while (next_row < params.n) {
      co_await ctx.poll_point();
      const int row_end = static_cast<int>(
          std::min<std::int64_t>(next_row + params.block_rows, params.n));
      co_await proc.compute(row_work *
                            static_cast<double>(row_end - next_row));
      multiply_rows(params, a, b, c, static_cast<int>(next_row), row_end);
      next_row = row_end;
    }

    double sum = 0.0;
    for (const double v : c) {
      sum += v;
    }
    out->checksum = sum;
    out->finished = true;
    out->finished_on = proc.host().name();
    out->finished_at = proc.system().engine().now();
    out->migrations = ctx.migrations();
  };
}

}  // namespace ars::apps
