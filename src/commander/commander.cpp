#include "ars/commander/commander.hpp"

#include "ars/malleable/malleable.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"
#include "ars/xmlproto/messages.hpp"

namespace ars::commander {

Commander::Commander(host::Host& h, net::Network& network,
                     hpcm::MigrationEngine& middleware, Config config)
    : host_(&h),
      network_(&network),
      middleware_(&middleware),
      config_(config) {
  if (config_.port == 0) {
    config_.port = network_->allocate_port(host_->name());
  }
}

Commander::~Commander() { stop(); }

void Commander::start() {
  if (running_) {
    return;
  }
  running_ = true;
  endpoint_ = &network_->bind(host_->name(), config_.port);
  fiber_ = sim::Fiber::spawn(host_->engine(), serve(),
                             "commander." + host_->name());
}

void Commander::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  fiber_.kill();
  for (auto& fiber : command_fibers_) {
    fiber.kill();
  }
  command_fibers_.clear();
  network_->unbind(host_->name(), config_.port);
  endpoint_ = nullptr;
}

void Commander::report_outcome(const xmlproto::MigrationOutcomeMsg& outcome,
                               obs::TraceCtx ctx) {
  if (!running_ || config_.registry_host.empty()) {
    return;  // the registry's debit TTL covers lost reports
  }
  if (config_.metrics != nullptr) {
    config_.metrics
        ->counter("commander.outcomes_reported",
                  {{"outcome", outcome.outcome}})
        .inc();
  }
  net::Message report;
  report.src_host = host_->name();
  report.dst_host = config_.registry_host;
  report.dst_port = config_.registry_port;
  report.payload = xmlproto::encode(xmlproto::ProtocolMessage{outcome}, ctx);
  report.trace = ctx;
  network_->post(std::move(report));
}

void Commander::report_resize_outcome(const xmlproto::ResizeOutcomeMsg& outcome,
                                      obs::TraceCtx ctx) {
  if (!running_ || config_.registry_host.empty()) {
    return;  // the registry's debit TTL covers lost reports
  }
  if (config_.metrics != nullptr) {
    config_.metrics
        ->counter("commander.resize_outcomes_reported",
                  {{"outcome", outcome.outcome}})
        .inc();
  }
  net::Message report;
  report.src_host = host_->name();
  report.dst_host = config_.registry_host;
  report.dst_port = config_.registry_port;
  report.payload = xmlproto::encode(xmlproto::ProtocolMessage{outcome}, ctx);
  report.trace = ctx;
  network_->post(std::move(report));
}

void Commander::send_ckpt_request(const xmlproto::CkptIoRequestMsg& request,
                                  obs::TraceCtx ctx) {
  if (!running_ || config_.registry_host.empty()) {
    return;  // the scheduler's slot TTL / grant timeout cover the loss
  }
  if (config_.metrics != nullptr) {
    config_.metrics
        ->counter("commander.ckpt_requests", {{"verb", request.verb}})
        .inc();
  }
  net::Message report;
  report.src_host = host_->name();
  report.dst_host = config_.registry_host;
  report.dst_port = config_.registry_port;
  report.payload = xmlproto::encode(xmlproto::ProtocolMessage{request}, ctx);
  report.trace = ctx;
  network_->post(std::move(report));
}

void Commander::reject_resize(const xmlproto::ResizeCmd& command,
                              const std::string& reason, obs::TraceCtx ctx) {
  ++commands_failed_;
  ARS_LOG_WARN("commander", "rejecting " << command.verb << "("
                                         << command.job << ") on "
                                         << host_->name() << ": " << reason);
  xmlproto::ResizeOutcomeMsg outcome;
  outcome.job = command.job;
  outcome.verb = command.verb;
  outcome.delta = command.delta;
  outcome.outcome = "aborted";
  outcome.reason = reason;
  outcome.phase = "plan";
  outcome.ranks_after =
      malleable_ != nullptr ? malleable_->ranks(command.job) : 0;
  report_resize_outcome(outcome, ctx);
}

sim::Task<> Commander::serve() {
  while (true) {
    const net::Message wire = co_await endpoint_->inbox.recv();
    auto envelope = xmlproto::decode_envelope(wire.payload);
    if (!envelope.has_value()) {
      ARS_LOG_WARN("commander", "undecodable message from " << wire.src_host);
      continue;
    }
    auto& message = envelope->message;
    const obs::TraceCtx ctx = envelope->trace;
    if (const auto* relaunch =
            std::get_if<xmlproto::RelaunchCmd>(&message)) {
      // Failure recovery: bring a process lost with its host back to life
      // here, from its latest checkpoint if one exists.
      const mpi::RankId id =
          middleware_->relaunch(relaunch->process_name, host_->name(), ctx);
      if (config_.tracer != nullptr) {
        obs::Attrs attrs{{"process", relaunch->process_name},
                         {"lost_host", relaunch->lost_host},
                         {"ok", id != 0}};
        obs::stamp(attrs, ctx);
        config_.tracer->instant("commander.relaunch", "commander",
                                host_->name(), std::move(attrs));
      }
      if (config_.metrics != nullptr) {
        config_.metrics
            ->counter("commander.relaunches",
                      {{"ok", id != 0 ? "true" : "false"}})
            .inc();
      }
      if (id == 0) {
        ARS_LOG_WARN("commander", "relaunch of unknown process "
                                      << relaunch->process_name << " on "
                                      << host_->name());
        // A relaunch for a process the cluster-wide middleware saw run to
        // completion is stale (a falsely expired lease raced a normal
        // exit): tell the registry to abandon the retry instead of
        // re-commanding it every sweep until the end of time.  The ack may
        // be lost; the next retry produces another one.
        if (middleware_->exited_normally(relaunch->process_name) &&
            !config_.registry_host.empty()) {
          xmlproto::AckMsg ack;
          ack.of = "relaunch";
          ack.ok = false;
          ack.detail = "exited:" + relaunch->process_name;
          net::Message reply;
          reply.src_host = host_->name();
          reply.dst_host = config_.registry_host;
          reply.dst_port = config_.registry_port;
          reply.payload =
              xmlproto::encode(xmlproto::ProtocolMessage{ack}, ctx);
          reply.trace = ctx;
          network_->post(std::move(reply));
        }
      } else {
        ARS_LOG_INFO("commander", host_->name() << " relaunched "
                                                << relaunch->process_name
                                                << " (lost with "
                                                << relaunch->lost_host << ")");
      }
      continue;
    }
    if (const auto* resize = std::get_if<xmlproto::ResizeCmd>(&message)) {
      // Malleability: forward the resize to the engine; it takes effect at
      // the job's next poll-point and reports its own terminal outcome.
      ++commands_received_;
      if (config_.metrics != nullptr) {
        config_.metrics
            ->counter("commander.resizes_received", {{"verb", resize->verb}})
            .inc();
      }
      const auto verb = malleable::verb_from(resize->verb);
      if (malleable_ == nullptr || !verb.has_value()) {
        reject_resize(*resize,
                      malleable_ == nullptr ? "no malleable engine"
                                            : "unknown verb",
                      ctx);
        continue;
      }
      std::optional<mpi::SpawnStrategy> strategy;
      if (!resize->strategy.empty()) {
        strategy = mpi::spawn_strategy_from(resize->strategy);
      }
      const bool queued = malleable_->request_resize(
          resize->job, *verb, resize->delta, resize->hosts, strategy, ctx);
      if (config_.tracer != nullptr) {
        obs::Attrs attrs{{"job", resize->job},
                         {"verb", resize->verb},
                         {"delta", static_cast<double>(resize->delta)},
                         {"queued", queued}};
        obs::stamp(attrs, ctx);
        config_.tracer->instant("commander.resize", "commander",
                                host_->name(), std::move(attrs));
      }
      if (!queued) {
        // Nothing will run, so nothing will report: close the loop here or
        // the registry's debits only lapse by TTL.  Distinguish "the job is
        // gone" (registry should stop planning for it) from "try again
        // later" (a resize is already pending).
        const bool gone = !malleable_->known(resize->job) ||
                          malleable_->finished(resize->job) ||
                          malleable_->failed(resize->job);
        reject_resize(*resize, gone ? "job-finished" : "busy", ctx);
      } else {
        ARS_LOG_INFO("commander", host_->name()
                                      << " queued " << resize->verb << "("
                                      << resize->job << ", " << resize->delta
                                      << ")");
      }
      continue;
    }
    if (const auto* grant = std::get_if<xmlproto::CkptIoGrantMsg>(&message)) {
      // Checkpoint I/O verdict from the registry's scheduler: hand it to
      // the middleware's per-process checkpoint plan.
      if (config_.metrics != nullptr) {
        config_.metrics
            ->counter("commander.ckpt_grants", {{"verb", grant->verb}})
            .inc();
      }
      middleware_->deliver_ckpt_grant(grant->process, grant->verb,
                                      grant->retry_after);
      continue;
    }
    const auto* command = std::get_if<xmlproto::MigrateCmd>(&message);
    if (command == nullptr) {
      ARS_LOG_WARN("commander", "unexpected "
                                    << xmlproto::message_type(message)
                                    << " from " << wire.src_host);
      continue;
    }
    ++commands_received_;
    if (config_.metrics != nullptr) {
      config_.metrics->counter("commander.commands_received").inc();
    }
    // Each command gets its own fiber so a retrying delivery does not block
    // the inbox (and stop() can cancel in-flight retries).
    std::erase_if(command_fibers_,
                  [](const sim::Fiber& f) { return f.done(); });
    command_fibers_.push_back(sim::Fiber::spawn(
        host_->engine(), handle_migrate(*command, ctx),
        "commander.migrate." + host_->name()));
  }
}

sim::Task<> Commander::handle_migrate(xmlproto::MigrateCmd command,
                                      obs::TraceCtx ctx) {
  // Temp file + user-defined signal; the poll-point does the rest.
  bool ok = middleware_->request_migration(host_->name(), command.pid,
                                           command.dest_host, ctx);
  if (config_.tracer != nullptr) {
    // Signal delivery: the commander wrote the destination temp file and
    // raised the user-defined signal at the migrating process.
    obs::Attrs attrs{{"pid", command.pid},
                     {"process", command.process_name},
                     {"destination", command.dest_host},
                     {"ok", ok}};
    obs::stamp(attrs, ctx);
    config_.tracer->instant("commander.signal", "commander", host_->name(),
                            std::move(attrs));
  }
  // Bounded retry: the command may have raced the process's launch or
  // relaunch; back off exponentially before giving up.
  double backoff = config_.retry_backoff;
  for (int attempt = 1; !ok && attempt <= config_.retry_limit; ++attempt) {
    co_await sim::delay(host_->engine(), backoff);
    backoff *= 2.0;
    ++commands_retried_;
    if (config_.metrics != nullptr) {
      config_.metrics->counter("commander.commands_retried").inc();
    }
    ok = middleware_->request_migration(host_->name(), command.pid,
                                        command.dest_host, ctx);
    if (config_.tracer != nullptr) {
      obs::Attrs attrs{{"pid", command.pid},
                       {"process", command.process_name},
                       {"attempt", attempt},
                       {"ok", ok}};
      obs::stamp(attrs, ctx);
      config_.tracer->instant("commander.retry", "commander", host_->name(),
                              std::move(attrs));
    }
    ARS_LOG_INFO("commander", host_->name() << " retry " << attempt
                                            << " for pid " << command.pid
                                            << (ok ? " succeeded"
                                                   : " failed"));
  }
  if (!ok) {
    ++commands_failed_;
    if (config_.metrics != nullptr) {
      config_.metrics->counter("commander.commands_failed").inc();
    }
    ARS_LOG_WARN("commander", "migrate command for unknown pid "
                                  << command.pid << " on " << host_->name());
  } else {
    ARS_LOG_INFO("commander", host_->name() << " signalled pid "
                                            << command.pid
                                            << " to migrate to "
                                            << command.dest_host);
  }
  if (!config_.registry_host.empty()) {
    xmlproto::AckMsg ack;
    ack.of = "migrate";
    ack.ok = ok;
    ack.detail = ok ? "" : "unknown pid";
    net::Message reply;
    reply.src_host = host_->name();
    reply.dst_host = config_.registry_host;
    reply.dst_port = config_.registry_port;
    reply.payload = xmlproto::encode(xmlproto::ProtocolMessage{ack}, ctx);
    reply.trace = ctx;
    network_->post(std::move(reply));
  }
}

}  // namespace ars::commander
