#include "ars/rules/policy.hpp"

#include <algorithm>
#include <sstream>

#include "ars/support/strings.hpp"

namespace ars::rules {

using support::Expected;
using support::make_error;
using support::parse_double;
using support::split;
using support::split_whitespace;
using support::trim;
using xmlproto::DynamicStatus;

Expected<Metric> metric_from_string(std::string_view name) {
  const std::string lowered = support::to_lower(name);
  if (lowered == "load1") return Metric::kLoad1;
  if (lowered == "load5") return Metric::kLoad5;
  if (lowered == "cpu_util") return Metric::kCpuUtil;
  if (lowered == "processes") return Metric::kProcesses;
  if (lowered == "mem_avail_pct") return Metric::kMemAvailablePct;
  if (lowered == "disk_avail") return Metric::kDiskAvailable;
  if (lowered == "net_in") return Metric::kNetIn;
  if (lowered == "net_out") return Metric::kNetOut;
  if (lowered == "net_flow") return Metric::kNetFlow;
  if (lowered == "sockets") return Metric::kSockets;
  return make_error("policy_parse",
                    "unknown metric '" + std::string(name) + "'");
}

std::string_view to_string(Metric metric) noexcept {
  switch (metric) {
    case Metric::kLoad1:
      return "load1";
    case Metric::kLoad5:
      return "load5";
    case Metric::kCpuUtil:
      return "cpu_util";
    case Metric::kProcesses:
      return "processes";
    case Metric::kMemAvailablePct:
      return "mem_avail_pct";
    case Metric::kDiskAvailable:
      return "disk_avail";
    case Metric::kNetIn:
      return "net_in";
    case Metric::kNetOut:
      return "net_out";
    case Metric::kNetFlow:
      return "net_flow";
    case Metric::kSockets:
      return "sockets";
  }
  return "?";
}

double metric_value(const DynamicStatus& status, Metric metric) noexcept {
  switch (metric) {
    case Metric::kLoad1:
      return status.load1;
    case Metric::kLoad5:
      return status.load5;
    case Metric::kCpuUtil:
      return status.cpu_util;
    case Metric::kProcesses:
      return static_cast<double>(status.processes);
    case Metric::kMemAvailablePct:
      return status.mem_available_pct;
    case Metric::kDiskAvailable:
      return static_cast<double>(status.disk_available);
    case Metric::kNetIn:
      return status.net_in_bps;
    case Metric::kNetOut:
      return status.net_out_bps;
    case Metric::kNetFlow:
      return std::max(status.net_in_bps, status.net_out_bps);
    case Metric::kSockets:
      return static_cast<double>(status.sockets_established);
  }
  return 0.0;
}

std::string MetricCondition::to_string() const {
  std::ostringstream out;
  out << rules::to_string(metric) << ' ' << rules::to_string(op) << ' '
      << threshold;
  return out.str();
}

bool MigrationPolicy::should_offload(const DynamicStatus& status) const {
  if (triggers_.empty()) {
    return false;  // Policy 1: never migrate
  }
  const bool triggered =
      std::any_of(triggers_.begin(), triggers_.end(),
                  [&](const MetricCondition& c) { return c.holds(status); });
  if (!triggered) {
    return false;
  }
  return std::all_of(source_gates_.begin(), source_gates_.end(),
                     [&](const MetricCondition& c) { return c.holds(status); });
}

bool MigrationPolicy::accepts_destination(const DynamicStatus& status) const {
  return std::all_of(dest_conditions_.begin(), dest_conditions_.end(),
                     [&](const MetricCondition& c) { return c.holds(status); });
}

std::string MigrationPolicy::to_text() const {
  std::ostringstream out;
  out << "policy: " << name_ << '\n';
  for (const auto& c : triggers_) {
    out << "trigger: " << c.to_string() << '\n';
  }
  for (const auto& c : source_gates_) {
    out << "gate: " << c.to_string() << '\n';
  }
  for (const auto& c : dest_conditions_) {
    out << "dest: " << c.to_string() << '\n';
  }
  out << "freq_free: " << frequencies_.free << '\n';
  out << "freq_busy: " << frequencies_.busy << '\n';
  out << "freq_overloaded: " << frequencies_.overloaded << '\n';
  out << "warmup: " << warmup_ << '\n';
  return out.str();
}

namespace {

Expected<MetricCondition> parse_condition(const std::string& text,
                                          std::size_t line_no) {
  const auto tokens = split_whitespace(text);
  if (tokens.size() != 3) {
    return make_error("policy_parse",
                      "line " + std::to_string(line_no) +
                          ": expected '<metric> <op> <threshold>', got '" +
                          text + "'");
  }
  MetricCondition condition;
  auto metric = metric_from_string(tokens[0]);
  if (!metric.has_value()) {
    return metric.error();
  }
  condition.metric = *metric;
  auto op = compare_op_from_string(tokens[1]);
  if (!op.has_value()) {
    return op.error();
  }
  condition.op = *op;
  const auto threshold = parse_double(tokens[2]);
  if (!threshold.has_value()) {
    return make_error("policy_parse", "line " + std::to_string(line_no) +
                                          ": threshold is not numeric: " +
                                          tokens[2]);
  }
  condition.threshold = *threshold;
  return condition;
}

}  // namespace

Expected<MigrationPolicy> parse_policy(std::string_view text) {
  MigrationPolicy policy;
  MigrationPolicy::Frequencies frequencies;
  bool named = false;
  std::size_t line_no = 0;
  for (const std::string& raw_line : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return make_error("policy_parse", "line " + std::to_string(line_no) +
                                            ": expected 'key: value'");
    }
    const std::string key{trim(line.substr(0, colon))};
    const std::string value{trim(line.substr(colon + 1))};
    if (key == "policy") {
      policy = MigrationPolicy{value};
      named = true;
    } else if (key == "trigger" || key == "gate" || key == "dest") {
      auto condition = parse_condition(value, line_no);
      if (!condition.has_value()) {
        return condition.error();
      }
      if (key == "trigger") {
        policy.add_trigger(*condition);
      } else if (key == "gate") {
        policy.add_source_gate(*condition);
      } else {
        policy.add_dest_condition(*condition);
      }
    } else if (key == "freq_free" || key == "freq_busy" ||
               key == "freq_overloaded" || key == "warmup") {
      const auto seconds = parse_double(value);
      if (!seconds.has_value() || *seconds < 0.0) {
        return make_error("policy_parse", "line " + std::to_string(line_no) +
                                              ": bad duration: " + value);
      }
      if (key == "freq_free") {
        frequencies.free = *seconds;
      } else if (key == "freq_busy") {
        frequencies.busy = *seconds;
      } else if (key == "freq_overloaded") {
        frequencies.overloaded = *seconds;
      } else {
        policy.set_warmup(*seconds);
      }
    } else {
      return make_error("policy_parse", "line " + std::to_string(line_no) +
                                            ": unknown key '" + key + "'");
    }
  }
  if (!named) {
    return make_error("policy_parse", "missing 'policy:' line");
  }
  policy.set_frequencies(frequencies);
  return policy;
}

MigrationPolicy paper_policy1() {
  MigrationPolicy policy{"policy1"};
  // No triggers: the application never migrates.
  return policy;
}

MigrationPolicy paper_policy2() {
  MigrationPolicy policy{"policy2"};
  policy.add_trigger({Metric::kLoad1, CompareOp::kGreater, 2.0});
  policy.add_trigger({Metric::kProcesses, CompareOp::kGreater, 150.0});
  policy.add_dest_condition({Metric::kLoad1, CompareOp::kLess, 1.0});
  policy.add_dest_condition({Metric::kProcesses, CompareOp::kLess, 100.0});
  return policy;
}

MigrationPolicy paper_policy3() {
  MigrationPolicy policy{"policy3"};
  policy.add_trigger({Metric::kLoad1, CompareOp::kGreater, 2.0});
  policy.add_trigger({Metric::kProcesses, CompareOp::kGreater, 150.0});
  policy.add_source_gate(
      {Metric::kNetFlow, CompareOp::kLessEqual, 5.0e6});
  policy.add_dest_condition({Metric::kLoad1, CompareOp::kLess, 1.0});
  policy.add_dest_condition({Metric::kProcesses, CompareOp::kLess, 100.0});
  policy.add_dest_condition(
      {Metric::kNetFlow, CompareOp::kLessEqual, 3.0e6});
  return policy;
}

}  // namespace ars::rules
