#include "ars/rules/state.hpp"

#include "ars/support/strings.hpp"

namespace ars::rules {

SystemState state_from_severity(double score, double busy_threshold,
                                double overld_threshold) {
  if (score >= overld_threshold) {
    return SystemState::kOverloaded;
  }
  if (score >= busy_threshold) {
    return SystemState::kBusy;
  }
  return SystemState::kFree;
}

std::string_view to_string(SystemState state) noexcept {
  switch (state) {
    case SystemState::kFree:
      return "free";
    case SystemState::kBusy:
      return "busy";
    case SystemState::kOverloaded:
      return "overloaded";
    case SystemState::kUnavailable:
      return "unavailable";
  }
  return "?";
}

std::string transition_label(SystemState from, SystemState to) {
  return std::string(to_string(from)) + "->" + std::string(to_string(to));
}

support::Expected<SystemState> state_from_string(std::string_view name) {
  if (support::iequals(name, "free")) return SystemState::kFree;
  if (support::iequals(name, "busy")) return SystemState::kBusy;
  if (support::iequals(name, "overloaded")) return SystemState::kOverloaded;
  if (support::iequals(name, "unavailable")) return SystemState::kUnavailable;
  return support::make_error("state_parse",
                             "unknown state '" + std::string(name) + "'");
}

}  // namespace ars::rules
