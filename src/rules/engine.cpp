#include "ars/rules/engine.hpp"

#include <algorithm>

namespace ars::rules {

using support::Expected;
using support::make_error;

Expected<double> MapSensorSource::sample(const std::string& script,
                                         const std::string& param) {
  const std::string keyed = param.empty() ? script : script + ":" + param;
  auto it = values_.find(keyed);
  if (it == values_.end()) {
    it = values_.find(script);  // fall back to the bare script name
  }
  if (it == values_.end()) {
    return make_error("sensor", "no reading for '" + keyed + "'");
  }
  return it->second;
}

Expected<RuleEngine> RuleEngine::create(std::vector<RuleSpec> specs,
                                        Options options) {
  RuleEngine engine;
  engine.options_ = options;
  engine.specs_ = std::move(specs);
  for (std::size_t i = 0; i < engine.specs_.size(); ++i) {
    const RuleSpec& spec = engine.specs_[i];
    if (engine.by_number_.contains(spec.number)) {
      return make_error("rule_engine", "duplicate rule number " +
                                           std::to_string(spec.number));
    }
    engine.by_number_.emplace(spec.number, i);
  }
  // Parse complex expressions and verify references.
  for (const RuleSpec& spec : engine.specs_) {
    if (spec.kind != RuleKind::kComplex) {
      continue;
    }
    auto expr = parse_expr(spec.script);
    if (!expr.has_value()) {
      return make_error("rule_engine",
                        "rule " + std::to_string(spec.number) + " (" +
                            spec.name + "): " + expr.error().message);
    }
    std::set<int> refs;
    (*expr)->collect_refs(refs);
    for (const int ref : refs) {
      if (!engine.by_number_.contains(ref)) {
        return make_error("rule_engine",
                          "rule " + std::to_string(spec.number) +
                              " references missing rule r" +
                              std::to_string(ref));
      }
    }
    engine.expressions_.emplace(spec.number, std::move(*expr));
  }
  // Cycle check: evaluate the reference graph with a DFS.
  std::set<int> visiting;
  std::set<int> done;
  std::function<Expected<bool>(int)> dfs = [&](int number) -> Expected<bool> {
    if (done.contains(number)) {
      return true;
    }
    if (!visiting.insert(number).second) {
      return make_error("rule_engine", "cyclic rule reference through r" +
                                           std::to_string(number));
    }
    const auto expr_it = engine.expressions_.find(number);
    if (expr_it != engine.expressions_.end()) {
      std::set<int> refs;
      expr_it->second->collect_refs(refs);
      for (const int ref : refs) {
        auto ok = dfs(ref);
        if (!ok.has_value()) {
          return ok;
        }
      }
    }
    visiting.erase(number);
    done.insert(number);
    return true;
  };
  for (const RuleSpec& spec : engine.specs_) {
    auto ok = dfs(spec.number);
    if (!ok.has_value()) {
      return ok.error();
    }
  }
  return engine;
}

Expected<RuleEngine> RuleEngine::create(std::vector<RuleSpec> specs) {
  return create(std::move(specs), Options{});
}

Expected<RuleEngine> RuleEngine::from_text(std::string_view rule_file_text,
                                           Options options) {
  auto specs = parse_rule_file(rule_file_text);
  if (!specs.has_value()) {
    return specs.error();
  }
  return create(std::move(*specs), options);
}

Expected<RuleEngine> RuleEngine::from_text(std::string_view rule_file_text) {
  return from_text(rule_file_text, Options{});
}

const RuleSpec* RuleEngine::find(int rule_number) const {
  const auto it = by_number_.find(rule_number);
  return it == by_number_.end() ? nullptr : &specs_[it->second];
}

Expected<double> RuleEngine::severity_of(int rule_number,
                                         SensorSource& sensors,
                                         std::set<int>& in_progress) const {
  const RuleSpec* spec = find(rule_number);
  if (spec == nullptr) {
    return make_error("rule_engine",
                      "no such rule r" + std::to_string(rule_number));
  }
  if (!in_progress.insert(rule_number).second) {
    return make_error("rule_engine", "cyclic evaluation through r" +
                                         std::to_string(rule_number));
  }
  Expected<double> result = [&]() -> Expected<double> {
    if (spec->kind == RuleKind::kSimple) {
      auto value = sensors.sample(spec->script, spec->param);
      if (!value.has_value()) {
        return value;
      }
      // Threshold semantics generalized from the paper's Rule 1 and Rule 2:
      // the overloaded comparison is checked first, then busy, else free.
      if (apply(spec->op, *value, spec->overld)) {
        return severity(SystemState::kOverloaded);
      }
      if (apply(spec->op, *value, spec->busy)) {
        return severity(SystemState::kBusy);
      }
      return severity(SystemState::kFree);
    }
    const auto expr_it = expressions_.find(rule_number);
    if (expr_it == expressions_.end()) {
      return make_error("rule_engine", "complex rule r" +
                                           std::to_string(rule_number) +
                                           " has no expression");
    }
    return expr_it->second->evaluate([&](int ref) -> Expected<double> {
      return severity_of(ref, sensors, in_progress);
    });
  }();
  in_progress.erase(rule_number);
  return result;
}

Expected<SystemState> RuleEngine::evaluate(int rule_number,
                                           SensorSource& sensors) const {
  std::set<int> in_progress;
  auto score = severity_of(rule_number, sensors, in_progress);
  if (!score.has_value()) {
    return score.error();
  }
  return state_from_severity(*score, options_.busy_threshold,
                             options_.overld_threshold);
}

std::vector<int> RuleEngine::top_level_rules() const {
  std::set<int> referenced;
  for (const auto& [number, expr] : expressions_) {
    expr->collect_refs(referenced);
  }
  std::vector<int> top;
  for (const RuleSpec& spec : specs_) {
    if (!referenced.contains(spec.number)) {
      top.push_back(spec.number);
    }
  }
  return top;
}

Expected<SystemState> RuleEngine::evaluate_all(SensorSource& sensors) const {
  double worst = 0.0;
  for (const int number : top_level_rules()) {
    std::set<int> in_progress;
    auto score = severity_of(number, sensors, in_progress);
    if (!score.has_value()) {
      return score.error();
    }
    worst = std::max(worst, *score);
  }
  return state_from_severity(worst, options_.busy_threshold,
                             options_.overld_threshold);
}

}  // namespace ars::rules
