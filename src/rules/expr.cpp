#include "ars/rules/expr.hpp"

#include <algorithm>
#include <cctype>
#include <utility>
#include <vector>

#include "ars/support/strings.hpp"

namespace ars::rules {

using support::Expected;
using support::make_error;

namespace {

using Lookup = std::function<Expected<double>(int)>;

class RuleRefExpr final : public Expr {
 public:
  explicit RuleRefExpr(int number) : number_(number) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kRuleRef; }
  [[nodiscard]] Expected<double> evaluate(const Lookup& lookup) const override {
    return lookup(number_);
  }
  void collect_refs(std::set<int>& refs) const override {
    refs.insert(number_);
  }
  [[nodiscard]] std::string to_string() const override {
    return "r" + std::to_string(number_);
  }

 private:
  int number_;
};

class NumberExpr final : public Expr {
 public:
  explicit NumberExpr(double value) : value_(value) {}
  [[nodiscard]] Kind kind() const noexcept override { return Kind::kNumber; }
  [[nodiscard]] Expected<double> evaluate(const Lookup&) const override {
    return value_;
  }
  void collect_refs(std::set<int>&) const override {}
  [[nodiscard]] std::string to_string() const override {
    return support::format_fixed(value_, 2);
  }

 private:
  double value_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(Kind op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] Kind kind() const noexcept override { return op_; }
  [[nodiscard]] Expected<double> evaluate(const Lookup& lookup) const override {
    auto lhs = lhs_->evaluate(lookup);
    if (!lhs.has_value()) {
      return lhs;
    }
    auto rhs = rhs_->evaluate(lookup);
    if (!rhs.has_value()) {
      return rhs;
    }
    switch (op_) {
      case Kind::kAdd:
        return *lhs + *rhs;
      case Kind::kMul:
        return *lhs * *rhs;
      case Kind::kAnd:
        return std::min(*lhs, *rhs);
      case Kind::kOr:
        return std::max(*lhs, *rhs);
      default:
        return make_error("expr_eval", "invalid binary op");
    }
  }
  void collect_refs(std::set<int>& refs) const override {
    lhs_->collect_refs(refs);
    rhs_->collect_refs(refs);
  }
  [[nodiscard]] std::string to_string() const override {
    const char* symbol = "?";
    switch (op_) {
      case Kind::kAdd:
        symbol = " + ";
        break;
      case Kind::kMul:
        symbol = " * ";
        break;
      case Kind::kAnd:
        symbol = " & ";
        break;
      case Kind::kOr:
        symbol = " | ";
        break;
      default:
        break;
    }
    std::string out = "(";
    out += lhs_->to_string();
    out += symbol;
    out += rhs_->to_string();
    out += ")";
    return out;
  }

 private:
  Kind op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  Expected<ExprPtr> parse() {
    auto expr = parse_or();
    if (!expr.has_value()) {
      return expr;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("unexpected trailing input");
    }
    return expr;
  }

 private:
  support::Error fail(const std::string& message) const {
    return make_error("expr_parse",
                      message + " (at offset " + std::to_string(pos_) + ")");
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() {
    skip_whitespace();
    return pos_ >= text_.size();
  }

  [[nodiscard]] char peek() { return text_[pos_]; }

  bool consume(char c) {
    if (eof() || peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  Expected<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.has_value()) {
      return lhs;
    }
    while (consume('|')) {
      auto rhs = parse_and();
      if (!rhs.has_value()) {
        return rhs;
      }
      lhs = ExprPtr{std::make_unique<BinaryExpr>(Expr::Kind::kOr,
                                                 std::move(*lhs),
                                                 std::move(*rhs))};
    }
    return lhs;
  }

  Expected<ExprPtr> parse_and() {
    auto lhs = parse_add();
    if (!lhs.has_value()) {
      return lhs;
    }
    while (consume('&')) {
      auto rhs = parse_add();
      if (!rhs.has_value()) {
        return rhs;
      }
      lhs = ExprPtr{std::make_unique<BinaryExpr>(Expr::Kind::kAnd,
                                                 std::move(*lhs),
                                                 std::move(*rhs))};
    }
    return lhs;
  }

  Expected<ExprPtr> parse_add() {
    auto lhs = parse_mul();
    if (!lhs.has_value()) {
      return lhs;
    }
    while (consume('+')) {
      auto rhs = parse_mul();
      if (!rhs.has_value()) {
        return rhs;
      }
      lhs = ExprPtr{std::make_unique<BinaryExpr>(Expr::Kind::kAdd,
                                                 std::move(*lhs),
                                                 std::move(*rhs))};
    }
    return lhs;
  }

  Expected<ExprPtr> parse_mul() {
    auto lhs = parse_factor();
    if (!lhs.has_value()) {
      return lhs;
    }
    while (consume('*')) {
      auto rhs = parse_factor();
      if (!rhs.has_value()) {
        return rhs;
      }
      lhs = ExprPtr{std::make_unique<BinaryExpr>(Expr::Kind::kMul,
                                                 std::move(*lhs),
                                                 std::move(*rhs))};
    }
    return lhs;
  }

  Expected<ExprPtr> parse_factor() {
    if (eof()) {
      return fail("expected rule reference, number or '('");
    }
    if (consume('(')) {
      auto inner = parse_or();
      if (!inner.has_value()) {
        return inner;
      }
      if (!consume(')')) {
        return fail("expected ')'");
      }
      return inner;
    }
    if (peek() == 'r' || peek() == 'R') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '_') {
        ++pos_;
      }
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      if (pos_ == start) {
        return fail("rule reference needs a number (rN or r_N)");
      }
      const auto number =
          support::parse_int(text_.substr(start, pos_ - start));
      return ExprPtr{std::make_unique<RuleRefExpr>(static_cast<int>(*number))};
    }
    if (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
        peek() == '.') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      const auto value = support::parse_double(text_.substr(start, pos_ - start));
      if (!value.has_value()) {
        return fail("malformed number");
      }
      double scaled = *value;
      if (pos_ < text_.size() && text_[pos_] == '%') {
        ++pos_;
        scaled /= 100.0;
      }
      return ExprPtr{std::make_unique<NumberExpr>(scaled)};
    }
    return fail(std::string("unexpected character '") + peek() + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<ExprPtr> parse_expr(std::string_view text) {
  return ExprParser{text}.parse();
}

}  // namespace ars::rules
