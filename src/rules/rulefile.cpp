#include "ars/rules/rulefile.hpp"

#include <sstream>

#include "ars/support/strings.hpp"

namespace ars::rules {

using support::Error;
using support::Expected;
using support::make_error;
using support::parse_double;
using support::parse_int;
using support::split;
using support::split_whitespace;
using support::trim;

Expected<CompareOp> compare_op_from_string(std::string_view token) {
  token = trim(token);
  if (token == "<") return CompareOp::kLess;
  if (token == ">") return CompareOp::kGreater;
  if (token == "<=") return CompareOp::kLessEqual;
  if (token == ">=") return CompareOp::kGreaterEqual;
  return make_error("rule_parse",
                    "unknown operator '" + std::string(token) + "'");
}

std::string_view to_string(CompareOp op) noexcept {
  switch (op) {
    case CompareOp::kLess:
      return "<";
    case CompareOp::kGreater:
      return ">";
    case CompareOp::kLessEqual:
      return "<=";
    case CompareOp::kGreaterEqual:
      return ">=";
  }
  return "?";
}

bool apply(CompareOp op, double lhs, double rhs) noexcept {
  switch (op) {
    case CompareOp::kLess:
      return lhs < rhs;
    case CompareOp::kGreater:
      return lhs > rhs;
    case CompareOp::kLessEqual:
      return lhs <= rhs;
    case CompareOp::kGreaterEqual:
      return lhs >= rhs;
  }
  return false;
}

namespace {

struct PendingRule {
  RuleSpec spec;
  bool has_number = false;
  bool has_operator = false;
  bool has_busy = false;
  bool has_overld = false;
};

Expected<RuleSpec> finalize(PendingRule pending) {
  RuleSpec& spec = pending.spec;
  const std::string where = "rule " + std::to_string(spec.number);
  if (!pending.has_number) {
    return make_error("rule_parse", "rule without rl_number");
  }
  if (spec.name.empty()) {
    return make_error("rule_parse", where + ": missing rl_name");
  }
  if (spec.script.empty()) {
    return make_error("rule_parse", where + ": missing rl_script");
  }
  if (spec.kind == RuleKind::kSimple) {
    if (!pending.has_operator) {
      return make_error("rule_parse", where + ": missing rl_operator");
    }
    if (!pending.has_busy || !pending.has_overld) {
      return make_error("rule_parse",
                        where + ": missing rl_busy or rl_overLd");
    }
  }
  // Complex rules need no operator/thresholds (paper: "need not be
  // specified"); rl_ruleNo is optional too, since the expression itself
  // names its inputs.
  return spec;
}

}  // namespace

Expected<std::vector<RuleSpec>> parse_rule_file(std::string_view text) {
  std::vector<RuleSpec> rules;
  std::optional<PendingRule> current;

  const auto flush = [&]() -> Expected<bool> {
    if (!current.has_value()) {
      return true;
    }
    auto spec = finalize(std::move(*current));
    current.reset();
    if (!spec.has_value()) {
      return spec.error();
    }
    rules.push_back(std::move(*spec));
    return true;
  };

  std::size_t line_no = 0;
  for (const std::string& raw_line : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return make_error("rule_parse", "line " + std::to_string(line_no) +
                                          ": expected 'rl_key: value'");
    }
    const std::string key{trim(line.substr(0, colon))};
    const std::string value{trim(line.substr(colon + 1))};

    if (key == "rl_number") {
      if (auto flushed = flush(); !flushed.has_value()) {
        return flushed.error();
      }
      const auto number = parse_int(value);
      if (!number.has_value()) {
        return make_error("rule_parse",
                          "line " + std::to_string(line_no) +
                              ": rl_number is not an integer: " + value);
      }
      current.emplace();
      current->spec.number = static_cast<int>(*number);
      current->has_number = true;
      continue;
    }
    if (!current.has_value()) {
      return make_error("rule_parse", "line " + std::to_string(line_no) +
                                          ": '" + key +
                                          "' before any rl_number");
    }
    RuleSpec& spec = current->spec;
    if (key == "rl_name") {
      spec.name = value;
    } else if (key == "rl_type") {
      if (support::iequals(value, "simple")) {
        spec.kind = RuleKind::kSimple;
      } else if (support::iequals(value, "complex")) {
        spec.kind = RuleKind::kComplex;
      } else {
        return make_error("rule_parse", "line " + std::to_string(line_no) +
                                            ": unknown rl_type: " + value);
      }
    } else if (key == "rl_script") {
      spec.script = value;
    } else if (key == "rl_desc") {
      spec.description = value;
    } else if (key == "rl_operator") {
      auto op = compare_op_from_string(value);
      if (!op.has_value()) {
        return op.error();
      }
      spec.op = *op;
      current->has_operator = true;
    } else if (key == "rl_param") {
      spec.param = value;
    } else if (key == "rl_busy") {
      const auto busy = parse_double(value);
      if (!busy.has_value()) {
        return make_error("rule_parse", "line " + std::to_string(line_no) +
                                            ": rl_busy is not numeric: " +
                                            value);
      }
      spec.busy = *busy;
      current->has_busy = true;
    } else if (key == "rl_overLd") {
      const auto overld = parse_double(value);
      if (!overld.has_value()) {
        return make_error("rule_parse", "line " + std::to_string(line_no) +
                                            ": rl_overLd is not numeric: " +
                                            value);
      }
      spec.overld = *overld;
      current->has_overld = true;
    } else if (key == "rl_ruleNo") {
      spec.rule_numbers.clear();
      for (const std::string& token : split_whitespace(value)) {
        const auto number = parse_int(token);
        if (!number.has_value()) {
          return make_error("rule_parse",
                            "line " + std::to_string(line_no) +
                                ": rl_ruleNo entry is not an integer: " +
                                token);
        }
        spec.rule_numbers.push_back(static_cast<int>(*number));
      }
    } else {
      return make_error("rule_parse", "line " + std::to_string(line_no) +
                                          ": unknown key '" + key + "'");
    }
  }
  if (auto flushed = flush(); !flushed.has_value()) {
    return flushed.error();
  }
  if (rules.empty()) {
    return make_error("rule_parse", "no rules in file");
  }
  return rules;
}

std::string to_rule_file(const std::vector<RuleSpec>& rules) {
  std::ostringstream out;
  for (const RuleSpec& spec : rules) {
    out << "rl_number: " << spec.number << '\n';
    out << "rl_name: " << spec.name << '\n';
    out << "rl_type: "
        << (spec.kind == RuleKind::kSimple ? "simple" : "complex") << '\n';
    out << "rl_script: " << spec.script << '\n';
    if (!spec.description.empty()) {
      out << "rl_desc: " << spec.description << '\n';
    }
    if (spec.kind == RuleKind::kSimple) {
      out << "rl_operator: " << to_string(spec.op) << '\n';
      out << "rl_param: " << spec.param << '\n';
      out << "rl_busy: " << spec.busy << '\n';
      out << "rl_overLd: " << spec.overld << '\n';
    } else if (!spec.rule_numbers.empty()) {
      out << "rl_ruleNo:";
      for (const int number : spec.rule_numbers) {
        out << ' ' << number;
      }
      out << '\n';
    }
    out << '\n';
  }
  return out.str();
}

std::string paper_figure3_text() {
  return "rl_number: 1\n"
         "rl_name: processorStatus\n"
         "rl_type: simple\n"
         "rl_script: processorStatus.sh\n"
         "rl_desc: This rule determines the processor status i.e. the idle "
         "time.\n"
         "rl_operator: <\n"
         "rl_param:\n"
         "rl_busy: 50\n"
         "rl_overLd: 45\n"
         "\n"
         "rl_number: 2\n"
         "rl_name: ntStatIpv4\n"
         "rl_type: simple\n"
         "rl_script: ntStatIpv4.sh\n"
         "rl_desc: This rule determines the number of sockets in a give "
         "state.\n"
         "rl_operator: >\n"
         "rl_param: ESTABLISHED\n"
         "rl_busy: 700\n"
         "rl_overLd: 900\n";
}

std::string paper_figure4_text() {
  return "rl_number: 5\n"
         "rl_name: cmp_rule\n"
         "rl_type: complex\n"
         "rl_desc: A Complex Rule.\n"
         "rl_ruleNo: 4 1 3 2\n"
         "rl_script: ( 40% * r_4 + 30% * r1 + 30% * r3 ) & r2\n";
}

}  // namespace ars::rules
