#include "ars/hpcm/schema.hpp"

#include "ars/support/strings.hpp"
#include "ars/xmlproto/xml.hpp"

namespace ars::hpcm {

using support::Expected;
using support::make_error;

std::string_view to_string(AppCharacteristic c) noexcept {
  switch (c) {
    case AppCharacteristic::kComputeIntensive:
      return "computing-intensive";
    case AppCharacteristic::kCommunicationIntensive:
      return "communication-intensive";
    case AppCharacteristic::kDataIntensive:
      return "data-intensive";
  }
  return "?";
}

Expected<AppCharacteristic> characteristic_from_string(
    std::string_view name) {
  if (support::iequals(name, "computing-intensive")) {
    return AppCharacteristic::kComputeIntensive;
  }
  if (support::iequals(name, "communication-intensive")) {
    return AppCharacteristic::kCommunicationIntensive;
  }
  if (support::iequals(name, "data-intensive")) {
    return AppCharacteristic::kDataIntensive;
  }
  return make_error("schema_parse",
                    "unknown characteristic '" + std::string(name) + "'");
}

void ApplicationSchema::record_execution(double actual_seconds) {
  ++observed_runs_;
  if (observed_runs_ == 1 && est_exec_time_ <= 0.0) {
    est_exec_time_ = actual_seconds;
    return;
  }
  // Exponential smoothing: history-weighted, as the paper's "updated
  // according to the statistics of actual executions".
  constexpr double kAlpha = 0.3;
  est_exec_time_ = (1.0 - kAlpha) * est_exec_time_ + kAlpha * actual_seconds;
}

std::string ApplicationSchema::to_xml() const {
  xmlproto::XmlNode root{"application_schema"};
  root.set_attr("name", name_);
  root.add_child("characteristic").set_text(std::string(to_string(characteristic_)));
  root.add_child("est_comm_bytes").set_text(std::to_string(est_comm_bytes_));
  root.add_child("est_exec_time")
      .set_text(support::format_fixed(est_exec_time_, 3));
  root.add_child("data_locality")
      .set_text(support::format_fixed(data_locality_, 3));
  root.add_child("observed_runs").set_text(std::to_string(observed_runs_));
  auto& req = root.add_child("requirements");
  req.add_child("min_memory").set_text(std::to_string(requirements_.min_memory_bytes));
  req.add_child("min_disk").set_text(std::to_string(requirements_.min_disk_bytes));
  req.add_child("min_cpu_speed")
      .set_text(support::format_fixed(requirements_.min_cpu_speed, 3));
  return root.to_string();
}

Expected<ApplicationSchema> ApplicationSchema::from_xml(
    std::string_view xml) {
  auto doc = xmlproto::parse_xml(xml);
  if (!doc.has_value()) {
    return doc.error();
  }
  const xmlproto::XmlNode& root = **doc;
  if (root.name() != "application_schema") {
    return make_error("schema_parse",
                      "unexpected root <" + root.name() + ">");
  }
  const auto name = root.attr("name");
  if (!name.has_value() || name->empty()) {
    return make_error("schema_parse", "missing name attribute");
  }
  ApplicationSchema schema{*name};
  auto characteristic = characteristic_from_string(
      root.child_text_or("characteristic", "computing-intensive"));
  if (!characteristic.has_value()) {
    return characteristic.error();
  }
  schema.set_characteristic(*characteristic);
  const auto comm =
      support::parse_int(root.child_text_or("est_comm_bytes", "0"));
  if (!comm.has_value() || *comm < 0) {
    return make_error("schema_parse", "bad est_comm_bytes");
  }
  schema.set_est_comm_bytes(static_cast<std::uint64_t>(*comm));
  const auto exec =
      support::parse_double(root.child_text_or("est_exec_time", "0"));
  if (!exec.has_value()) {
    return make_error("schema_parse", "bad est_exec_time");
  }
  schema.set_est_exec_time(*exec);
  const auto locality =
      support::parse_double(root.child_text_or("data_locality", "0"));
  if (!locality.has_value()) {
    return make_error("schema_parse", "bad data_locality");
  }
  schema.set_data_locality(*locality);
  const auto runs =
      support::parse_int(root.child_text_or("observed_runs", "0"));
  if (runs.has_value()) {
    schema.observed_runs_ = static_cast<int>(*runs);
  }
  if (const xmlproto::XmlNode* req = root.child("requirements")) {
    ResourceRequirements requirements;
    const auto memory =
        support::parse_int(req->child_text_or("min_memory", "0"));
    const auto disk = support::parse_int(req->child_text_or("min_disk", "0"));
    const auto speed =
        support::parse_double(req->child_text_or("min_cpu_speed", "0"));
    if (!memory.has_value() || !disk.has_value() || !speed.has_value()) {
      return make_error("schema_parse", "bad requirements block");
    }
    requirements.min_memory_bytes = static_cast<std::uint64_t>(*memory);
    requirements.min_disk_bytes = static_cast<std::uint64_t>(*disk);
    requirements.min_cpu_speed = *speed;
    schema.set_requirements(requirements);
  }
  return schema;
}

}  // namespace ars::hpcm
