#include "ars/hpcm/migration.hpp"

#include <algorithm>

#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"

namespace ars::hpcm {

namespace {

/// Tags on the merged communicator used by the migration protocol.
constexpr int kTagEagerState = 100;
constexpr int kTagReady = 101;

std::string migrate_key(host::Pid pid) {
  return "hpcm.migrate." + std::to_string(pid);
}

}  // namespace

MigrationEngine::MigrationEngine(mpi::MpiSystem& mpi)
    : MigrationEngine(mpi, Options{}) {}

MigrationEngine::MigrationEngine(mpi::MpiSystem& mpi, Options options)
    : mpi_(&mpi), options_(options) {}

MigrationEngine::~MigrationEngine() {
  for (auto& fiber : collector_fibers_) {
    fiber.kill();
  }
}

ApplicationSchema* MigrationEngine::schema(const std::string& name) {
  const auto it = schemas_.find(name);
  return it == schemas_.end() ? nullptr : &it->second;
}

mpi::RankId MigrationEngine::launch(const std::string& host_name,
                                    MigratableApp app,
                                    const std::string& name,
                                    ApplicationSchema schema) {
  return launch_world({host_name}, std::move(app), name, std::move(schema))
      .front();
}

std::vector<mpi::RankId> MigrationEngine::launch_world(
    const std::vector<std::string>& hosts, MigratableApp app,
    const std::string& name, ApplicationSchema schema) {
  schemas_.emplace(schema.name(), schema);
  const std::string schema_name = schema.name();
  // The wrapper resolves its ProcState lazily: fibers start through a
  // scheduled event, strictly after the map below is populated.
  auto wrapper = [this](mpi::Proc& proc) -> sim::Task<> {
    ProcState* state_ptr = procs_.at(proc.id()).get();
    co_await state_ptr->app(proc, state_ptr->context);
    finish_normal_exit(proc.id());
  };
  const std::vector<mpi::RankId> ids = mpi_->launch_world(
      hosts, wrapper, name, /*migration_enabled=*/true, schema_name);
  for (const mpi::RankId id : ids) {
    auto state = std::make_unique<ProcState>();
    state->app = app;
    state->context.engine_ = this;
    state->context.proc_ = mpi_->find(id);
    state->context.schema_name_ = schema_name;
    state->context.launched_at = mpi_->engine().now();
    procs_.emplace(id, std::move(state));
  }
  return ids;
}

void MigrationEngine::finish_normal_exit(mpi::RankId id) {
  const auto it = procs_.find(id);
  if (it == procs_.end()) {
    return;
  }
  MigrationContext& ctx = it->second->context;
  if (ApplicationSchema* s = schema(ctx.schema_name_)) {
    s->record_execution(mpi_->engine().now() - ctx.launched_at);
  }
  if (const mpi::Proc* proc = mpi_->find(id); proc != nullptr) {
    if (obs::Tracer* t = tracer(); obs::active(t)) {
      t->instant("process.exit", "hpcm", proc->name(),
                 {{"host", proc->host().name()},
                  {"migrations", ctx.migration_count_}});
    }
    if (obs::MetricsRegistry* m = metrics()) {
      m->counter("process.exits").inc();
    }
  }
  procs_.erase(it);
}

bool MigrationEngine::request_migration(const std::string& host_name,
                                        host::Pid pid,
                                        const std::string& dest_host) {
  mpi::Proc* proc = mpi_->find_by_pid(host_name, pid);
  if (proc == nullptr) {
    return false;
  }
  return request_migration(proc->id(), dest_host);
}

bool MigrationEngine::request_migration(mpi::RankId id,
                                        const std::string& dest_host) {
  const auto it = procs_.find(id);
  if (it == procs_.end()) {
    return false;
  }
  mpi::Proc* proc = mpi_->find(id);
  if (proc == nullptr) {
    return false;
  }
  // The commander's mechanism (§3.3): destination to a temp file, then the
  // user-defined signal.
  proc->host().tmpfiles().write(migrate_key(proc->pid()), dest_host);
  it->second->context.requested_at = mpi_->engine().now();
  const bool ok =
      proc->host().processes().raise(proc->pid(), host::kSigMigrate);
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("migration.requests").inc();
  }
  if (obs::Tracer* t = tracer(); obs::active(t) && ok) {
    // The signal span covers delivery -> the process reaching a poll-point.
    const auto open = signal_spans_.find(id);
    if (open != signal_spans_.end()) {
      t->end_span(open->second, {{"superseded", true}});
    }
    signal_spans_[id] = t->begin_span(
        "migration.signal", "hpcm", proc->name(),
        {{"source", proc->host().name()},
         {"dest", dest_host},
         {"pid", static_cast<int>(proc->pid())}});
  }
  return ok;
}

sim::Task<> MigrationContext::poll_point() {
  mpi::Proc& p = *proc_;
  if (!p.host().processes().consume_signal(p.pid(), host::kSigMigrate)) {
    co_return;
  }
  obs::Tracer* tracer = engine_->tracer();
  if (obs::active(tracer)) {
    // Close the signal-delivery span: the process reached its poll-point.
    const auto open = engine_->signal_spans_.find(p.id());
    if (open != engine_->signal_spans_.end()) {
      tracer->end_span(open->second);
      engine_->signal_spans_.erase(open);
    }
  }
  const std::string key = migrate_key(p.pid());
  if (!p.host().tmpfiles().contains(key)) {
    ARS_LOG_WARN("hpcm", "migration signal without destination file for "
                             << p.name());
    co_return;
  }
  std::uint64_t poll_span = 0;
  if (obs::active(tracer)) {
    poll_span = tracer->begin_span("migration.poll_point", "hpcm", p.name());
  }
  const std::string dest = p.host().tmpfiles().read(key);
  p.host().tmpfiles().erase(key);
  if (obs::active(tracer)) {
    tracer->end_span(poll_span, {{"dest", dest}});
  }
  try {
    co_await engine_->migrate(*this, dest);
  } catch (const mpi::ProcMoved&) {
    throw;  // normal migration unwind
  } catch (const std::exception& e) {
    // A failed migration must not kill the application; log and keep
    // computing on the source.
    ARS_LOG_ERROR("hpcm", "migration of " << p.name() << " to " << dest
                                          << " failed: " << e.what());
    if (obs::active(tracer)) {
      tracer->instant("migration.failed", "hpcm", p.name(),
                      {{"dest", dest}, {"error", std::string(e.what())}});
    }
    if (obs::MetricsRegistry* m = engine_->metrics()) {
      m->counter("migration.failures").inc();
    }
  }
}

sim::Task<> MigrationContext::checkpoint() {
  if (save_) {
    save_();
  }
  Checkpoint cp;
  cp.process = proc_->name();
  const auto encoded = state_.encode(proc_->host().spec().byte_order);
  cp.bytes = encoded.size() + state_.opaque_bytes();
  cp.state = encoded;
  auto& sim_engine = engine_->mpi().engine();
  const double write_time =
      static_cast<double>(cp.bytes) / engine_->options().checkpoint_store_bps;
  co_await sim::delay(sim_engine, write_time);
  cp.taken_at = sim_engine.now();
  engine_->checkpoints().put(std::move(cp));
}

bool MigrationEngine::crash(mpi::RankId id) {
  const auto it = procs_.find(id);
  mpi::Proc* proc = mpi_->find(id);
  if (it == procs_.end() || proc == nullptr) {
    return false;
  }
  const std::string name = proc->name();
  ARS_LOG_WARN("hpcm", "crash injected: " << name << " on "
                                          << proc->host().name());
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    t->instant("process.crash", "hpcm", name,
               {{"host", proc->host().name()}});
  }
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("process.crashes").inc();
  }
  auto state = std::move(it->second);
  procs_.erase(it);
  state->context.proc_ = nullptr;
  crashed_[name] = std::move(state);
  return mpi_->kill(id);
}

int MigrationEngine::crash_host(const std::string& host_name) {
  std::vector<mpi::RankId> victims;
  for (const auto& [id, state] : procs_) {
    const mpi::Proc* proc = mpi_->find(id);
    if (proc != nullptr && proc->host().name() == host_name) {
      victims.push_back(id);
    }
  }
  int crashed = 0;
  for (const mpi::RankId id : victims) {
    crashed += crash(id) ? 1 : 0;
  }
  return crashed;
}

mpi::RankId MigrationEngine::relaunch(const std::string& process_name,
                                      const std::string& host_name) {
  const auto it = crashed_.find(process_name);
  if (it == crashed_.end()) {
    return 0;
  }
  auto state = std::move(it->second);
  crashed_.erase(it);
  MigrationContext& ctx = state->context;

  double read_time = 0.0;
  if (const Checkpoint* cp = checkpoint_store_.latest(process_name)) {
    auto decoded = StateRegistry::decode(cp->state);
    if (decoded.has_value()) {
      ctx.state_ = std::move(*decoded);
      ctx.restored_ = true;
      ctx.restarted_from_checkpoint_ = true;
      read_time =
          static_cast<double>(cp->bytes) / options_.checkpoint_store_bps;
      ARS_LOG_INFO("hpcm", "relaunching " << process_name << " on "
                                          << host_name
                                          << " from checkpoint at t="
                                          << cp->taken_at);
    }
  } else {
    // No checkpoint: restart from scratch — "the loss of all partial
    // results" the paper's introduction warns about.
    ctx.state_.clear();
    ctx.restored_ = false;
    ctx.restarted_from_checkpoint_ = false;
    ARS_LOG_WARN("hpcm", "relaunching " << process_name << " on "
                                        << host_name << " from scratch");
  }

  auto wrapper = [this, read_time](mpi::Proc& proc) -> sim::Task<> {
    if (read_time > 0.0) {
      co_await sim::delay(mpi_->engine(), read_time);
    }
    ProcState* state_ptr = procs_.at(proc.id()).get();
    co_await state_ptr->app(proc, state_ptr->context);
    finish_normal_exit(proc.id());
  };
  const mpi::RankId id =
      mpi_->launch_exact(host_name, wrapper, process_name,
                         /*migration_enabled=*/true, ctx.schema_name_);
  state->context.proc_ = mpi_->find(id);
  const bool from_checkpoint = state->context.restarted_from_checkpoint_;
  procs_.emplace(id, std::move(state));
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    t->instant("process.relaunch", "hpcm", process_name,
               {{"host", host_name}, {"from_checkpoint", from_checkpoint}});
  }
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("process.relaunches",
               {{"from_checkpoint", from_checkpoint ? "yes" : "no"}})
        .inc();
  }
  return id;
}

/// Shared destination-side protocol, used by both spawned initialized
/// processes and pre-initialized daemons.  The eager message's `values`
/// carry [migrating rank id, timeline index].
sim::Task<> MigrationEngine::receiver_main(mpi::Proc& helper,
                                           mpi::Comm merged) {
  const mpi::MpiMessage eager =
      co_await helper.recv(merged, mpi::kAnySource, kTagEagerState);
  if (eager.values.size() != 2 || !eager.data) {
    throw std::runtime_error("hpcm: malformed eager state message");
  }
  const auto id = static_cast<mpi::RankId>(eager.values[0]);
  const auto timeline_index = static_cast<std::size_t>(eager.values[1]);
  auto decoded = StateRegistry::decode(*eager.data);
  if (!decoded.has_value()) {
    throw std::runtime_error("hpcm: state decode failed: " +
                             decoded.error().to_string());
  }
  // Data restoration cost before the application can resume.
  co_await sim::delay(helper.system().engine(), options_.restore_delay);
  takeover(id, helper.host(), std::move(*decoded), timeline_index);
  // Background restoration completes in parallel with the resumed app.
  (void)co_await helper.recv(merged, mpi::kAnySource, kTagReady);
  const MigrationTimeline& done = history_[timeline_index];
  history_[timeline_index].completed_at = helper.system().engine().now();
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    const auto spans = timeline_spans_.find(timeline_index);
    if (spans != timeline_spans_.end()) {
      t->end_span(spans->second.restore);
      t->end_span(spans->second.migration,
                  {{"succeeded", done.succeeded},
                   {"state_bytes", done.state_bytes}});
      timeline_spans_.erase(spans);
    }
  }
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("migration.completed").inc();
    m->histogram("migration.total_time").observe(done.total());
    m->histogram("migration.resume_latency").observe(done.resume_latency());
    m->histogram("migration.data_bytes",
                 {}, {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9})
        .observe(done.state_bytes);
  }
}

sim::Task<> MigrationEngine::migrate(MigrationContext& ctx,
                                     std::string dest_host) {
  mpi::Proc& proc = *ctx.proc_;
  auto& engine = mpi_->engine();
  net::Network& network = mpi_->network();
  const std::string source_host = proc.host().name();
  if (dest_host == source_host) {
    ARS_LOG_WARN("hpcm", "ignoring self-migration of " << proc.name());
    co_return;
  }
  if (network.find_host(dest_host) == nullptr) {
    throw std::out_of_range("hpcm: unknown destination host " + dest_host);
  }

  const std::size_t timeline_index = history_.size();
  history_.emplace_back();
  {
    MigrationTimeline& t = history_.back();
    t.process = proc.name();
    t.source = source_host;
    t.destination = dest_host;
    t.requested_at = ctx.requested_at;
    t.poll_point_at = engine.now();
  }
  ARS_LOG_INFO("hpcm", "migrating " << proc.name() << ": " << source_host
                                    << " -> " << dest_host);
  obs::Tracer* t = tracer();
  if (obs::active(t)) {
    TimelineSpans& spans = timeline_spans_[timeline_index];
    spans.migration = t->begin_span(
        "migration", "hpcm", proc.name(),
        {{"source", source_host}, {"dest", dest_host}});
  }

  // ---- 1. initialized process (MPI-2 DPM) ---------------------------------
  MigrationEngine* self = this;
  mpi::Comm merged;
  mpi::RankId helper_id = 0;
  const auto port_it = pre_initialized_.find(dest_host);
  const bool pre_init =
      port_it != pre_initialized_.end() && !port_it->second.empty();
  std::uint64_t spawn_span = 0;
  if (obs::active(t)) {
    spawn_span = t->begin_span(
        "migration.spawn", "hpcm", proc.name(),
        {{"dest", dest_host},
         {"mechanism", pre_init ? "connect (pre-initialized daemon)"
                                : "MPI_Comm_spawn"}});
  }
  if (pre_init) {
    // Pre-initialized daemon: connect/accept instead of the slow spawn.
    const mpi::Comm conn = co_await proc.connect(port_it->second);
    helper_id = conn.remote_member(0);
    merged = co_await proc.merge(conn, false);
  } else {
    auto receiver = [self](mpi::Proc& helper) -> sim::Task<> {
      const mpi::Comm m = co_await helper.merge(helper.parent_comm(), true);
      co_await self->receiver_main(helper, m);
    };
    const mpi::SpawnResult spawned =
        co_await proc.spawn(dest_host, receiver, proc.name() + ".init");
    helper_id = spawned.children.front();
    merged = co_await proc.merge(spawned.intercomm, false);
  }
  history_[timeline_index].init_done_at = engine.now();
  if (obs::active(t)) {
    t->end_span(spawn_span);
  }

  // ---- 2. data collection: snapshot live variables -------------------------
  std::uint64_t collect_span = 0;
  if (obs::active(t)) {
    collect_span = t->begin_span("migration.collect", "hpcm", proc.name());
  }
  if (ctx.save_) {
    ctx.save_();
  }
  const std::vector<std::byte> encoded =
      ctx.state_.encode(proc.host().spec().byte_order);
  const double opaque = static_cast<double>(ctx.state_.opaque_bytes());
  const double eager_opaque = std::min(opaque, options_.eager_bytes);
  const double eager_wire = static_cast<double>(encoded.size()) + eager_opaque;
  history_[timeline_index].state_bytes =
      static_cast<double>(encoded.size()) + opaque;

  // ---- 3. execution state + eager data over the merged communicator -------
  mpi::MpiMessage eager_payload;
  eager_payload.data = std::make_shared<const mpi::Bytes>(encoded);
  eager_payload.values = {static_cast<double>(proc.id()),
                          static_cast<double>(timeline_index)};
  co_await proc.send(merged, merged.rank_of(helper_id), kTagEagerState,
                     eager_wire, std::move(eager_payload));
  history_[timeline_index].eager_done_at = engine.now();
  if (obs::active(t)) {
    t->end_span(collect_span,
                {{"state_bytes", history_[timeline_index].state_bytes},
                 {"eager_bytes", eager_wire}});
    // The restoration overlap: the destination decodes and resumes while
    // the source keeps shipping the bulk of the memory state.
    timeline_spans_[timeline_index].restore = t->begin_span(
        "migration.restore", "hpcm", proc.name(),
        {{"remaining_bytes", opaque - eager_opaque}});
  }

  // ---- 4. background bulk transfer (source keeps collecting) --------------
  const double remaining = opaque - eager_opaque;
  std::erase_if(collector_fibers_,
                [](const sim::Fiber& f) { return f.done(); });
  collector_fibers_.push_back(
      sim::Fiber::spawn(engine,
                        run_collector(source_host, dest_host, remaining,
                                      helper_id, merged),
                        proc.name() + ".collector"));

  // ---- 5. the source-side fiber is done ------------------------------------
  throw mpi::ProcMoved{};
}

sim::Task<> MigrationEngine::run_collector(std::string source_host,
                                           std::string dest_host,
                                           double remaining,
                                           mpi::RankId helper_id,
                                           mpi::Comm merged) {
  net::Network& net = mpi_->network();
  while (remaining > 0.0) {
    const double this_chunk = std::min(options_.chunk_bytes, remaining);
    (void)co_await net.transfer(source_host, dest_host, this_chunk);
    remaining -= this_chunk;
  }
  (void)co_await net.transfer(source_host, dest_host, 16.0);
  mpi::MpiMessage done;
  done.context = merged.context();
  done.src_rank = 0;
  done.tag = kTagReady;
  done.size_bytes = 16.0;
  mpi_->inject(helper_id, std::move(done));
}

void MigrationEngine::takeover(mpi::RankId id, host::Host& destination,
                               StateRegistry restored_state,
                               std::size_t timeline_index) {
  const auto it = procs_.find(id);
  mpi::Proc* proc = mpi_->find(id);
  if (it == procs_.end() || proc == nullptr) {
    ARS_LOG_ERROR("hpcm", "takeover for unknown proc " << id);
    return;
  }
  MigrationContext& ctx = it->second->context;
  mpi_->relocate(*proc, destination);
  ctx.state_ = std::move(restored_state);
  ctx.restored_ = true;
  ++ctx.migration_count_;
  ctx.requested_at = -1.0;
  history_[timeline_index].resumed_at = mpi_->engine().now();
  history_[timeline_index].succeeded = true;
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    t->instant("migration.resumed", "hpcm", proc->name(),
               {{"dest", destination.name()},
                {"migrations", ctx.migration_count_}});
  }

  ProcState* state_ptr = it->second.get();
  auto wrapper = [this, state_ptr](mpi::Proc& p) -> sim::Task<> {
    co_await state_ptr->app(p, state_ptr->context);
    finish_normal_exit(p.id());
  };
  mpi_->start_app(*proc, wrapper);
}

void MigrationEngine::pre_initialize_on(const std::string& host_name) {
  if (pre_initialized_.contains(host_name)) {
    return;
  }
  pre_initialized_[host_name] = "";  // reserved; filled when the daemon runs
  MigrationEngine* self = this;
  auto daemon = [self, host_name](mpi::Proc& helper) -> sim::Task<> {
    const std::string port = helper.open_port();
    self->pre_initialized_[host_name] = port;
    while (true) {
      const mpi::Comm conn = co_await helper.accept(port);
      const mpi::Comm merged = co_await helper.merge(conn, true);
      co_await self->receiver_main(helper, merged);
    }
  };
  mpi_->launch(host_name, daemon, "hpcm.daemon." + host_name);
}

bool MigrationEngine::has_pre_initialized(const std::string& host_name) const {
  const auto it = pre_initialized_.find(host_name);
  return it != pre_initialized_.end() && !it->second.empty();
}

}  // namespace ars::hpcm
