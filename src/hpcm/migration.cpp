#include "ars/hpcm/migration.hpp"

#include <algorithm>
#include <cctype>
#include <optional>

#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"

namespace ars::hpcm {

namespace {

/// Tags on the merged communicator used by the migration protocol.
constexpr int kTagEagerState = 100;
constexpr int kTagReady = 101;
constexpr int kTagResumeAck = 102;

std::string migrate_key(host::Pid pid) {
  return "hpcm.migrate." + std::to_string(pid);
}

/// Protocol phases that get a migration.phase_ms{phase} duration series.
constexpr const char* kPhaseNames[] = {"init",     "precopy",  "collect",
                                       "eager",    "ack",      "transfer",
                                       "restore"};

/// Millisecond buckets for phase durations: sub-ms collect snapshots up to
/// multi-second background transfers.
std::vector<double> phase_ms_bounds() {
  return {0.01, 0.03, 0.1, 0.3, 1.0,   3.0,   10.0,  30.0,
          100.0, 300.0, 1e3, 3e3, 1e4, 3e4,   1e5};
}

/// Second buckets for per-event failure waste (lost work, checkpoint
/// overhead, restart cost): sub-second snapshots up to hour-scale losses.
std::vector<double> waste_s_bounds() {
  return {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 3e3};
}

/// Trim and validate the commander-written destination ("host" or
/// "host:port"); returns the bare host name, or nullopt when malformed
/// (empty, whitespace, control characters, or a non-numeric port).
std::optional<std::string> parse_destination(const std::string& raw) {
  std::size_t begin = 0;
  std::size_t end = raw.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(raw[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(raw[end - 1])) != 0) {
    --end;
  }
  std::string value = raw.substr(begin, end - begin);
  if (value.empty()) {
    return std::nullopt;
  }
  if (const auto colon = value.find(':'); colon != std::string::npos) {
    const std::string port = value.substr(colon + 1);
    if (port.empty() ||
        !std::all_of(port.begin(), port.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        })) {
      return std::nullopt;
    }
    value.resize(colon);
  }
  if (value.empty()) {
    return std::nullopt;
  }
  for (const char c : value) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::iscntrl(uc) != 0 || std::isspace(uc) != 0 || c == ':') {
      return std::nullopt;
    }
  }
  return value;
}

}  // namespace

MigrationEngine::MigrationEngine(mpi::MpiSystem& mpi)
    : MigrationEngine(mpi, Options{}) {}

MigrationEngine::MigrationEngine(mpi::MpiSystem& mpi, Options options)
    : mpi_(&mpi), options_(options) {
  ckpt::IoOptions io_options;
  io_options.per_host_bps = options_.checkpoint_store_bps;
  io_options.aggregate_bps = options_.ckpt_aggregate_bps;
  io_options.tracer = options_.tracer;
  io_options.metrics = options_.metrics;
  shared_store_ =
      std::make_unique<ckpt::SharedStore>(mpi_->engine(), io_options);
  if (obs::MetricsRegistry* m = metrics()) {
    // Checkpoint-scheduling + waste series, pre-registered so exports are
    // stable at zero (SharedStore registers the write/bytes series).
    m->counter("ars_ckpt.deferred");
    m->counter("ars_ckpt.preempted");
    m->counter("ars_ckpt.torn_restores");
    m->histogram("ars_ckpt.waste_s", {}, waste_s_bounds());
  }
  if (obs::MetricsRegistry* m = metrics()) {
    // Pre-register the transaction-outcome series so metric exports
    // (benches, CI) always carry them, even on runs without an abort.
    m->counter("migration.rollbacks");
    for (const char* reason :
         {"init-timeout", "precopy-timeout", "eager-timeout", "ack-timeout",
          "dest-failed", "source-crashed", "source-exited", "phase-error"}) {
      m->counter("migration.aborts", {{"reason", reason}});
    }
    // Same for the per-phase duration histograms: a zero-migration run
    // still exports every phase series (with zero observations).
    for (const char* phase : kPhaseNames) {
      m->histogram("migration.phase_ms", {{"phase", phase}},
                   phase_ms_bounds());
    }
  }
}

void MigrationEngine::observe_phase_ms(const char* phase, double seconds) {
  if (obs::MetricsRegistry* m = metrics(); m != nullptr && seconds >= 0.0) {
    m->histogram("migration.phase_ms", {{"phase", phase}}, phase_ms_bounds())
        .observe(seconds * 1e3);
  }
}

MigrationEngine::~MigrationEngine() {
  // In-flight transactions hold fibers suspended on per-transaction wait
  // queues; tear them down in dependency order (phase fiber, then the
  // migrating fiber, then the destination helper) before the queues die.
  for (auto& [index, tx] : pending_) {
    tx->timeout_event.cancel();
    tx->phase_fiber.kill();
    if (!tx->committed) {
      mpi_->kill(tx->proc_id);
    }
    if (!tx->pre_init && tx->helper_id != 0) {
      mpi_->kill(tx->helper_id);
    }
  }
  pending_.clear();
  for (auto& [index, fiber] : collectors_) {
    fiber.kill();
  }
}

ApplicationSchema* MigrationEngine::schema(const std::string& name) {
  const auto it = schemas_.find(name);
  return it == schemas_.end() ? nullptr : &it->second;
}

std::vector<std::string> MigrationEngine::parked_for_relaunch() const {
  std::vector<std::string> names;
  names.reserve(crashed_.size());
  for (const auto& [name, state] : crashed_) {
    names.push_back(name);
  }
  return names;
}

bool MigrationEngine::exited_normally(const std::string& process_name) const {
  return exited_.contains(process_name);
}

mpi::RankId MigrationEngine::launch(const std::string& host_name,
                                    MigratableApp app,
                                    const std::string& name,
                                    ApplicationSchema schema) {
  return launch_world({host_name}, std::move(app), name, std::move(schema))
      .front();
}

std::vector<mpi::RankId> MigrationEngine::launch_world(
    const std::vector<std::string>& hosts, MigratableApp app,
    const std::string& name, ApplicationSchema schema) {
  schemas_.emplace(schema.name(), schema);
  const std::string schema_name = schema.name();
  // The wrapper resolves its ProcState lazily: fibers start through a
  // scheduled event, strictly after the map below is populated.
  auto wrapper = [this](mpi::Proc& proc) -> sim::Task<> {
    ProcState* state_ptr = procs_.at(proc.id()).get();
    co_await state_ptr->app(proc, state_ptr->context);
    finish_normal_exit(proc.id());
  };
  const std::vector<mpi::RankId> ids = mpi_->launch_world(
      hosts, wrapper, name, /*migration_enabled=*/true, schema_name);
  for (const mpi::RankId id : ids) {
    auto state = std::make_unique<ProcState>();
    state->app = app;
    state->context.engine_ = this;
    state->context.proc_ = mpi_->find(id);
    state->context.schema_name_ = schema_name;
    state->context.launched_at = mpi_->engine().now();
    if (const mpi::Proc* proc = mpi_->find(id); proc != nullptr) {
      exited_.erase(proc->name());  // the name is live again
    }
    procs_.emplace(id, std::move(state));
  }
  return ids;
}

void MigrationEngine::close_signal_span(mpi::RankId id, const char* closed_by) {
  const auto open = signal_spans_.find(id);
  if (open == signal_spans_.end()) {
    return;
  }
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    t->end_span(open->second, {{"closed_by", closed_by}});
  }
  signal_spans_.erase(open);
}

void MigrationEngine::notify_phase(const PendingTx& tx, const char* phase) {
  if (!phase_listener_) {
    return;
  }
  PhaseEvent event;
  event.process = tx.process;
  event.source = tx.source;
  event.destination = tx.dest;
  event.phase = phase;
  phase_listener_(event);
}

void MigrationEngine::notify_outcome(const MigrationTimeline& timeline,
                                     const obs::TraceCtx& trace) {
  if (!outcome_listener_) {
    return;
  }
  MigrationOutcome outcome;
  outcome.process = timeline.process;
  outcome.source = timeline.source;
  outcome.destination = timeline.destination;
  outcome.outcome = timeline.outcome;
  outcome.reason = timeline.abort_reason;
  outcome.phase = timeline.abort_phase;
  outcome.precopy_rounds = timeline.precopy_rounds;
  outcome.precopy_bytes = timeline.precopy_bytes;
  outcome.trace = trace;
  outcome_listener_(outcome);
}

void MigrationEngine::finish_normal_exit(mpi::RankId id) {
  const auto it = procs_.find(id);
  if (it == procs_.end()) {
    return;
  }
  // A signal span still open here means the process exited before reaching
  // another poll-point; close it or it leaks as an open span forever.
  close_signal_span(id, "exit");
  // An uncommitted pre-copy transaction can outlive its source: the app may
  // run to completion between rounds.  Abort it — the result is already
  // computed, there is nothing left to move.
  std::size_t stale_tx = 0;
  bool have_stale_tx = false;
  for (const auto& [index, tx] : pending_) {
    if (tx->proc_id == id && !tx->committed) {
      stale_tx = index;
      have_stale_tx = true;
      break;
    }
  }
  if (have_stale_tx) {
    abort_transaction(stale_tx, "source-exited");
  }
  MigrationContext& ctx = it->second->context;
  if (ApplicationSchema* s = schema(ctx.schema_name_)) {
    s->record_execution(mpi_->engine().now() - ctx.launched_at);
  }
  if (const mpi::Proc* proc = mpi_->find(id); proc != nullptr) {
    exited_.insert(proc->name());
    if (obs::Tracer* t = tracer(); obs::active(t)) {
      t->instant("process.exit", "hpcm", proc->name(),
                 {{"host", proc->host().name()},
                  {"migrations", ctx.migration_count_}});
    }
    if (obs::MetricsRegistry* m = metrics()) {
      m->counter("process.exits").inc();
    }
  }
  procs_.erase(it);
}

bool MigrationEngine::request_migration(const std::string& host_name,
                                        host::Pid pid,
                                        const std::string& dest_host,
                                        obs::TraceCtx ctx) {
  mpi::Proc* proc = mpi_->find_by_pid(host_name, pid);
  if (proc == nullptr) {
    return false;
  }
  return request_migration(proc->id(), dest_host, ctx);
}

bool MigrationEngine::request_migration(mpi::RankId id,
                                        const std::string& dest_host,
                                        obs::TraceCtx ctx) {
  const auto it = procs_.find(id);
  if (it == procs_.end()) {
    return false;
  }
  mpi::Proc* proc = mpi_->find(id);
  if (proc == nullptr) {
    return false;
  }
  // The commander's mechanism (§3.3): destination to a temp file, then the
  // user-defined signal.
  proc->host().tmpfiles().write(migrate_key(proc->pid()), dest_host);
  it->second->context.requested_at = mpi_->engine().now();
  it->second->context.pending_trace_ = ctx;
  const bool ok =
      proc->host().processes().raise(proc->pid(), host::kSigMigrate);
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("migration.requests").inc();
  }
  if (obs::Tracer* t = tracer(); obs::active(t) && ok) {
    // The signal span covers delivery -> the process reaching a poll-point.
    close_signal_span(id, "superseded");
    obs::Attrs attrs{{"source", proc->host().name()},
                     {"dest", dest_host},
                     {"pid", static_cast<int>(proc->pid())}};
    obs::stamp(attrs, ctx);
    signal_spans_[id] = t->begin_span("migration.signal", "hpcm",
                                      proc->name(), std::move(attrs));
  }
  return ok;
}

sim::Task<> MigrationContext::poll_point() {
  mpi::Proc& p = *proc_;
  const bool signaled =
      p.host().processes().consume_signal(p.pid(), host::kSigMigrate);
  if (precopy_tx_ != kNoPrecopy) {
    if (signaled) {
      // A second request while a pre-copy transaction is in flight: the
      // process can only migrate once at a time.  Drop the request; the
      // commander learns the outcome of the current transaction anyway.
      engine_->close_signal_span(p.id(), "superseded-by-precopy");
      p.host().tmpfiles().erase(migrate_key(p.pid()));
      ARS_LOG_WARN("hpcm", "ignoring migration request for " << p.name()
                               << ": pre-copy transaction already in flight");
      pending_trace_ = {};
    }
    co_await engine_->continue_precopy(*this);
    co_return;
  }
  if (!signaled) {
    co_return;
  }
  // Close the signal-delivery span: the process reached its poll-point.
  engine_->close_signal_span(p.id(), "poll-point");
  obs::Tracer* tracer = engine_->tracer();
  const std::string key = migrate_key(p.pid());
  if (!p.host().tmpfiles().contains(key)) {
    ARS_LOG_WARN("hpcm", "migration signal without destination file for "
                             << p.name());
    co_return;
  }
  std::uint64_t poll_span = 0;
  if (obs::active(tracer)) {
    obs::Attrs attrs;
    obs::stamp(attrs, pending_trace_);
    poll_span = tracer->begin_span("migration.poll_point", "hpcm", p.name(),
                                   std::move(attrs));
  }
  const std::string raw = p.host().tmpfiles().read(key);
  p.host().tmpfiles().erase(key);
  // Validate the commander-written destination up front: a malformed temp
  // file or an unknown host must not start (or crash) the protocol — the
  // process keeps computing on the source.
  const std::optional<std::string> dest = parse_destination(raw);
  const bool known =
      dest.has_value() &&
      engine_->mpi().network().find_host(*dest) != nullptr;
  if (!known) {
    if (obs::active(tracer)) {
      tracer->end_span(poll_span, {{"bad_destination", true}});
      tracer->instant("migration.bad_destination", "hpcm", p.name(),
                      {{"host", p.host().name()}});
    }
    ARS_LOG_WARN("hpcm", "ignoring malformed or unknown migration "
                             << "destination for " << p.name());
    if (obs::MetricsRegistry* m = engine_->metrics()) {
      m->counter("migration.bad_destination").inc();
    }
    pending_trace_ = {};  // the transaction never starts
    co_return;
  }
  if (obs::active(tracer)) {
    tracer->end_span(poll_span, {{"dest", *dest}});
  }
  try {
    co_await engine_->migrate(*this, *dest);
  } catch (const mpi::ProcMoved&) {
    throw;  // normal migration unwind
  } catch (const std::exception& e) {
    // A failed migration must not kill the application; log and keep
    // computing on the source.
    ARS_LOG_ERROR("hpcm", "migration of " << p.name() << " to " << *dest
                                          << " failed: " << e.what());
    if (obs::active(tracer)) {
      tracer->instant("migration.failed", "hpcm", p.name(),
                      {{"dest", *dest}, {"error", std::string(e.what())}});
    }
    if (obs::MetricsRegistry* m = engine_->metrics()) {
      m->counter("migration.failures").inc();
    }
  }
}

sim::Task<> MigrationContext::checkpoint() {
  co_await engine_->write_checkpoint(*this);
}

sim::Task<> MigrationContext::maybe_checkpoint() {
  if (engine_ == nullptr || proc_ == nullptr) {
    co_return;
  }
  co_await engine_->ckpt_poll(*this);
}

sim::Task<> MigrationEngine::write_checkpoint(MigrationContext& ctx) {
  mpi::Proc& proc = *ctx.proc_;
  const std::string name = proc.name();
  if (shared_store_->writing(name)) {
    co_return;  // one write per process; the in-flight one covers us
  }
  if (ctx.save_) {
    ctx.save_();
  }
  Checkpoint cp;
  cp.process = name;
  const auto encoded = ctx.state_.encode(proc.host().spec().byte_order);
  cp.bytes = encoded.size() + ctx.state_.opaque_bytes();
  cp.state = encoded;
  auto& sim_engine = mpi_->engine();
  cp.taken_at = sim_engine.now();
  ckpt_plans_[name].last_mark = sim_engine.now();
  const std::uint64_t bytes = cp.bytes;
  const std::string host = proc.host().name();
  // The only part that blocks the application: the memory-speed snapshot.
  const double snapshot_time =
      static_cast<double>(bytes) / options_.ckpt_snapshot_bps;
  // Shadow-commit: the write is invisible to latest() until it lands; a
  // crash mid-write keeps the previous complete checkpoint restorable.
  checkpoint_store_.begin_shadow(std::move(cp));
  shared_store_->begin_write(
      name, host, bytes,
      [this, name](const ckpt::WriteOutcome& o) { on_ckpt_commit(name, o); },
      [this, name](const ckpt::WriteOutcome& o) { on_ckpt_abort(name, o); });
  co_await sim::delay(sim_engine, snapshot_time);
}

double MigrationEngine::ckpt_write_cost(const MigrationContext& ctx) const {
  double bytes = 0.0;
  if (const Checkpoint* cp = checkpoint_store_.latest(ctx.proc_->name())) {
    bytes = static_cast<double>(cp->bytes);
  } else {
    bytes = static_cast<double>(ctx.state_.opaque_bytes());
  }
  return bytes / options_.checkpoint_store_bps;
}

sim::Task<> MigrationEngine::ckpt_poll(MigrationContext& ctx) {
  if (options_.ckpt_strategy == "none" || options_.ckpt_strategy.empty()) {
    co_return;
  }
  mpi::Proc& proc = *ctx.proc_;
  const std::string name = proc.name();
  if (shared_store_->writing(name)) {
    co_return;
  }
  const double now = mpi_->engine().now();
  CkptPlan& plan = ckpt_plans_[name];
  if (plan.last_mark < 0.0) {
    // First poll of this incarnation: baseline progress here.  (A relaunch
    // resets the mark, so rework does not count as covered progress.)
    plan.last_mark = now;
    co_return;
  }
  if (options_.ckpt_mtbf <= 0.0) {
    co_return;  // no failure model: checkpoints never become due
  }
  // Young/Daly wants the write cost; before the first write lands the
  // estimate can be zero (nothing encoded yet), where W -> 0 — clamp to
  // the floor instead of "never" (cheap checkpoints happen MORE often).
  const double cost = ckpt_write_cost(ctx);
  const double interval =
      cost > 0.0 ? std::max(options_.ckpt_min_interval,
                            ckpt::young_daly_interval(options_.ckpt_mtbf,
                                                      cost))
                 : options_.ckpt_min_interval;
  const double elapsed = now - plan.last_mark;
  if (elapsed < interval && !plan.granted) {
    co_return;
  }
  if (options_.ckpt_strategy == "periodic" || !ckpt_request_sender_) {
    co_await write_checkpoint(ctx);
    co_return;
  }
  // Cooperative: the central I/O scheduler decides who writes when.
  if (plan.granted) {
    plan.granted = false;
    co_await write_checkpoint(ctx);
    co_return;
  }
  if (plan.awaiting_grant) {
    if (now - plan.requested_at >= options_.ckpt_grant_timeout) {
      // No grant (registry down, message lost): fall back to local
      // admission — the process must keep covering itself while the
      // control plane is unreachable.
      plan.awaiting_grant = false;
      co_await write_checkpoint(ctx);
    }
    co_return;
  }
  if (now < plan.retry_at) {
    co_return;
  }
  plan.awaiting_grant = true;
  plan.requested_at = now;
  send_ckpt_io(name, proc.host().name(), "request",
               static_cast<std::uint64_t>(
                   ckpt_write_cost(ctx) * options_.checkpoint_store_bps),
               elapsed / interval);
}

void MigrationEngine::send_ckpt_io(const std::string& process,
                                   const std::string& host, const char* verb,
                                   std::uint64_t bytes, double risk) {
  if (!ckpt_request_sender_) {
    return;
  }
  CkptIoRequest request;
  request.host = host;
  request.process = process;
  request.verb = verb;
  request.bytes = bytes;
  request.risk = risk;
  ckpt_request_sender_(request);
}

void MigrationEngine::deliver_ckpt_grant(const std::string& process,
                                         const std::string& verb,
                                         double retry_after) {
  const auto it = ckpt_plans_.find(process);
  if (it == ckpt_plans_.end()) {
    return;  // stale grant for a process this engine no longer plans
  }
  CkptPlan& plan = it->second;
  const double now = mpi_->engine().now();
  if (verb == "admit") {
    if (plan.awaiting_grant) {
      plan.awaiting_grant = false;
      plan.granted = true;
    }
    return;
  }
  if (verb == "defer") {
    plan.awaiting_grant = false;
    plan.granted = false;
    plan.retry_at = now + std::max(retry_after, 1.0);
    ++ckpt_deferred_;
    if (obs::MetricsRegistry* m = metrics()) {
      m->counter("ars_ckpt.deferred").inc();
    }
    if (obs::Tracer* t = tracer(); obs::active(t)) {
      t->instant("ckpt.deferred", "ckpt", process,
                 {{"retry_after", retry_after}});
    }
    return;
  }
  if (verb == "preempt") {
    plan.awaiting_grant = false;
    plan.granted = false;
    plan.retry_at = now + std::max(retry_after, 1.0);
    ++ckpt_preempted_;
    if (obs::MetricsRegistry* m = metrics()) {
      m->counter("ars_ckpt.preempted").inc();
    }
    if (obs::Tracer* t = tracer(); obs::active(t)) {
      t->instant("ckpt.preempted", "ckpt", process, {});
    }
    shared_store_->abort_write(process);  // fires on_ckpt_abort
    return;
  }
  ARS_LOG_WARN("hpcm", "unknown ckpt grant verb \"" << verb << "\" for "
                                                    << process);
}

void MigrationEngine::observe_waste_s(double seconds) {
  if (obs::MetricsRegistry* m = metrics(); m != nullptr && seconds > 0.0) {
    m->histogram("ars_ckpt.waste_s", {}, waste_s_bounds()).observe(seconds);
  }
}

void MigrationEngine::on_ckpt_commit(const std::string& process,
                                     const ckpt::WriteOutcome& outcome) {
  checkpoint_store_.commit_shadow(process, outcome.finished_at);
  // Overhead waste: the write's wall time plus the blocking snapshot.
  const double overhead =
      outcome.duration() + static_cast<double>(outcome.bytes) /
                               options_.ckpt_snapshot_bps;
  waste_.record_overhead(process, overhead);
  observe_waste_s(overhead);
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    t->instant("ckpt.commit", "ckpt", process,
               {{"bytes", static_cast<std::size_t>(outcome.bytes)},
                {"write_s", outcome.duration()}});
  }
  send_ckpt_io(process, outcome.host, "done", outcome.bytes, 0.0);
}

void MigrationEngine::on_ckpt_abort(const std::string& process,
                                    const ckpt::WriteOutcome& outcome) {
  checkpoint_store_.abort_shadow(process, options_.sabotage_torn_commit);
  // The aborted write still burned store bandwidth: count it as overhead.
  waste_.record_overhead(process, outcome.duration());
  observe_waste_s(outcome.duration());
  send_ckpt_io(process, outcome.host, "abort", outcome.bytes, 0.0);
}

bool MigrationEngine::crash(mpi::RankId id) {
  const auto it = procs_.find(id);
  mpi::Proc* proc = mpi_->find(id);
  if (it == procs_.end() || proc == nullptr) {
    return false;
  }
  const std::string name = proc->name();
  ARS_LOG_WARN("hpcm", "crash injected: " << name << " on "
                                          << proc->host().name());
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    t->instant("process.crash", "hpcm", name,
               {{"host", proc->host().name()}});
  }
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("process.crashes").inc();
  }
  // A signal delivered but never polled would leak its span.
  close_signal_span(id, "crash");
  // Failure waste: everything since the last committed checkpoint snapshot
  // (or launch) is lost work.  Measured BEFORE the in-flight write abort
  // below — an uncommitted write never covers progress.
  {
    const double now = mpi_->engine().now();
    const Checkpoint* cp = checkpoint_store_.latest(name);
    const double covered_until =
        cp != nullptr ? cp->taken_at : it->second->context.launched_at;
    const double lost = now - covered_until;
    waste_.record_lost_work(name, lost);
    observe_waste_s(lost);
  }
  // Atomic shadow-commit: a crash racing an in-flight checkpoint write
  // drops the shadow; latest() keeps returning the previous complete one.
  shared_store_->abort_write(name);
  // The next incarnation re-baselines its checkpoint plan at first poll.
  if (const auto plan_it = ckpt_plans_.find(name);
      plan_it != ckpt_plans_.end()) {
    plan_it->second = CkptPlan{};
  }
  // An in-flight transaction's phase fiber references the Proc; destroy it
  // before the kill below frees the process.
  std::size_t tx_index = 0;
  bool tx_found = false;
  bool tx_committed = false;
  for (auto& [index, tx] : pending_) {
    if (tx->proc_id == id) {
      tx_found = true;
      tx_index = index;
      tx_committed = tx->committed;
      tx->timeout_event.cancel();
      tx->phase_fiber.kill();
      break;
    }
  }
  auto state = std::move(it->second);
  procs_.erase(it);
  state->context.proc_ = nullptr;
  // A parked context must not resume a dead pre-copy loop after relaunch.
  state->context.precopy_tx_ = MigrationContext::kNoPrecopy;
  crashed_[name] = std::move(state);
  const bool killed = mpi_->kill(id);
  if (tx_found) {
    if (tx_committed) {
      // The freshly relocated instance died during background restoration.
      rollback_restore(tx_index, "restore-interrupted");
    } else {
      abort_transaction(tx_index, "source-crashed");
    }
  }
  return killed;
}

int MigrationEngine::crash_host(const std::string& host_name) {
  // Destination-side failure handling for in-flight transactions: wake
  // pre-commit transactions so their migrating fiber aborts and rolls back
  // to source execution; roll post-commit ones back to checkpoint-restart.
  std::vector<std::size_t> rolling;
  for (auto& [index, tx] : pending_) {
    if (tx->dest != host_name) {
      continue;
    }
    if (tx->committed) {
      rolling.push_back(index);
    } else {
      tx->dest_failed = true;
      tx->wake.notify_all();
    }
  }
  for (const std::size_t index : rolling) {
    rollback_restore(index, "restore-interrupted");
  }
  // A pre-initialized receiver daemon dies with its host.
  drop_daemon(host_name);
  // Stray checkpoint writes sourced from this host (their process migrated
  // away mid-write) lose their data path too.
  shared_store_->abort_host_writes(host_name);

  std::vector<mpi::RankId> victims;
  for (const auto& [id, state] : procs_) {
    const mpi::Proc* proc = mpi_->find(id);
    if (proc != nullptr && proc->host().name() == host_name) {
      victims.push_back(id);
    }
  }
  int crashed = 0;
  for (const mpi::RankId id : victims) {
    crashed += crash(id) ? 1 : 0;
  }
  return crashed;
}

mpi::RankId MigrationEngine::relaunch(const std::string& process_name,
                                      const std::string& host_name,
                                      obs::TraceCtx trace) {
  const auto it = crashed_.find(process_name);
  if (it == crashed_.end()) {
    return 0;
  }
  auto state = std::move(it->second);
  crashed_.erase(it);
  MigrationContext& ctx = state->context;

  double read_time = 0.0;
  if (const Checkpoint* cp = checkpoint_store_.latest(process_name)) {
    if (!cp->complete) {
      // A torn checkpoint reached the store (only possible through the
      // sabotage path) and is about to be restored — the exact bug the
      // chaos no-torn-checkpoint invariant exists to catch.
      ++torn_restores_;
      ARS_LOG_ERROR("hpcm", "restoring TORN checkpoint of " << process_name);
      if (obs::Tracer* t = tracer(); obs::active(t)) {
        t->instant("ckpt.torn_restore", "ckpt", process_name,
                   {{"host", host_name}});
      }
      if (obs::MetricsRegistry* m = metrics()) {
        m->counter("ars_ckpt.torn_restores").inc();
      }
    }
    auto decoded = StateRegistry::decode(cp->state);
    if (decoded.has_value()) {
      ctx.state_ = std::move(*decoded);
      ctx.restored_ = true;
      ctx.restarted_from_checkpoint_ = true;
      read_time =
          static_cast<double>(cp->bytes) / options_.checkpoint_store_bps;
      waste_.record_restart(process_name, read_time);
      observe_waste_s(read_time);
      ARS_LOG_INFO("hpcm", "relaunching " << process_name << " on "
                                          << host_name
                                          << " from checkpoint at t="
                                          << cp->taken_at);
    }
  } else {
    // No checkpoint: restart from scratch — "the loss of all partial
    // results" the paper's introduction warns about.
    ctx.state_.clear();
    ctx.restored_ = false;
    ctx.restarted_from_checkpoint_ = false;
    ARS_LOG_WARN("hpcm", "relaunching " << process_name << " on "
                                        << host_name << " from scratch");
  }

  auto wrapper = [this, read_time](mpi::Proc& proc) -> sim::Task<> {
    if (read_time > 0.0) {
      co_await sim::delay(mpi_->engine(), read_time);
    }
    ProcState* state_ptr = procs_.at(proc.id()).get();
    co_await state_ptr->app(proc, state_ptr->context);
    finish_normal_exit(proc.id());
  };
  const mpi::RankId id =
      mpi_->launch_exact(host_name, wrapper, process_name,
                         /*migration_enabled=*/true, ctx.schema_name_);
  state->context.proc_ = mpi_->find(id);
  const bool from_checkpoint = state->context.restarted_from_checkpoint_;
  procs_.emplace(id, std::move(state));
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    obs::Attrs attrs{{"host", host_name},
                     {"from_checkpoint", from_checkpoint}};
    obs::stamp(attrs, trace);
    t->instant("process.relaunch", "hpcm", process_name, std::move(attrs));
  }
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("process.relaunches",
               {{"from_checkpoint", from_checkpoint ? "yes" : "no"}})
        .inc();
  }
  return id;
}

/// Shared destination-side protocol, used by both spawned initialized
/// processes and pre-initialized daemons.  The eager message's `values`
/// carry [migrating rank id, timeline index] for legacy stop-and-copy, or
/// [id, timeline index, round, final-flag] for pre-copy frames: round 0 is
/// a full snapshot, later rounds are dirty deltas applied onto the staged
/// registry, and the final-flagged delta closes the stream.
sim::Task<> MigrationEngine::receiver_main(mpi::Proc& helper,
                                           mpi::Comm merged) {
  StateRegistry staged;
  bool have_staged = false;
  mpi::RankId id = 0;
  std::size_t timeline_index = 0;
  double round0_wire = 1.0;
  for (;;) {
    const mpi::MpiMessage eager =
        co_await helper.recv(merged, mpi::kAnySource, kTagEagerState);
    if ((eager.values.size() != 2 && eager.values.size() != 4) ||
        !eager.data) {
      throw std::runtime_error("hpcm: malformed eager state message");
    }
    id = static_cast<mpi::RankId>(eager.values[0]);
    timeline_index = static_cast<std::size_t>(eager.values[1]);
    if (eager.values.size() == 2) {
      // Legacy stop-and-copy: one frame, full snapshot, full restore cost.
      auto decoded = StateRegistry::decode(*eager.data);
      if (!decoded.has_value()) {
        throw std::runtime_error("hpcm: state decode failed: " +
                                 decoded.error().to_string());
      }
      staged = std::move(*decoded);
      have_staged = true;
      // Data restoration cost before the application can resume.
      co_await sim::delay(helper.system().engine(), options_.restore_delay);
      break;
    }
    const int round = static_cast<int>(eager.values[2]);
    const bool final_frame = eager.values[3] != 0.0;
    if (round == 0) {
      auto decoded = StateRegistry::decode(*eager.data);
      if (!decoded.has_value()) {
        throw std::runtime_error("hpcm: state decode failed: " +
                                 decoded.error().to_string());
      }
      staged = std::move(*decoded);
      have_staged = true;
      round0_wire = std::max(1.0, eager.size_bytes);
      // The bulk restoration cost lands here, OVERLAPPED with source-side
      // execution — the whole point of pre-copy.
      co_await sim::delay(helper.system().engine(), options_.restore_delay);
    } else {
      if (!have_staged) {
        throw std::runtime_error("hpcm: pre-copy delta before snapshot");
      }
      const auto status = staged.apply_delta(*eager.data);
      if (!status.is_ok()) {
        throw std::runtime_error("hpcm: delta apply failed: " +
                                 status.error().to_string());
      }
      // Delta restore cost scales with its share of the full state; the
      // final (frozen) delta is small, so the freeze stays small.
      co_await sim::delay(
          helper.system().engine(),
          options_.restore_delay *
              std::min(1.0, eager.size_bytes / round0_wire));
    }
    if (final_frame) {
      break;
    }
  }
  const auto tx_it = pending_.find(timeline_index);
  if (tx_it == pending_.end()) {
    co_return;  // transaction aborted while we were restoring
  }
  tx_it->second->restored_state = std::move(staged);
  tx_it->second->state_ready = true;
  // The resume handshake: the source relocates the process (the commit
  // point) only once this acknowledgement lands.
  co_await helper.send(merged, merged.rank_of(id), kTagResumeAck, 16.0);
  // Background restoration completes in parallel with the resumed app.
  (void)co_await helper.recv(merged, mpi::kAnySource, kTagReady);
  finish_restore(timeline_index);
}

void MigrationEngine::finish_restore(std::size_t timeline_index) {
  MigrationTimeline& done = history_[timeline_index];
  done.completed_at = mpi_->engine().now();
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    const auto spans = timeline_spans_.find(timeline_index);
    if (spans != timeline_spans_.end()) {
      t->end_span(spans->second.transfer);
      t->end_span(spans->second.restore);
      t->end_span(spans->second.migration,
                  {{"outcome", "committed"},
                   {"succeeded", done.succeeded},
                   {"state_bytes", done.state_bytes}});
      timeline_spans_.erase(spans);
    }
  }
  observe_phase_ms("transfer", done.completed_at - done.resumed_at);
  observe_phase_ms("restore", done.completed_at - done.eager_done_at);
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("migration.completed").inc();
    m->histogram("migration.total_time").observe(done.total());
    m->histogram("migration.resume_latency").observe(done.resume_latency());
    m->histogram("migration.data_bytes",
                 {}, {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9})
        .observe(done.state_bytes);
  }
  const auto tx_it = pending_.find(timeline_index);
  notify_outcome(done, tx_it != pending_.end() ? tx_it->second->trace
                                               : obs::TraceCtx{});
  collectors_.erase(timeline_index);
  pending_.erase(timeline_index);
}

sim::Task<> MigrationEngine::phase_init(PendingTx& tx, mpi::Proc& proc) {
  if (tx.pre_init) {
    // Pre-initialized daemon: connect/accept instead of the slow spawn.
    const mpi::Comm conn = co_await proc.connect(tx.port);
    tx.helper_id = conn.remote_member(0);
    tx.merged = co_await proc.merge(conn, false);
  } else {
    MigrationEngine* self = this;
    auto receiver = [self](mpi::Proc& helper) -> sim::Task<> {
      const mpi::Comm m = co_await helper.merge(helper.parent_comm(), true);
      co_await self->receiver_main(helper, m);
    };
    const mpi::SpawnResult spawned =
        co_await proc.spawn(tx.dest, receiver, proc.name() + ".init");
    tx.helper_id = spawned.children.front();
    tx.merged = co_await proc.merge(spawned.intercomm, false);
  }
}

sim::Task<> MigrationEngine::phase_eager(PendingTx& tx, mpi::Proc& proc) {
  mpi::MpiMessage eager_payload;
  eager_payload.data =
      std::make_shared<const mpi::Bytes>(std::move(tx.encoded));
  eager_payload.values =
      tx.eager_values.empty()
          ? std::vector<double>{static_cast<double>(proc.id()),
                                static_cast<double>(tx.timeline_index)}
          : tx.eager_values;
  co_await proc.send(tx.merged, tx.merged.rank_of(tx.helper_id),
                     kTagEagerState, tx.eager_wire, std::move(eager_payload));
}

sim::Task<> MigrationEngine::phase_ack(PendingTx& tx, mpi::Proc& proc) {
  (void)co_await proc.recv(tx.merged, mpi::kAnySource, kTagResumeAck);
}

sim::Task<> MigrationEngine::run_phase(PendingTx* tx, sim::Task<> body) {
  try {
    co_await std::move(body);
    tx->phase_done = true;
  } catch (const std::exception& e) {
    tx->phase_error = e.what();
    if (tx->phase_error.empty()) {
      tx->phase_error = "phase failed";
    }
  }
  tx->wake.notify_all();
}

sim::Task<MigrationEngine::PhaseResult> MigrationEngine::await_phase(
    PendingTx& tx, sim::Task<> body, const char* phase, double timeout) {
  tx.phase = phase;
  tx.phase_done = false;
  tx.timed_out = false;
  tx.phase_error.clear();
  notify_phase(tx, phase);
  tx.phase_fiber =
      sim::Fiber::spawn(mpi_->engine(), run_phase(&tx, std::move(body)),
                        tx.process + ".migrate." + phase);
  PendingTx* txp = &tx;
  tx.timeout_event = mpi_->engine().schedule_after(timeout, [txp] {
    txp->timed_out = true;
    txp->wake.notify_all();
  });
  while (!tx.phase_done && !tx.timed_out && !tx.dest_failed &&
         tx.phase_error.empty()) {
    co_await tx.wake.wait();
  }
  tx.timeout_event.cancel();
  if (tx.dest_failed) {
    tx.phase_fiber.kill();
    co_return PhaseResult::kDestFailed;
  }
  if (tx.phase_done) {
    co_return PhaseResult::kDone;
  }
  tx.phase_fiber.kill();
  co_return tx.phase_error.empty() ? PhaseResult::kTimeout
                                   : PhaseResult::kError;
}

void MigrationEngine::fail_phase(PendingTx& tx, mpi::Proc& proc,
                                 PhaseResult result) {
  const std::string phase = tx.phase;
  if (result == PhaseResult::kError) {
    ARS_LOG_ERROR("hpcm", "migration phase " << phase << " of " << proc.name()
                                             << " failed: "
                                             << tx.phase_error);
  }
  std::string reason;
  switch (result) {
    case PhaseResult::kTimeout:
      reason = phase + "-timeout";
      break;
    case PhaseResult::kDestFailed:
      reason = "dest-failed";
      break;
    default:
      reason = "phase-error";
      break;
  }
  abort_transaction(tx.timeline_index, std::move(reason));  // destroys tx
  if (options_.sabotage_skip_rollback) {
    // Sabotaged build (chaos checker validation): unwind the source fiber
    // as if the transaction had committed even though it did not — the
    // logical process is lost, which no-lost-process must catch.
    mpi_->terminate(proc.id());
    throw mpi::ProcMoved{};
  }
}

void MigrationEngine::abort_transaction(std::size_t timeline_index,
                                        std::string reason) {
  const auto it = pending_.find(timeline_index);
  if (it == pending_.end()) {
    return;
  }
  PendingTx& tx = *it->second;
  tx.timeout_event.cancel();
  tx.phase_fiber.kill();
  // An aborted pre-copy discards every shipped round; the process keeps
  // computing on the source with its registry (and dirty tracking) intact.
  if (const auto proc_it = procs_.find(tx.proc_id);
      proc_it != procs_.end() &&
      proc_it->second->context.precopy_tx_ == timeline_index) {
    proc_it->second->context.precopy_tx_ = MigrationContext::kNoPrecopy;
  }
  if (tx.pre_init) {
    // The daemon is wedged mid-protocol; drop it so later migrations to
    // the host fall back to MPI_Comm_spawn.
    drop_daemon(tx.dest);
  } else if (tx.helper_id != 0) {
    mpi_->kill(tx.helper_id);
  }
  MigrationTimeline& t = history_[timeline_index];
  t.outcome = "aborted";
  t.abort_reason = reason;
  t.abort_phase = tx.phase;
  ARS_LOG_WARN("hpcm", "migration of " << tx.process << " to " << tx.dest
                                       << " aborted in phase " << tx.phase
                                       << " (" << reason << ")");
  if (obs::Tracer* tr = tracer(); obs::active(tr)) {
    obs::Attrs attrs{
        {"dest", tx.dest}, {"phase", tx.phase}, {"reason", reason}};
    obs::stamp(attrs, tx.trace);
    tr->instant("migration.aborted", "hpcm", tx.process, std::move(attrs));
  }
  end_transaction_spans(timeline_index, "aborted", reason);
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("migration.aborts", {{"reason", reason}}).inc();
    if (!options_.sabotage_skip_rollback) {
      m->counter("migration.rollbacks").inc();
    }
  }
  notify_outcome(t, tx.trace);
  pending_.erase(it);
}

void MigrationEngine::rollback_restore(std::size_t timeline_index,
                                       std::string reason) {
  const auto it = pending_.find(timeline_index);
  if (it == pending_.end()) {
    return;
  }
  PendingTx& tx = *it->second;
  tx.timeout_event.cancel();
  tx.phase_fiber.kill();
  if (const auto coll = collectors_.find(timeline_index);
      coll != collectors_.end()) {
    coll->second.kill();
    collectors_.erase(coll);
  }
  if (tx.pre_init) {
    drop_daemon(tx.dest);
  } else if (tx.helper_id != 0) {
    mpi_->kill(tx.helper_id);
  }
  MigrationTimeline& t = history_[timeline_index];
  t.outcome = "rolled-back";
  t.abort_reason = reason;
  t.abort_phase = "restore";
  ARS_LOG_WARN("hpcm", "migration of " << tx.process << " to " << tx.dest
                                       << " rolled back after commit ("
                                       << reason << ")");
  if (obs::Tracer* tr = tracer(); obs::active(tr)) {
    obs::Attrs attrs{{"dest", tx.dest}, {"reason", reason}};
    obs::stamp(attrs, tx.trace);
    tr->instant("migration.rolled_back", "hpcm", tx.process,
                std::move(attrs));
  }
  end_transaction_spans(timeline_index, "rolled-back", reason);
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("migration.rollbacks").inc();
  }
  notify_outcome(t, tx.trace);
  pending_.erase(it);
}

void MigrationEngine::end_transaction_spans(std::size_t timeline_index,
                                            const char* outcome,
                                            const std::string& reason) {
  const auto spans = timeline_spans_.find(timeline_index);
  if (spans == timeline_spans_.end()) {
    return;
  }
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    t->end_span(spans->second.transfer, {{"outcome", outcome}});
    t->end_span(spans->second.restore, {{"outcome", outcome}});
    t->end_span(spans->second.precopy, {{"outcome", outcome}});
    t->end_span(spans->second.migration,
                {{"outcome", outcome}, {"reason", reason}});
  }
  timeline_spans_.erase(spans);
}

void MigrationEngine::drop_daemon(const std::string& host_name) {
  if (const auto it = daemon_ids_.find(host_name); it != daemon_ids_.end()) {
    mpi_->kill(it->second);
    daemon_ids_.erase(it);
  }
  pre_initialized_.erase(host_name);
}

sim::Task<> MigrationEngine::migrate(MigrationContext& ctx,
                                     std::string dest_host) {
  mpi::Proc& proc = *ctx.proc_;
  auto& engine = mpi_->engine();
  net::Network& network = mpi_->network();
  const std::string source_host = proc.host().name();
  if (dest_host == source_host) {
    ARS_LOG_WARN("hpcm", "ignoring self-migration of " << proc.name());
    co_return;
  }
  if (network.find_host(dest_host) == nullptr) {
    throw std::out_of_range("hpcm: unknown destination host " + dest_host);
  }

  // The request's causal context (from the MigrateCmd, via the commander);
  // consumed here so a later unrelated request starts fresh.
  const obs::TraceCtx req_trace = ctx.pending_trace_;
  ctx.pending_trace_ = {};

  const std::size_t timeline_index = history_.size();
  history_.emplace_back();
  {
    MigrationTimeline& t = history_.back();
    t.process = proc.name();
    t.source = source_host;
    t.destination = dest_host;
    t.requested_at = ctx.requested_at;
    t.poll_point_at = engine.now();
    t.txn = req_trace.txn;
  }
  ARS_LOG_INFO("hpcm", "migrating " << proc.name() << ": " << source_host
                                    << " -> " << dest_host);
  obs::Tracer* t = tracer();
  if (obs::active(t)) {
    TimelineSpans& spans = timeline_spans_[timeline_index];
    obs::Attrs attrs{{"source", source_host}, {"dest", dest_host}};
    obs::stamp(attrs, req_trace);
    spans.migration =
        t->begin_span("migration", "hpcm", proc.name(), std::move(attrs));
  }

  const auto port_it = pre_initialized_.find(dest_host);
  auto tx_owner = std::make_unique<PendingTx>(engine);
  PendingTx& tx = *tx_owner;
  tx.timeline_index = timeline_index;
  tx.proc_id = proc.id();
  tx.process = proc.name();
  tx.source = source_host;
  tx.dest = dest_host;
  // Everything inside the transaction hangs off the migration span.
  tx.trace = req_trace.child_of(timeline_spans_[timeline_index].migration);
  tx.pre_init =
      port_it != pre_initialized_.end() && !port_it->second.empty();
  if (tx.pre_init) {
    tx.port = port_it->second;
  }
  pending_.emplace(timeline_index, std::move(tx_owner));

  if (options_.precopy) {
    // Iterative pre-copy: the process keeps computing while round 0 (DPM
    // init + full state) ships from a background fiber.  Later poll-points
    // drive the loop (continue_precopy) until the dirty delta converges,
    // then freeze_and_commit runs the stop-the-world tail.
    tx.precopy = true;
    ctx.precopy_tx_ = timeline_index;
    if (obs::active(t)) {
      obs::Attrs attrs{{"dest", dest_host}};
      obs::stamp(attrs, tx.trace);
      timeline_spans_[timeline_index].precopy = t->begin_span(
          "migration.precopy", "hpcm", proc.name(), std::move(attrs));
    }
    start_precopy_round(ctx, tx);
    co_return;  // the app keeps computing on the source
  }
  // Stop-and-copy freezes from the poll-point on.
  history_[timeline_index].freeze_begin_at =
      history_[timeline_index].poll_point_at;

  // ---- phase 1: initialized process (MPI-2 DPM) ---------------------------
  std::uint64_t spawn_span = 0;
  if (obs::active(t)) {
    obs::Attrs attrs{
        {"dest", dest_host},
        {"mechanism", tx.pre_init ? "connect (pre-initialized daemon)"
                                  : "MPI_Comm_spawn"}};
    obs::stamp(attrs, tx.trace);
    spawn_span = t->begin_span("migration.spawn", "hpcm", proc.name(),
                               std::move(attrs));
  }
  PhaseResult r = co_await await_phase(tx, phase_init(tx, proc), "init",
                                       options_.init_timeout);
  if (obs::active(t)) {
    t->end_span(spawn_span, {{"completed", r == PhaseResult::kDone}});
  }
  if (r != PhaseResult::kDone) {
    fail_phase(tx, proc, r);
    co_return;
  }
  history_[timeline_index].init_done_at = engine.now();
  observe_phase_ms("init",
                   history_[timeline_index].init_done_at -
                       history_[timeline_index].poll_point_at);

  // ---- phase 2: data collection: snapshot live variables -------------------
  std::uint64_t collect_span = 0;
  if (obs::active(t)) {
    obs::Attrs attrs;
    obs::stamp(attrs, tx.trace);
    collect_span = t->begin_span("migration.collect", "hpcm", proc.name(),
                                 std::move(attrs));
  }
  const double collect_begin = engine.now();
  if (ctx.save_) {
    ctx.save_();
  }
  tx.encoded = ctx.state_.encode(proc.host().spec().byte_order);
  tx.opaque = static_cast<double>(ctx.state_.opaque_bytes());
  tx.eager_opaque = std::min(tx.opaque, options_.eager_bytes);
  tx.eager_wire = static_cast<double>(tx.encoded.size()) + tx.eager_opaque;
  history_[timeline_index].state_bytes =
      static_cast<double>(tx.encoded.size()) + tx.opaque;
  const double state_bytes = history_[timeline_index].state_bytes;
  const double eager_wire = tx.eager_wire;
  const double remaining = tx.opaque - tx.eager_opaque;
  if (obs::active(t)) {
    // Collection is the snapshot alone; the wire phases get their own
    // spans so the critical-path analyzer can attribute the freeze window.
    t->end_span(collect_span, {{"state_bytes", state_bytes},
                               {"eager_bytes", eager_wire}});
  }
  observe_phase_ms("collect", engine.now() - collect_begin);

  co_await freeze_tail(ctx, tx, remaining);
}

/// The frozen epilogue shared by stop-and-copy and a converged pre-copy:
/// the eager send (full snapshot / final dirty delta), the resume
/// handshake at the commit point, and the commit itself.
sim::Task<> MigrationEngine::freeze_tail(MigrationContext& ctx, PendingTx& tx,
                                         double remaining) {
  mpi::Proc& proc = *ctx.proc_;
  auto& engine = mpi_->engine();
  obs::Tracer* t = tracer();
  const std::size_t timeline_index = tx.timeline_index;
  const std::string source_host = tx.source;
  const std::string dest_host = tx.dest;
  const double eager_wire = tx.eager_wire;

  // ---- execution state + eager data over the merged communicator ----------
  std::uint64_t eager_span = 0;
  if (obs::active(t)) {
    obs::Attrs attrs{{"eager_bytes", eager_wire}};
    obs::stamp(attrs, tx.trace);
    eager_span = t->begin_span("migration.eager", "hpcm", proc.name(),
                               std::move(attrs));
  }
  const double eager_begin = engine.now();
  PhaseResult r = co_await await_phase(tx, phase_eager(tx, proc), "eager",
                                       options_.eager_timeout);
  if (obs::active(t)) {
    t->end_span(eager_span, {{"completed", r == PhaseResult::kDone}});
  }
  if (r != PhaseResult::kDone) {
    fail_phase(tx, proc, r);
    co_return;
  }
  history_[timeline_index].eager_done_at = engine.now();
  observe_phase_ms("eager", engine.now() - eager_begin);
  if (obs::active(t)) {
    // The restoration overlap: the destination decodes and resumes while
    // the source keeps shipping the bulk of the memory state.
    obs::Attrs attrs{{"remaining_bytes", remaining}};
    obs::stamp(attrs, tx.trace);
    timeline_spans_[timeline_index].restore = t->begin_span(
        "migration.restore", "hpcm", proc.name(), std::move(attrs));
  }

  // ---- resume handshake — the transaction's commit point -------------------
  std::uint64_t ack_span = 0;
  if (obs::active(t)) {
    obs::Attrs attrs;
    obs::stamp(attrs, tx.trace);
    ack_span = t->begin_span("migration.ack", "hpcm", proc.name(),
                             std::move(attrs));
  }
  const double ack_begin = engine.now();
  r = co_await await_phase(tx, phase_ack(tx, proc), "ack",
                           options_.ack_timeout);
  if (obs::active(t)) {
    t->end_span(ack_span, {{"completed", r == PhaseResult::kDone}});
  }
  if (r != PhaseResult::kDone) {
    fail_phase(tx, proc, r);
    co_return;
  }
  observe_phase_ms("ack", engine.now() - ack_begin);
  mpi::Proc* helper = mpi_->find(tx.helper_id);
  if (helper == nullptr || !tx.state_ready) {
    // The ACK raced a destination failure; treat it as a failed handshake.
    tx.phase = "ack";
    fail_phase(tx, proc, PhaseResult::kDestFailed);
    co_return;
  }

  // ---- commit: the destination owns the process from here on ---------------
  notify_phase(tx, "restore");
  if (obs::active(t)) {
    obs::Attrs attrs{{"remaining_bytes", remaining}};
    obs::stamp(attrs, tx.trace);
    timeline_spans_[timeline_index].transfer = t->begin_span(
        "migration.transfer", "hpcm", proc.name(), std::move(attrs));
  }
  std::erase_if(collectors_,
                [](const auto& entry) { return entry.second.done(); });
  collectors_.emplace(
      timeline_index,
      sim::Fiber::spawn(engine,
                        run_collector(source_host, dest_host, remaining,
                                      tx.helper_id, tx.merged),
                        proc.name() + ".collector"));
  tx.committed = true;
  takeover(proc.id(), helper->host(), std::move(tx.restored_state),
           timeline_index);

  // ---- the source-side fiber is done ---------------------------------------
  throw mpi::ProcMoved{};
}

// ---- iterative pre-copy (source side) --------------------------------------

void MigrationEngine::start_precopy_round(MigrationContext& ctx,
                                          PendingTx& tx) {
  mpi::Proc& proc = *ctx.proc_;
  const int round = tx.rounds_sent;
  tx.phase = "precopy";
  tx.round_in_flight = true;
  tx.phase_done = false;
  tx.timed_out = false;
  tx.phase_error.clear();
  notify_phase(tx, "precopy");
  // Snapshot the payload NOW, in the app fiber: the frame is consistent
  // with this poll-point even though the send overlaps further computation.
  const auto origin = proc.host().spec().byte_order;
  double charge = 0.0;
  if (round == 0) {
    if (ctx.save_) {
      ctx.save_();
    }
    ctx.state_.encode_into(tx.encoded, origin);
    tx.opaque = static_cast<double>(ctx.state_.opaque_bytes());
    charge = static_cast<double>(tx.encoded.size()) + tx.opaque;
    tx.round0_bytes = std::max(1.0, charge);
    tx.shipped_gen = ctx.state_.snapshot_generation();
  } else {
    // save_ already ran in continue_precopy's convergence check.
    StateRegistry::Delta delta =
        ctx.state_.collect_delta(tx.shipped_gen, origin);
    charge = static_cast<double>(delta.wire.size()) +
             static_cast<double>(delta.dirty_opaque_bytes);
    tx.encoded = std::move(delta.wire);
    tx.shipped_gen = delta.to_generation;
  }
  tx.precopy_bytes += charge;
  MigrationTimeline& tl = history_[tx.timeline_index];
  tl.precopy_bytes = tx.precopy_bytes;
  tl.precopy_rounds = round + 1;
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    obs::Attrs attrs{{"round", round}, {"bytes", charge}};
    obs::stamp(attrs, tx.trace);
    t->instant("migration.precopy_round", "hpcm", tx.process,
               std::move(attrs));
  }
  // Round 0 pays DPM init + the full-state transfer; later rounds only the
  // delta.  A round that blows this budget flags the transaction and the
  // next poll-point aborts it from the app fiber.
  const double timeout = round == 0
                             ? options_.init_timeout + options_.eager_timeout
                             : options_.eager_timeout;
  PendingTx* txp = &tx;
  tx.timeout_event = mpi_->engine().schedule_after(timeout, [txp] {
    txp->timed_out = true;
    txp->precopy_failed = true;
    txp->precopy_result = PhaseResult::kTimeout;
  });
  tx.phase_fiber = sim::Fiber::spawn(
      mpi_->engine(), run_precopy_round(&tx, round, charge),
      tx.process + ".migrate.precopy" + std::to_string(round));
}

sim::Task<> MigrationEngine::run_precopy_round(PendingTx* tx, int round,
                                               double charge_bytes) {
  try {
    if (const auto stall = phase_stalls_.find("precopy");
        stall != phase_stalls_.end()) {
      co_await sim::delay(mpi_->engine(), stall->second);
    }
    mpi::Proc* proc = mpi_->find(tx->proc_id);
    if (proc == nullptr) {
      co_return;  // source crashed; crash() tears the transaction down
    }
    if (round == 0) {
      co_await phase_init(*tx, *proc);
      history_[tx->timeline_index].init_done_at = mpi_->engine().now();
      observe_phase_ms("init",
                       history_[tx->timeline_index].init_done_at -
                           history_[tx->timeline_index].poll_point_at);
    }
    mpi::MpiMessage frame;
    frame.data = std::make_shared<const mpi::Bytes>(std::move(tx->encoded));
    frame.values = {static_cast<double>(proc->id()),
                    static_cast<double>(tx->timeline_index),
                    static_cast<double>(round), 0.0};
    co_await proc->send(tx->merged, tx->merged.rank_of(tx->helper_id),
                        kTagEagerState, charge_bytes, std::move(frame));
    tx->rounds_sent = round + 1;
    tx->timeout_event.cancel();
    tx->round_in_flight = false;
  } catch (const std::exception& e) {
    tx->phase_error = e.what();
    if (tx->phase_error.empty()) {
      tx->phase_error = "pre-copy round failed";
    }
    tx->precopy_failed = true;
    tx->precopy_result = PhaseResult::kError;
    tx->timeout_event.cancel();
    tx->round_in_flight = false;
  }
}

sim::Task<> MigrationEngine::continue_precopy(MigrationContext& ctx) {
  const std::size_t index = ctx.precopy_tx_;
  const auto it = pending_.find(index);
  if (it == pending_.end()) {
    // The transaction ended elsewhere (teardown, double abort).
    ctx.precopy_tx_ = MigrationContext::kNoPrecopy;
    co_return;
  }
  PendingTx& tx = *it->second;
  mpi::Proc& proc = *ctx.proc_;
  if (tx.dest_failed || tx.precopy_failed) {
    ctx.precopy_tx_ = MigrationContext::kNoPrecopy;
    const PhaseResult result =
        tx.dest_failed ? PhaseResult::kDestFailed : tx.precopy_result;
    tx.phase = "precopy";
    fail_phase(tx, proc, result);  // aborts; the app keeps computing
    co_return;
  }
  if (tx.round_in_flight) {
    co_return;  // the round is still shipping; keep computing
  }
  // Between rounds: re-collect and test convergence against round 0.
  if (ctx.save_) {
    ctx.save_();
  }
  const double delta_bytes =
      static_cast<double>(ctx.state_.delta_bytes_since(tx.shipped_gen));
  const bool converged =
      delta_bytes <= options_.precopy_convergence * tx.round0_bytes;
  if (!converged && tx.rounds_sent < options_.precopy_max_rounds) {
    start_precopy_round(ctx, tx);
    co_return;
  }
  co_await freeze_and_commit(ctx, tx);
}

sim::Task<> MigrationEngine::freeze_and_commit(MigrationContext& ctx,
                                               PendingTx& tx) {
  mpi::Proc& proc = *ctx.proc_;
  auto& engine = mpi_->engine();
  obs::Tracer* t = tracer();
  const std::size_t timeline_index = tx.timeline_index;
  MigrationTimeline& tl = history_[timeline_index];
  tl.freeze_begin_at = engine.now();
  observe_phase_ms("precopy", tl.freeze_begin_at - tl.poll_point_at);
  if (obs::active(t)) {
    t->end_span(timeline_spans_[timeline_index].precopy,
                {{"rounds", tx.rounds_sent},
                 {"precopy_bytes", tx.precopy_bytes}});
    timeline_spans_[timeline_index].precopy = 0;
  }
  ctx.precopy_tx_ = MigrationContext::kNoPrecopy;
  ARS_LOG_INFO("hpcm", "pre-copy of " << tx.process << " converged after "
                                      << tx.rounds_sent
                                      << " rounds; freezing for the final "
                                      << "delta");

  // ---- freeze: final dirty delta + tombstones ------------------------------
  std::uint64_t collect_span = 0;
  if (obs::active(t)) {
    obs::Attrs attrs;
    obs::stamp(attrs, tx.trace);
    collect_span = t->begin_span("migration.collect", "hpcm", proc.name(),
                                 std::move(attrs));
  }
  const double collect_begin = engine.now();
  // save_ ran in continue_precopy's convergence check at this poll-point.
  StateRegistry::Delta delta =
      ctx.state_.collect_delta(tx.shipped_gen, proc.host().spec().byte_order);
  tx.encoded = std::move(delta.wire);
  tx.shipped_gen = delta.to_generation;
  const double final_bytes = static_cast<double>(tx.encoded.size()) +
                             static_cast<double>(delta.dirty_opaque_bytes);
  tx.eager_wire = final_bytes;
  tx.eager_values = {static_cast<double>(proc.id()),
                     static_cast<double>(timeline_index),
                     static_cast<double>(tx.rounds_sent), 1.0};
  tl.state_bytes = tx.precopy_bytes + final_bytes;
  if (obs::active(t)) {
    t->end_span(collect_span, {{"state_bytes", tl.state_bytes},
                               {"final_delta_bytes", final_bytes}});
  }
  observe_phase_ms("collect", engine.now() - collect_begin);

  // Everything already shipped in the rounds; the background collector
  // only sends the completion marker.
  co_await freeze_tail(ctx, tx, /*remaining=*/0.0);
}

sim::Task<> MigrationEngine::run_collector(std::string source_host,
                                           std::string dest_host,
                                           double remaining,
                                           mpi::RankId helper_id,
                                           mpi::Comm merged) {
  net::Network& net = mpi_->network();
  while (remaining > 0.0) {
    const double this_chunk = std::min(options_.chunk_bytes, remaining);
    (void)co_await net.transfer(source_host, dest_host, this_chunk);
    remaining -= this_chunk;
  }
  (void)co_await net.transfer(source_host, dest_host, 16.0);
  mpi::MpiMessage done;
  done.context = merged.context();
  done.src_rank = 0;
  done.tag = kTagReady;
  done.size_bytes = 16.0;
  mpi_->inject(helper_id, std::move(done));
}

void MigrationEngine::takeover(mpi::RankId id, host::Host& destination,
                               StateRegistry restored_state,
                               std::size_t timeline_index) {
  const auto it = procs_.find(id);
  mpi::Proc* proc = mpi_->find(id);
  if (it == procs_.end() || proc == nullptr) {
    ARS_LOG_ERROR("hpcm", "takeover for unknown proc " << id);
    return;
  }
  // A second signal raised mid-transaction can never be polled on the
  // source again; close its span instead of leaking it.
  close_signal_span(id, "relocated");
  MigrationContext& ctx = it->second->context;
  mpi_->relocate(*proc, destination);
  ctx.state_ = std::move(restored_state);
  ctx.restored_ = true;
  ++ctx.migration_count_;
  ctx.requested_at = -1.0;
  history_[timeline_index].resumed_at = mpi_->engine().now();
  history_[timeline_index].succeeded = true;
  history_[timeline_index].outcome = "committed";
  if (obs::Tracer* t = tracer(); obs::active(t)) {
    obs::Attrs attrs{{"dest", destination.name()},
                     {"migrations", ctx.migration_count_}};
    if (const auto tx_it = pending_.find(timeline_index);
        tx_it != pending_.end()) {
      obs::stamp(attrs, tx_it->second->trace);
    }
    t->instant("migration.resumed", "hpcm", proc->name(), std::move(attrs));
  }

  ProcState* state_ptr = it->second.get();
  auto wrapper = [this, state_ptr](mpi::Proc& p) -> sim::Task<> {
    co_await state_ptr->app(p, state_ptr->context);
    finish_normal_exit(p.id());
  };
  mpi_->start_app(*proc, wrapper);
}

void MigrationEngine::pre_initialize_on(const std::string& host_name) {
  if (pre_initialized_.contains(host_name)) {
    return;
  }
  pre_initialized_[host_name] = "";  // reserved; filled when the daemon runs
  MigrationEngine* self = this;
  auto daemon = [self, host_name](mpi::Proc& helper) -> sim::Task<> {
    const std::string port = helper.open_port();
    self->pre_initialized_[host_name] = port;
    while (true) {
      const mpi::Comm conn = co_await helper.accept(port);
      const mpi::Comm merged = co_await helper.merge(conn, true);
      co_await self->receiver_main(helper, merged);
    }
  };
  daemon_ids_[host_name] =
      mpi_->launch(host_name, daemon, "hpcm.daemon." + host_name);
}

bool MigrationEngine::has_pre_initialized(const std::string& host_name) const {
  const auto it = pre_initialized_.find(host_name);
  return it != pre_initialized_.end() && !it->second.empty();
}

}  // namespace ars::hpcm
