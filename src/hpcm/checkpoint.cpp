#include "ars/hpcm/checkpoint.hpp"

namespace ars::hpcm {

void CheckpointStore::put(Checkpoint checkpoint) {
  ++writes_;
  checkpoints_.insert_or_assign(checkpoint.process, std::move(checkpoint));
}

const Checkpoint* CheckpointStore::latest(const std::string& process) const {
  const auto it = checkpoints_.find(process);
  return it == checkpoints_.end() ? nullptr : &it->second;
}

}  // namespace ars::hpcm
