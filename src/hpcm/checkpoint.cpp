#include "ars/hpcm/checkpoint.hpp"

namespace ars::hpcm {

void CheckpointStore::put(Checkpoint checkpoint) {
  ++writes_;
  checkpoints_.insert_or_assign(checkpoint.process, std::move(checkpoint));
}

void CheckpointStore::begin_shadow(Checkpoint checkpoint) {
  shadows_.insert_or_assign(checkpoint.process, std::move(checkpoint));
}

bool CheckpointStore::commit_shadow(const std::string& process,
                                    double committed_at) {
  const auto it = shadows_.find(process);
  if (it == shadows_.end()) {
    return false;
  }
  Checkpoint checkpoint = std::move(it->second);
  shadows_.erase(it);
  checkpoint.complete = true;
  checkpoint.committed_at = committed_at;
  put(std::move(checkpoint));
  return true;
}

bool CheckpointStore::abort_shadow(const std::string& process,
                                   bool sabotage_torn) {
  const auto it = shadows_.find(process);
  if (it == shadows_.end()) {
    return false;
  }
  Checkpoint checkpoint = std::move(it->second);
  shadows_.erase(it);
  ++aborted_shadows_;
  if (sabotage_torn) {
    // The broken-store model: the partial write replaced the previous
    // checkpoint in place (no shadow/rename).  Restoring it is the bug.
    checkpoint.complete = false;
    ++torn_;
    checkpoints_.insert_or_assign(checkpoint.process, std::move(checkpoint));
  }
  return true;
}

const Checkpoint* CheckpointStore::latest(const std::string& process) const {
  const auto it = checkpoints_.find(process);
  return it == checkpoints_.end() ? nullptr : &it->second;
}

std::uint64_t CheckpointStore::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [process, checkpoint] : checkpoints_) {
    total += checkpoint.bytes;
  }
  return total;
}

}  // namespace ars::hpcm
