#include "ars/hpcm/stateregistry.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ars::hpcm {

using support::Expected;
using support::make_error;

namespace {

constexpr std::uint32_t kMagic = 0x48504d53;       // "HPMS" — full snapshot
constexpr std::uint32_t kDeltaMagic = 0x48504d44;  // "HPMD" — dirty delta

/// Fixed bytes of a delta frame around its entries: magic, origin,
/// base/to generations, entry count, tombstone count.
constexpr std::uint64_t kDeltaHeaderBytes = 4 + 1 + 8 + 8 + 4 + 4;

void put_string(std::vector<std::byte>& out, const std::string& text) {
  support::put_be32(out, static_cast<std::uint32_t>(text.size()));
  const auto* data = reinterpret_cast<const std::byte*>(text.data());
  out.insert(out.end(), data, data + text.size());
}

/// Append `count` 8-byte big-endian words block-copied from `src` (the
/// zero-copy wire path for bulk payloads: one resize, no per-byte growth).
void put_be64_bulk(std::vector<std::byte>& out, const void* src,
                   std::size_t count) {
  const std::size_t base = out.size();
  out.resize(base + count * 8);
  std::byte* dst = out.data() + base;
  std::memcpy(dst, src, count * 8);
  if (support::native_byte_order() == support::ByteOrder::kLittleEndian) {
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t word = 0;
      std::memcpy(&word, dst + i * 8, 8);
      word = support::byteswap64(word);
      std::memcpy(dst + i * 8, &word, 8);
    }
  }
}

/// Block-read `count` big-endian 8-byte words into `dst` (caller validated
/// the buffer holds them).  Advances `offset`.
void get_be64_bulk(std::span<const std::byte> in, std::size_t& offset,
                   void* dst, std::size_t count) {
  std::memcpy(dst, in.data() + offset, count * 8);
  if (support::native_byte_order() == support::ByteOrder::kLittleEndian) {
    auto* bytes = static_cast<std::byte*>(dst);
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t word = 0;
      std::memcpy(&word, bytes + i * 8, 8);
      word = support::byteswap64(word);
      std::memcpy(bytes + i * 8, &word, 8);
    }
  }
  offset += count * 8;
}

Expected<std::string> get_string_field(std::span<const std::byte> in,
                                       std::size_t& offset) {
  const std::uint32_t length = support::get_be32(in, offset);
  if (length > in.size() - offset) {
    return make_error("state_decode", "string field overruns buffer");
  }
  std::string text(reinterpret_cast<const char*>(in.data() + offset), length);
  offset += length;
  return text;
}

}  // namespace

void StateRegistry::store(const std::string& name, Entry entry) {
  entry.gen = ++generation_;
  tombstones_.erase(name);
  entries_[name] = std::move(entry);
}

void StateRegistry::set_int(const std::string& name, std::int64_t value) {
  if (const auto it = entries_.find(name);
      it != entries_.end() && it->second.type == EntryType::kInt &&
      it->second.int_value == value) {
    return;  // value-identical: not re-dirtied
  }
  Entry entry;
  entry.type = EntryType::kInt;
  entry.int_value = value;
  store(name, std::move(entry));
}

void StateRegistry::set_double(const std::string& name, double value) {
  if (const auto it = entries_.find(name);
      it != entries_.end() && it->second.type == EntryType::kDouble &&
      it->second.double_value == value) {
    return;
  }
  Entry entry;
  entry.type = EntryType::kDouble;
  entry.double_value = value;
  store(name, std::move(entry));
}

void StateRegistry::set_string(const std::string& name, std::string value) {
  if (const auto it = entries_.find(name);
      it != entries_.end() && it->second.type == EntryType::kString &&
      it->second.string_value == value) {
    return;
  }
  Entry entry;
  entry.type = EntryType::kString;
  entry.string_value = std::move(value);
  store(name, std::move(entry));
}

void StateRegistry::set_doubles(const std::string& name,
                                std::vector<double> values) {
  if (const auto it = entries_.find(name);
      it != entries_.end() && it->second.type == EntryType::kDoubleVector &&
      it->second.doubles == values) {
    return;
  }
  Entry entry;
  entry.type = EntryType::kDoubleVector;
  entry.doubles = std::move(values);
  store(name, std::move(entry));
}

void StateRegistry::set_ints(const std::string& name,
                             std::vector<std::int64_t> values) {
  if (const auto it = entries_.find(name);
      it != entries_.end() && it->second.type == EntryType::kIntVector &&
      it->second.ints == values) {
    return;
  }
  Entry entry;
  entry.type = EntryType::kIntVector;
  entry.ints = std::move(values);
  store(name, std::move(entry));
}

void StateRegistry::set_opaque(const std::string& name,
                               std::uint64_t logical_bytes) {
  if (const auto it = entries_.find(name);
      it != entries_.end() && it->second.type == EntryType::kOpaque &&
      it->second.opaque_size == logical_bytes) {
    return;  // same region re-registered; dirtiness tracked by touch_opaque
  }
  Entry entry;
  entry.type = EntryType::kOpaque;
  entry.opaque_size = logical_bytes;
  store(name, std::move(entry));
}

void StateRegistry::touch_opaque(const std::string& name,
                                 std::uint64_t offset, std::uint64_t length) {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.type != EntryType::kOpaque) {
    return;
  }
  Entry& entry = it->second;
  if (length == 0 || offset >= entry.opaque_size) {
    return;
  }
  const std::uint64_t end =
      length > entry.opaque_size - offset ? entry.opaque_size : offset + length;
  const std::uint64_t first = offset / kOpaqueRegionBytes;
  const std::uint64_t last = (end - 1) / kOpaqueRegionBytes;
  const std::uint64_t gen = ++generation_;
  for (std::uint64_t region = first; region <= last; ++region) {
    entry.opaque_regions[region] = gen;
  }
  entry.regions_gen = gen;
}

void StateRegistry::erase(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return;
  }
  entries_.erase(it);
  tombstones_[name] = ++generation_;
}

void StateRegistry::clear() {
  if (entries_.empty()) {
    return;
  }
  const std::uint64_t gen = ++generation_;
  for (const auto& [name, entry] : entries_) {
    tombstones_[name] = gen;
  }
  entries_.clear();
}

Expected<const StateRegistry::Entry*> StateRegistry::find_typed(
    const std::string& name, EntryType type) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return make_error("state_lookup", "no entry '" + name + "'");
  }
  if (it->second.type != type) {
    return make_error("state_lookup", "entry '" + name + "' has wrong type");
  }
  return &it->second;
}

Expected<std::int64_t> StateRegistry::get_int(const std::string& name) const {
  auto entry = find_typed(name, EntryType::kInt);
  if (!entry.has_value()) return entry.error();
  return (*entry)->int_value;
}

Expected<double> StateRegistry::get_double(const std::string& name) const {
  auto entry = find_typed(name, EntryType::kDouble);
  if (!entry.has_value()) return entry.error();
  return (*entry)->double_value;
}

Expected<std::string> StateRegistry::get_string(
    const std::string& name) const {
  auto entry = find_typed(name, EntryType::kString);
  if (!entry.has_value()) return entry.error();
  return (*entry)->string_value;
}

Expected<std::vector<double>> StateRegistry::get_doubles(
    const std::string& name) const {
  auto entry = find_typed(name, EntryType::kDoubleVector);
  if (!entry.has_value()) return entry.error();
  return (*entry)->doubles;
}

Expected<std::vector<std::int64_t>> StateRegistry::get_ints(
    const std::string& name) const {
  auto entry = find_typed(name, EntryType::kIntVector);
  if (!entry.has_value()) return entry.error();
  return (*entry)->ints;
}

Expected<std::uint64_t> StateRegistry::get_opaque_size(
    const std::string& name) const {
  auto entry = find_typed(name, EntryType::kOpaque);
  if (!entry.has_value()) return entry.error();
  return (*entry)->opaque_size;
}

bool StateRegistry::entry_dirty_since(const Entry& entry,
                                      std::uint64_t gen) const {
  return entry.gen > gen || entry.regions_gen > gen;
}

std::uint64_t StateRegistry::charged_opaque_since(const Entry& entry,
                                                  std::uint64_t gen) const {
  if (entry.type != EntryType::kOpaque) {
    return 0;
  }
  if (entry.gen > gen) {
    return entry.opaque_size;  // whole entry (re)registered
  }
  std::uint64_t regions = 0;
  for (const auto& [region, touched] : entry.opaque_regions) {
    if (touched > gen) {
      ++regions;
    }
  }
  return std::min(regions * kOpaqueRegionBytes, entry.opaque_size);
}

std::uint64_t StateRegistry::entry_wire_bytes(const std::string& name,
                                              const Entry& entry) {
  std::uint64_t payload = 0;
  switch (entry.type) {
    case EntryType::kInt:
    case EntryType::kDouble:
    case EntryType::kOpaque:
      payload = 8;
      break;
    case EntryType::kString:
      payload = 4 + entry.string_value.size();
      break;
    case EntryType::kDoubleVector:
      payload = 4 + 8 * entry.doubles.size();
      break;
    case EntryType::kIntVector:
      payload = 4 + 8 * entry.ints.size();
      break;
  }
  return 4 + name.size() + 1 + payload;
}

std::uint64_t StateRegistry::encoded_bytes() const {
  // Mirrors encode() exactly: magic + origin byte + count, then per entry
  // the length-prefixed name, the type tag, and the fixed-width payload.
  std::uint64_t total = 4 + 1 + 4;
  for (const auto& [name, entry] : entries_) {
    total += entry_wire_bytes(name, entry);
  }
  return total;
}

std::uint64_t StateRegistry::opaque_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.type == EntryType::kOpaque) {
      total += entry.opaque_size;
    }
  }
  return total;
}

std::vector<std::string> StateRegistry::dirty_since(std::uint64_t gen) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry_dirty_since(entry, gen)) {
      names.push_back(name);
    }
  }
  return names;
}

std::vector<std::string> StateRegistry::tombstones_since(
    std::uint64_t gen) const {
  std::vector<std::string> names;
  for (const auto& [name, erased] : tombstones_) {
    if (erased > gen) {
      names.push_back(name);
    }
  }
  return names;
}

std::uint64_t StateRegistry::delta_bytes_since(std::uint64_t gen) const {
  std::uint64_t wire = 0;
  std::uint64_t opaque = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry_dirty_since(entry, gen)) {
      wire += entry_wire_bytes(name, entry);
      opaque += charged_opaque_since(entry, gen);
    }
  }
  std::uint64_t tombs = 0;
  for (const auto& [name, erased] : tombstones_) {
    if (erased > gen) {
      tombs += 4 + name.size();
    }
  }
  if (wire == 0 && tombs == 0) {
    return 0;  // nothing to ship — no frame at all
  }
  return kDeltaHeaderBytes + wire + tombs + opaque;
}

void StateRegistry::encode_entry(std::vector<std::byte>& out,
                                 const std::string& name, const Entry& entry) {
  put_string(out, name);
  out.push_back(static_cast<std::byte>(entry.type));
  switch (entry.type) {
    case EntryType::kInt:
      support::put_be64(out, static_cast<std::uint64_t>(entry.int_value));
      break;
    case EntryType::kDouble:
      support::put_be_double(out, entry.double_value);
      break;
    case EntryType::kString:
      put_string(out, entry.string_value);
      break;
    case EntryType::kDoubleVector:
      support::put_be32(out, static_cast<std::uint32_t>(entry.doubles.size()));
      put_be64_bulk(out, entry.doubles.data(), entry.doubles.size());
      break;
    case EntryType::kIntVector:
      support::put_be32(out, static_cast<std::uint32_t>(entry.ints.size()));
      put_be64_bulk(out, entry.ints.data(), entry.ints.size());
      break;
    case EntryType::kOpaque:
      support::put_be64(out, entry.opaque_size);
      break;
  }
}

void StateRegistry::encode_into(std::vector<std::byte>& out,
                                support::ByteOrder origin) const {
  out.clear();
  out.reserve(encoded_bytes());
  support::put_be32(out, kMagic);
  out.push_back(static_cast<std::byte>(
      origin == support::ByteOrder::kBigEndian ? 0 : 1));
  support::put_be32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, entry] : entries_) {
    encode_entry(out, name, entry);
  }
}

std::vector<std::byte> StateRegistry::encode(support::ByteOrder origin) const {
  std::vector<std::byte> out;
  encode_into(out, origin);
  return out;
}

StateRegistry::Delta StateRegistry::collect_delta(
    std::uint64_t since, support::ByteOrder origin) const {
  Delta delta;
  delta.base_generation = since;
  delta.to_generation = generation_;
  std::vector<const std::pair<const std::string, Entry>*> dirty;
  for (const auto& item : entries_) {
    if (entry_dirty_since(item.second, since)) {
      dirty.push_back(&item);
      delta.dirty_opaque_bytes += charged_opaque_since(item.second, since);
    }
  }
  std::vector<const std::string*> tombs;
  for (const auto& [name, erased] : tombstones_) {
    if (erased > since) {
      tombs.push_back(&name);
    }
  }
  delta.entries = dirty.size();
  delta.tombstones = tombs.size();
  std::vector<std::byte>& out = delta.wire;
  support::put_be32(out, kDeltaMagic);
  out.push_back(static_cast<std::byte>(
      origin == support::ByteOrder::kBigEndian ? 0 : 1));
  support::put_be64(out, since);
  support::put_be64(out, generation_);
  support::put_be32(out, static_cast<std::uint32_t>(dirty.size()));
  for (const auto* item : dirty) {
    encode_entry(out, item->first, item->second);
  }
  support::put_be32(out, static_cast<std::uint32_t>(tombs.size()));
  for (const auto* name : tombs) {
    put_string(out, *name);
  }
  return delta;
}

support::Status StateRegistry::apply_delta(std::span<const std::byte> wire) {
  // Parse the whole frame before touching any state: a malformed delta must
  // not leave a partially-updated registry behind.
  std::vector<std::pair<std::string, Entry>> updates;
  std::vector<std::string> tombs;
  std::size_t offset = 0;
  try {
    if (support::get_be32(wire, offset) != kDeltaMagic) {
      return make_error("state_delta", "bad delta magic");
    }
    if (offset >= wire.size()) {
      return make_error("state_delta", "truncated delta header");
    }
    ++offset;  // origin byte (diagnostic only)
    (void)support::get_be64(wire, offset);  // base generation
    (void)support::get_be64(wire, offset);  // to generation
    const std::uint32_t count = support::get_be32(wire, offset);
    updates.reserve(std::min<std::uint32_t>(count, 1024));
    for (std::uint32_t i = 0; i < count; ++i) {
      auto entry = decode_entry(wire, offset);
      if (!entry.has_value()) {
        return entry.error();
      }
      for (const auto& [name, existing] : updates) {
        if (name == entry->first) {
          return make_error("state_delta",
                            "duplicate entry '" + name + "' in delta");
        }
      }
      updates.push_back(std::move(*entry));
    }
    const std::uint32_t tomb_count = support::get_be32(wire, offset);
    tombs.reserve(std::min<std::uint32_t>(tomb_count, 1024));
    for (std::uint32_t i = 0; i < tomb_count; ++i) {
      auto name = get_string_field(wire, offset);
      if (!name.has_value()) {
        return name.error();
      }
      for (const auto& [update, existing] : updates) {
        if (update == *name) {
          return make_error("state_delta", "entry '" + *name +
                                               "' both updated and "
                                               "tombstoned");
        }
      }
      tombs.push_back(std::move(*name));
    }
  } catch (const std::out_of_range&) {
    return make_error("state_delta", "truncated delta frame");
  }
  if (offset != wire.size()) {
    return make_error("state_delta", "trailing bytes after delta");
  }
  for (auto& [name, entry] : updates) {
    store(name, std::move(entry));
  }
  for (const std::string& name : tombs) {
    erase(name);
  }
  return support::Status::ok();
}

Expected<std::pair<std::string, StateRegistry::Entry>>
StateRegistry::decode_entry(std::span<const std::byte> wire,
                            std::size_t& offset) {
  auto name = get_string_field(wire, offset);
  if (!name.has_value()) {
    return name.error();
  }
  if (offset >= wire.size()) {
    return make_error("state_decode", "truncated entry type");
  }
  const auto type = static_cast<EntryType>(wire[offset]);
  ++offset;
  Entry entry;
  entry.type = type;
  switch (type) {
    case EntryType::kInt:
      entry.int_value =
          static_cast<std::int64_t>(support::get_be64(wire, offset));
      break;
    case EntryType::kDouble:
      entry.double_value = support::get_be_double(wire, offset);
      break;
    case EntryType::kString: {
      auto text = get_string_field(wire, offset);
      if (!text.has_value()) {
        return text.error();
      }
      entry.string_value = std::move(*text);
      break;
    }
    case EntryType::kDoubleVector: {
      const std::uint32_t n = support::get_be32(wire, offset);
      // Validate the length prefix against the remaining buffer BEFORE
      // allocating: a corrupt 4 GB prefix must fail cleanly, not reserve.
      if (static_cast<std::uint64_t>(n) * 8 > wire.size() - offset) {
        return make_error("state_decode", "vector length overruns buffer");
      }
      entry.doubles.resize(n);
      get_be64_bulk(wire, offset, entry.doubles.data(), n);
      break;
    }
    case EntryType::kIntVector: {
      const std::uint32_t n = support::get_be32(wire, offset);
      if (static_cast<std::uint64_t>(n) * 8 > wire.size() - offset) {
        return make_error("state_decode", "vector length overruns buffer");
      }
      entry.ints.resize(n);
      get_be64_bulk(wire, offset, entry.ints.data(), n);
      break;
    }
    case EntryType::kOpaque:
      entry.opaque_size = support::get_be64(wire, offset);
      break;
    default:
      return make_error("state_decode", "unknown entry type");
  }
  return std::pair<std::string, Entry>{std::move(*name), std::move(entry)};
}

Expected<StateRegistry> StateRegistry::decode(
    std::span<const std::byte> wire) {
  StateRegistry registry;
  std::size_t offset = 0;
  try {
    if (support::get_be32(wire, offset) != kMagic) {
      return make_error("state_decode", "bad magic");
    }
    if (offset >= wire.size()) {
      return make_error("state_decode", "truncated header");
    }
    registry.origin_ = wire[offset] == std::byte{0}
                           ? support::ByteOrder::kBigEndian
                           : support::ByteOrder::kLittleEndian;
    ++offset;
    const std::uint32_t count = support::get_be32(wire, offset);
    for (std::uint32_t i = 0; i < count; ++i) {
      auto entry = decode_entry(wire, offset);
      if (!entry.has_value()) {
        return entry.error();
      }
      if (registry.entries_.contains(entry->first)) {
        // A silently-dropped duplicate would desynchronize the advertised
        // size from what a re-encode produces; reject the frame instead.
        return make_error("state_decode",
                          "duplicate entry '" + entry->first + "'");
      }
      registry.store(entry->first, std::move(entry->second));
    }
  } catch (const std::out_of_range&) {
    return make_error("state_decode", "truncated buffer");
  }
  if (offset != wire.size()) {
    return make_error("state_decode", "trailing bytes after entries");
  }
  return registry;
}

}  // namespace ars::hpcm
