#include "ars/hpcm/stateregistry.hpp"

#include <stdexcept>

namespace ars::hpcm {

using support::Expected;
using support::make_error;

namespace {

constexpr std::uint32_t kMagic = 0x48504d53;  // "HPMS"

void put_string(std::vector<std::byte>& out, const std::string& text) {
  support::put_be32(out, static_cast<std::uint32_t>(text.size()));
  for (const char c : text) {
    out.push_back(static_cast<std::byte>(c));
  }
}

Expected<std::string> get_string_field(std::span<const std::byte> in,
                                       std::size_t& offset) {
  const std::uint32_t length = support::get_be32(in, offset);
  if (offset + length > in.size()) {
    return make_error("state_decode", "string field overruns buffer");
  }
  std::string text;
  text.reserve(length);
  for (std::uint32_t i = 0; i < length; ++i) {
    text.push_back(static_cast<char>(in[offset + i]));
  }
  offset += length;
  return text;
}

}  // namespace

void StateRegistry::set_int(const std::string& name, std::int64_t value) {
  Entry entry;
  entry.type = EntryType::kInt;
  entry.int_value = value;
  entries_[name] = std::move(entry);
}

void StateRegistry::set_double(const std::string& name, double value) {
  Entry entry;
  entry.type = EntryType::kDouble;
  entry.double_value = value;
  entries_[name] = std::move(entry);
}

void StateRegistry::set_string(const std::string& name, std::string value) {
  Entry entry;
  entry.type = EntryType::kString;
  entry.string_value = std::move(value);
  entries_[name] = std::move(entry);
}

void StateRegistry::set_doubles(const std::string& name,
                                std::vector<double> values) {
  Entry entry;
  entry.type = EntryType::kDoubleVector;
  entry.doubles = std::move(values);
  entries_[name] = std::move(entry);
}

void StateRegistry::set_ints(const std::string& name,
                             std::vector<std::int64_t> values) {
  Entry entry;
  entry.type = EntryType::kIntVector;
  entry.ints = std::move(values);
  entries_[name] = std::move(entry);
}

void StateRegistry::set_opaque(const std::string& name,
                               std::uint64_t logical_bytes) {
  Entry entry;
  entry.type = EntryType::kOpaque;
  entry.opaque_size = logical_bytes;
  entries_[name] = std::move(entry);
}

Expected<const StateRegistry::Entry*> StateRegistry::find_typed(
    const std::string& name, EntryType type) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return make_error("state_lookup", "no entry '" + name + "'");
  }
  if (it->second.type != type) {
    return make_error("state_lookup", "entry '" + name + "' has wrong type");
  }
  return &it->second;
}

Expected<std::int64_t> StateRegistry::get_int(const std::string& name) const {
  auto entry = find_typed(name, EntryType::kInt);
  if (!entry.has_value()) return entry.error();
  return (*entry)->int_value;
}

Expected<double> StateRegistry::get_double(const std::string& name) const {
  auto entry = find_typed(name, EntryType::kDouble);
  if (!entry.has_value()) return entry.error();
  return (*entry)->double_value;
}

Expected<std::string> StateRegistry::get_string(
    const std::string& name) const {
  auto entry = find_typed(name, EntryType::kString);
  if (!entry.has_value()) return entry.error();
  return (*entry)->string_value;
}

Expected<std::vector<double>> StateRegistry::get_doubles(
    const std::string& name) const {
  auto entry = find_typed(name, EntryType::kDoubleVector);
  if (!entry.has_value()) return entry.error();
  return (*entry)->doubles;
}

Expected<std::vector<std::int64_t>> StateRegistry::get_ints(
    const std::string& name) const {
  auto entry = find_typed(name, EntryType::kIntVector);
  if (!entry.has_value()) return entry.error();
  return (*entry)->ints;
}

Expected<std::uint64_t> StateRegistry::get_opaque_size(
    const std::string& name) const {
  auto entry = find_typed(name, EntryType::kOpaque);
  if (!entry.has_value()) return entry.error();
  return (*entry)->opaque_size;
}

std::uint64_t StateRegistry::encoded_bytes() const {
  return encode().size();
}

std::uint64_t StateRegistry::opaque_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.type == EntryType::kOpaque) {
      total += entry.opaque_size;
    }
  }
  return total;
}

std::vector<std::byte> StateRegistry::encode(support::ByteOrder origin) const {
  std::vector<std::byte> out;
  support::put_be32(out, kMagic);
  out.push_back(static_cast<std::byte>(
      origin == support::ByteOrder::kBigEndian ? 0 : 1));
  support::put_be32(out, static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, entry] : entries_) {
    put_string(out, name);
    out.push_back(static_cast<std::byte>(entry.type));
    switch (entry.type) {
      case EntryType::kInt:
        support::put_be64(out, static_cast<std::uint64_t>(entry.int_value));
        break;
      case EntryType::kDouble:
        support::put_be_double(out, entry.double_value);
        break;
      case EntryType::kString:
        put_string(out, entry.string_value);
        break;
      case EntryType::kDoubleVector:
        support::put_be32(out, static_cast<std::uint32_t>(entry.doubles.size()));
        for (const double v : entry.doubles) {
          support::put_be_double(out, v);
        }
        break;
      case EntryType::kIntVector:
        support::put_be32(out, static_cast<std::uint32_t>(entry.ints.size()));
        for (const std::int64_t v : entry.ints) {
          support::put_be64(out, static_cast<std::uint64_t>(v));
        }
        break;
      case EntryType::kOpaque:
        support::put_be64(out, entry.opaque_size);
        break;
    }
  }
  return out;
}

Expected<StateRegistry> StateRegistry::decode(
    std::span<const std::byte> wire) {
  StateRegistry registry;
  std::size_t offset = 0;
  try {
    if (support::get_be32(wire, offset) != kMagic) {
      return make_error("state_decode", "bad magic");
    }
    if (offset >= wire.size()) {
      return make_error("state_decode", "truncated header");
    }
    registry.origin_ = wire[offset] == std::byte{0}
                           ? support::ByteOrder::kBigEndian
                           : support::ByteOrder::kLittleEndian;
    ++offset;
    const std::uint32_t count = support::get_be32(wire, offset);
    for (std::uint32_t i = 0; i < count; ++i) {
      auto name = get_string_field(wire, offset);
      if (!name.has_value()) {
        return name.error();
      }
      if (offset >= wire.size()) {
        return make_error("state_decode", "truncated entry type");
      }
      const auto type = static_cast<EntryType>(wire[offset]);
      ++offset;
      Entry entry;
      entry.type = type;
      switch (type) {
        case EntryType::kInt:
          entry.int_value =
              static_cast<std::int64_t>(support::get_be64(wire, offset));
          break;
        case EntryType::kDouble:
          entry.double_value = support::get_be_double(wire, offset);
          break;
        case EntryType::kString: {
          auto text = get_string_field(wire, offset);
          if (!text.has_value()) {
            return text.error();
          }
          entry.string_value = std::move(*text);
          break;
        }
        case EntryType::kDoubleVector: {
          const std::uint32_t n = support::get_be32(wire, offset);
          entry.doubles.reserve(n);
          for (std::uint32_t k = 0; k < n; ++k) {
            entry.doubles.push_back(support::get_be_double(wire, offset));
          }
          break;
        }
        case EntryType::kIntVector: {
          const std::uint32_t n = support::get_be32(wire, offset);
          entry.ints.reserve(n);
          for (std::uint32_t k = 0; k < n; ++k) {
            entry.ints.push_back(
                static_cast<std::int64_t>(support::get_be64(wire, offset)));
          }
          break;
        }
        case EntryType::kOpaque:
          entry.opaque_size = support::get_be64(wire, offset);
          break;
        default:
          return make_error("state_decode", "unknown entry type");
      }
      registry.entries_.emplace(std::move(*name), std::move(entry));
    }
  } catch (const std::out_of_range&) {
    return make_error("state_decode", "truncated buffer");
  }
  if (offset != wire.size()) {
    return make_error("state_decode", "trailing bytes after entries");
  }
  return registry;
}

}  // namespace ars::hpcm
