#include "ars/monitor/sensors.hpp"

#include "ars/support/strings.hpp"

namespace ars::monitor {

using support::Expected;
using support::make_error;

Expected<double> HostSensorSource::sample(const std::string& script,
                                          const std::string& param) {
  const double now = host_->engine().now();
  if (script == kScriptProcessorStatus) {
    return host_->cpu_idle_percent(window_);
  }
  if (script == kScriptLoadAvg1) {
    return host_->loadavg().one_minute();
  }
  if (script == kScriptLoadAvg5) {
    return host_->loadavg().five_minute();
  }
  if (script == kScriptProcessCount) {
    return static_cast<double>(host_->total_process_count());
  }
  if (script == kScriptMemFree) {
    return host_->memory().percent_available();
  }
  if (script == kScriptDiskFree) {
    return static_cast<double>(host_->disk().total_available());
  }
  if (script == kScriptNetFlow) {
    if (param == "out") {
      return network_->tx_rate_bps(host_->name(), window_);
    }
    if (param == "in" || param.empty()) {
      return network_->rx_rate_bps(host_->name(), window_);
    }
    return make_error("sensor", "netFlow.sh: unknown direction '" + param +
                                    "' (use in|out)");
  }
  if (script == kScriptNtStatIpv4) {
    // Only ESTABLISHED is modeled; other socket states read as zero.
    if (param.empty() || support::iequals(param, "ESTABLISHED")) {
      return static_cast<double>(host_->established_sockets());
    }
    return 0.0;
  }
  (void)now;
  return make_error("sensor", "unknown script '" + script + "'");
}

xmlproto::DynamicStatus HostSensorSource::snapshot() {
  xmlproto::DynamicStatus status;
  status.host = host_->name();
  status.load1 = host_->loadavg().one_minute();
  status.load5 = host_->loadavg().five_minute();
  status.cpu_util = host_->cpu_utilization(window_);
  status.processes = host_->total_process_count();
  status.mem_available_pct = host_->memory().percent_available();
  status.disk_available = host_->disk().total_available();
  status.net_in_bps = network_->rx_rate_bps(host_->name(), window_);
  status.net_out_bps = network_->tx_rate_bps(host_->name(), window_);
  status.sockets_established = host_->established_sockets();
  status.timestamp = host_->engine().now();
  return status;
}

xmlproto::StaticInfo static_info_of(const host::Host& h,
                                    const net::Network& network) {
  (void)network;
  xmlproto::StaticInfo info;
  info.host = h.name();
  info.ip = h.spec().ip_address;
  info.os = h.spec().os;
  info.memory_bytes = h.spec().memory_bytes;
  info.disk_bytes = h.spec().disk_bytes;
  info.cpu_speed = h.spec().cpu_speed;
  info.byte_order =
      h.spec().byte_order == support::ByteOrder::kBigEndian ? "big" : "little";
  return info;
}

}  // namespace ars::monitor
