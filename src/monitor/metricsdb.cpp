#include "ars/monitor/metricsdb.hpp"

namespace ars::monitor {

void MetricsDb::record(xmlproto::DynamicStatus status) {
  samples_.push_back(std::move(status));
  while (samples_.size() > capacity_) {
    samples_.pop_front();
  }
}

std::optional<xmlproto::DynamicStatus> MetricsDb::latest() const {
  if (samples_.empty()) {
    return std::nullopt;
  }
  return samples_.back();
}

std::vector<xmlproto::DynamicStatus> MetricsDb::between(double t0,
                                                        double t1) const {
  std::vector<xmlproto::DynamicStatus> out;
  for (const auto& sample : samples_) {
    if (sample.timestamp >= t0 && sample.timestamp <= t1) {
      out.push_back(sample);
    }
  }
  return out;
}

double MetricsDb::mean_load1(double window) const {
  if (samples_.empty()) {
    return 0.0;
  }
  const double horizon = samples_.back().timestamp - window;
  double sum = 0.0;
  int count = 0;
  for (std::size_t i = samples_.size(); i-- > 0;) {
    const xmlproto::DynamicStatus& sample = samples_[i];
    if (sample.timestamp < horizon) {
      break;
    }
    sum += sample.load1;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace ars::monitor
