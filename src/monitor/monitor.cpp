#include "ars/monitor/monitor.hpp"

#include <utility>

#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"
#include "ars/support/strings.hpp"
#include "ars/xmlproto/messages.hpp"

namespace ars::monitor {

using rules::SystemState;
using xmlproto::DynamicStatus;

Classifier classifier_from_policy(rules::MigrationPolicy policy,
                                  double busy_load) {
  return [policy = std::move(policy),
          busy_load](const DynamicStatus& status) -> SystemState {
    if (policy.should_offload(status)) {
      return SystemState::kOverloaded;
    }
    // `free` means "willing and able to accept incoming HPCM-enabled
    // applications" (Table 1) — which is exactly the policy's destination
    // conditions.  A host that fails them is `busy` ("as is").  This is why
    // the paper's Policy 2, blind to communication, classifies the
    // comm-busy workstation as free while Policy 3 does not.
    if (!policy.accepts_destination(status)) {
      return SystemState::kBusy;
    }
    if (policy.dest_conditions().empty() &&
        (status.load1 >= busy_load || status.cpu_util >= 0.9)) {
      return SystemState::kBusy;  // fallback bands for conditionless policies
    }
    return SystemState::kFree;
  };
}

Classifier classifier_from_rules(
    std::shared_ptr<rules::RuleEngine> engine,
    std::shared_ptr<rules::SensorSource> sensors) {
  return [engine = std::move(engine),
          sensors = std::move(sensors)](const DynamicStatus&) -> SystemState {
    auto state = engine->evaluate_all(*sensors);
    if (!state.has_value()) {
      ARS_LOG_WARN("monitor",
                   "rule evaluation failed: " << state.error().to_string());
      return SystemState::kBusy;  // fail safe: neither give nor take work
    }
    return *state;
  };
}

Monitor::Monitor(host::Host& h, net::Network& network, Config config)
    : host_(&h),
      network_(&network),
      config_(std::move(config)),
      sensors_(h, network, config_.sensor_window) {
  if (config_.monitor_port == 0) {
    config_.monitor_port = network_->allocate_port(host_->name());
  }
  if (!config_.classifier) {
    config_.classifier = classifier_from_policy(config_.policy);
  }
  effective_warmup_ = config_.policy.warmup();
}

Monitor::~Monitor() { stop(); }

void Monitor::start() {
  if (running_) {
    return;
  }
  running_ = true;
  fiber_ = sim::Fiber::spawn(host_->engine(), run(),
                             "monitor." + host_->name());
}

void Monitor::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  fiber_.kill();
}

double Monitor::frequency_for(SystemState state) const {
  const auto& freq = config_.policy.frequencies();
  switch (state) {
    case SystemState::kOverloaded:
      return freq.overloaded;
    case SystemState::kBusy:
      return freq.busy;
    default:
      return freq.free;
  }
}

void Monitor::push(xmlproto::ProtocolMessage message) {
  push(std::move(message), {});
}

void Monitor::push(xmlproto::ProtocolMessage message, obs::TraceCtx ctx) {
  net::Message wire;
  wire.src_host = host_->name();
  wire.dst_host = config_.registry_host;
  wire.dst_port = config_.registry_port;
  wire.payload = xmlproto::encode(message, ctx);
  wire.trace = ctx;
  network_->post(std::move(wire));
}

void Monitor::sync_process_registrations(bool refresh) {
  // Registers new migration-enabled processes with the registry and
  // deregisters those that are gone — the "process registration" service.
  // `refresh` re-announces every live process (soft-state rebuild after a
  // registry cold restart); the deregistration sweep is unaffected.
  std::map<host::Pid, bool> current;
  for (const auto& info : host_->processes().snapshot()) {
    if (!info.migration_enabled) {
      continue;
    }
    current.emplace(info.pid, true);
    if (refresh || !known_pids_.contains(info.pid)) {
      xmlproto::ProcessRegisterMsg msg;
      msg.host = host_->name();
      msg.pid = info.pid;
      msg.name = info.name;
      msg.start_time = info.start_time;
      msg.migration_enabled = true;
      msg.schema_name = info.schema_name;
      push(msg);
    }
  }
  for (const auto& [pid, seen] : known_pids_) {
    if (!current.contains(pid)) {
      xmlproto::ProcessDeregisterMsg msg;
      msg.host = host_->name();
      msg.pid = pid;
      push(msg);
    }
  }
  known_pids_ = std::move(current);
}

sim::Task<> Monitor::run() {
  auto& engine = host_->engine();
  // One-time registration of static information.
  xmlproto::RegisterMsg reg;
  reg.info = static_info_of(*host_, *network_);
  reg.monitor_port = config_.monitor_port;
  reg.commander_port = config_.commander_port;
  push(reg);
  double last_register_at = engine.now();

  while (true) {
    bool refresh = false;
    if (config_.reregister_period > 0.0 &&
        engine.now() - last_register_at >= config_.reregister_period) {
      push(reg);  // periodic soft-state re-announcement
      last_register_at = engine.now();
      refresh = true;
    }
    if (config_.cycle_cpu_cost > 0.0) {
      // Running the gathering scripts costs CPU on the monitored host.
      co_await host_->cpu().compute(config_.cycle_cpu_cost);
    }
    DynamicStatus status = sensors_.snapshot();
    const SystemState state = config_.classifier(status);
    status.state = std::string(rules::to_string(state));
    db_.record(status);
    if (state != state_) {
      if (obs::active(config_.tracer)) {
        config_.tracer->instant(
            "monitor.state_transition", "monitor", host_->name(),
            {{"from", std::string(rules::to_string(state_))},
             {"to", std::string(rules::to_string(state))},
             {"transition", rules::transition_label(state_, state)},
             {"load1", status.load1}});
      }
      if (config_.metrics != nullptr) {
        config_.metrics
            ->counter("rules.state_transitions",
                      {{"to", std::string(rules::to_string(state))}})
            .inc();
      }
    }
    state_ = state;

    sync_process_registrations(refresh);

    // Delta heartbeats: an unchanged state only needs its lease renewed.
    // Keyframes (full status) still go out on every state change, every
    // `full_status_every` cycles, and whenever soft state is re-announced.
    const bool keyframe_due =
        !config_.delta_heartbeats || !full_sent_ || refresh ||
        state != last_sent_state_ ||
        cycles_since_full_ + 1 >= config_.full_status_every;
    if (keyframe_due) {
      xmlproto::UpdateMsg update;
      update.status = status;
      push(update);
      ++updates_sent_;
      full_sent_ = true;
      cycles_since_full_ = 0;
    } else {
      xmlproto::UpdateBatchMsg batch;
      xmlproto::LeaseRenewal renewal;
      renewal.host = host_->name();
      renewal.state = status.state;
      renewal.timestamp = status.timestamp;
      batch.renewals.push_back(std::move(renewal));
      push(std::move(batch));
      ++renewals_sent_;
      ++cycles_since_full_;
    }
    last_sent_state_ = state;

    if (state == SystemState::kOverloaded) {
      if (overloaded_since_ < 0.0) {
        overloaded_since_ = engine.now();
        episode_consulted_ = false;
      }
      const double overloaded_for = engine.now() - overloaded_since_;
      const bool warm = overloaded_for >= effective_warmup_;
      // Back off between consults: a migration takes time to take effect.
      const bool cooled =
          engine.now() - last_consult_at_ >= 2.0 * effective_warmup_;
      if (warm && cooled) {
        xmlproto::ConsultMsg consult;
        consult.host = host_->name();
        consult.reason = "overloaded for " +
                         support::format_fixed(overloaded_for, 1) + "s";
        // A consult opens a new causal transaction: the decision, command,
        // and migration it triggers all link back to this instant.
        obs::TraceCtx ctx;
        if (obs::active(config_.tracer)) {
          // The consult instant goes into the ring before the send so it
          // is the transaction's root event.
          ctx.txn = config_.tracer->new_txn();
          obs::Attrs attrs{{"reason", consult.reason}};
          obs::stamp(attrs, ctx);
          config_.tracer->instant("monitor.consult", "monitor",
                                  host_->name(), std::move(attrs));
        }
        push(consult, ctx);
        ++consults_sent_;
        episode_consulted_ = true;
        last_consult_at_ = engine.now();
        if (config_.metrics != nullptr) {
          config_.metrics->counter("monitor.consults_sent").inc();
        }
        ARS_LOG_INFO("monitor",
                     host_->name() << " consults registry: " << consult.reason);
      }
    } else {
      if (overloaded_since_ >= 0.0) {
        // An overload episode just ended: feed the history back.
        const double episode = engine.now() - overloaded_since_;
        if (!episode_consulted_) {
          ++absorbed_spikes_;
        }
        if (config_.adaptive_warmup) {
          const double base = config_.policy.warmup();
          if (!episode_consulted_ && episode < effective_warmup_) {
            // Short spike correctly absorbed: be even more patient so
            // near-misses do not trigger fault migrations.
            effective_warmup_ = std::min(
                effective_warmup_ * (1.0 + config_.warmup_gain),
                base * config_.warmup_max_factor);
          } else if (episode_consulted_) {
            // A real, persistent overload: react faster next time.
            effective_warmup_ = std::max(
                effective_warmup_ * (1.0 - config_.warmup_gain),
                base * config_.warmup_min_factor);
          }
        }
      }
      overloaded_since_ = -1.0;
    }

    co_await sim::delay(engine, frequency_for(state));
  }
}

}  // namespace ars::monitor
