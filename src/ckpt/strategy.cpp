#include "ars/ckpt/strategy.hpp"

#include <algorithm>

namespace ars::ckpt {

Admission IoScheduler::request(const std::string& process,
                               const std::string& host, double risk,
                               double now) {
  // A requester that already holds a slot keeps it (a retry after a lost
  // grant must not double-book).
  if (const auto it = active_.find(process); it != active_.end()) {
    it->second.risk = risk;
    it->second.admitted_at = now;
    Admission admission;
    admission.verb = Admission::Verb::kAdmit;
    return admission;
  }
  if (static_cast<int>(active_.size()) < config_.max_concurrent) {
    active_.emplace(process, Slot{host, risk, now});
    ++admitted_;
    Admission admission;
    admission.verb = Admission::Verb::kAdmit;
    return admission;
  }
  // Saturated: preempt the least-risky active write if the requester is
  // disproportionately overdue, otherwise defer with a backoff scaled by
  // how crowded the store is.
  auto victim = active_.end();
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (victim == active_.end() || it->second.risk < victim->second.risk) {
      victim = it;
    }
  }
  if (victim != active_.end() &&
      risk >= victim->second.risk * config_.preempt_risk_ratio &&
      risk > 1.0) {
    Admission admission;
    admission.verb = Admission::Verb::kPreempt;
    admission.preempt_victim = victim->first;
    admission.victim_host = victim->second.host;
    admission.retry_after = config_.defer_retry;
    active_.erase(victim);
    active_.emplace(process, Slot{host, risk, now});
    ++preemptions_;
    ++admitted_;
    return admission;
  }
  ++deferred_;
  Admission admission;
  admission.verb = Admission::Verb::kDefer;
  const double crowding =
      static_cast<double>(active_.size()) /
      static_cast<double>(std::max(config_.max_concurrent, 1));
  admission.retry_after = config_.defer_retry * std::max(1.0, crowding);
  return admission;
}

void IoScheduler::release(const std::string& process) {
  active_.erase(process);
}

std::vector<std::string> IoScheduler::expire(double now) {
  std::vector<std::string> reaped;
  for (auto it = active_.begin(); it != active_.end();) {
    if (now - it->second.admitted_at >= config_.slot_ttl) {
      reaped.push_back(it->first);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  return reaped;
}

void WasteLedger::record_overhead(const std::string& process,
                                  double seconds) {
  if (seconds > 0.0) {
    per_process_[process].overhead_s += seconds;
  }
}

void WasteLedger::record_lost_work(const std::string& process,
                                   double seconds) {
  if (seconds > 0.0) {
    per_process_[process].lost_work_s += seconds;
  }
}

void WasteLedger::record_restart(const std::string& process, double seconds) {
  if (seconds > 0.0) {
    per_process_[process].restart_s += seconds;
  }
}

Waste WasteLedger::of(const std::string& process) const {
  const auto it = per_process_.find(process);
  return it == per_process_.end() ? Waste{} : it->second;
}

Waste WasteLedger::cluster() const {
  Waste total;
  for (const auto& [process, waste] : per_process_) {
    total.overhead_s += waste.overhead_s;
    total.lost_work_s += waste.lost_work_s;
    total.restart_s += waste.restart_s;
  }
  return total;
}

}  // namespace ars::ckpt
