#include "ars/ckpt/io.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"

namespace ars::ckpt {

namespace {

/// Bytes below this are considered flushed (guards float drift in the
/// fluid-flow arithmetic, same idea as net::Network's byte epsilon).
constexpr double kByteEpsilon = 1e-6;

/// Second buckets for checkpoint write durations: uncontended sub-second
/// flushes up to badly interfered multi-minute stalls.
std::vector<double> write_s_bounds() {
  return {0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0};
}

}  // namespace

SharedStore::SharedStore(sim::Engine& engine, IoOptions options)
    : engine_(&engine), options_(options) {
  if (obs::MetricsRegistry* m = options_.metrics) {
    // Pre-register the checkpoint I/O series so every export carries them,
    // zero-valued, even on runs that never checkpoint (the
    // migration.phase_ms convention).
    m->counter("ars_ckpt.writes");
    m->counter("ars_ckpt.bytes");
    m->counter("ars_ckpt.aborted");
    m->histogram("ars_ckpt.write_s", {}, write_s_bounds());
  }
}

SharedStore::~SharedStore() { completion_.cancel(); }

double SharedStore::fair_rate(std::size_t writers) const {
  if (writers == 0) {
    return 0.0;
  }
  double rate = options_.per_host_bps;
  if (options_.aggregate_bps > 0.0) {
    rate = std::min(rate,
                    options_.aggregate_bps / static_cast<double>(writers));
  }
  return std::max(rate, 1.0);  // never stall a write completely
}

double SharedStore::rate_with_one_more() const {
  return fair_rate(active_.size() + 1);
}

bool SharedStore::begin_write(const std::string& process,
                              const std::string& host, std::uint64_t bytes,
                              OutcomeFn on_commit, OutcomeFn on_abort) {
  if (active_.contains(process)) {
    return false;
  }
  advance();
  Write write;
  write.host = host;
  write.bytes = bytes;
  write.remaining = static_cast<double>(bytes);
  write.started_at = engine_->now();
  write.on_commit = std::move(on_commit);
  write.on_abort = std::move(on_abort);
  if (obs::Tracer* t = options_.tracer; obs::active(t)) {
    write.span = t->begin_span(
        "ckpt.write", "ckpt", process,
        {{"host", host}, {"bytes", static_cast<std::size_t>(bytes)},
         {"writers", active_.size() + 1}});
  }
  active_.emplace(process, std::move(write));
  rerate_and_reschedule();
  return true;
}

bool SharedStore::abort_write(const std::string& process) {
  const auto it = active_.find(process);
  if (it == active_.end()) {
    return false;
  }
  advance();
  drop(it);
  rerate_and_reschedule();
  return true;
}

int SharedStore::abort_host_writes(const std::string& host) {
  advance();
  int dropped = 0;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.host == host) {
      auto victim = it++;
      drop(victim);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    rerate_and_reschedule();
  }
  return dropped;
}

void SharedStore::drop(std::map<std::string, Write>::iterator it) {
  WriteOutcome outcome;
  outcome.process = it->first;
  outcome.host = it->second.host;
  outcome.bytes = it->second.bytes;
  outcome.started_at = it->second.started_at;
  outcome.finished_at = engine_->now();
  if (obs::Tracer* t = options_.tracer; obs::active(t)) {
    t->end_span(it->second.span, {{"outcome", "aborted"}});
  }
  if (obs::MetricsRegistry* m = options_.metrics) {
    m->counter("ars_ckpt.aborted").inc();
  }
  OutcomeFn on_abort = std::move(it->second.on_abort);
  active_.erase(it);
  ++aborts_;
  if (on_abort) {
    on_abort(outcome);
  }
}

void SharedStore::advance() {
  const double now = engine_->now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0 || active_.empty() || rate_ <= 0.0) {
    return;
  }
  const double moved = rate_ * dt;
  // Collect finishers first: their commit callbacks may re-enter the store
  // (e.g. an admission scheduler granting a deferred write).
  std::vector<std::string> done;
  for (auto& [process, write] : active_) {
    write.remaining -= moved;
    if (write.remaining <= kByteEpsilon) {
      done.push_back(process);
    }
  }
  for (const std::string& process : done) {
    finish(process, now);
  }
}

void SharedStore::finish(const std::string& process, double finished_at) {
  const auto it = active_.find(process);
  if (it == active_.end()) {
    return;
  }
  WriteOutcome outcome;
  outcome.process = process;
  outcome.host = it->second.host;
  outcome.bytes = it->second.bytes;
  outcome.started_at = it->second.started_at;
  outcome.finished_at = finished_at;
  if (obs::Tracer* t = options_.tracer; obs::active(t)) {
    t->end_span(it->second.span, {{"outcome", "committed"}});
  }
  if (obs::MetricsRegistry* m = options_.metrics) {
    m->counter("ars_ckpt.writes").inc();
    m->counter("ars_ckpt.bytes").inc(static_cast<double>(outcome.bytes));
    m->histogram("ars_ckpt.write_s", {}, write_s_bounds())
        .observe(outcome.duration());
  }
  OutcomeFn on_commit = std::move(it->second.on_commit);
  active_.erase(it);
  ++commits_;
  if (on_commit) {
    on_commit(outcome);
  }
}

void SharedStore::rerate_and_reschedule() {
  completion_.cancel();
  rate_ = fair_rate(active_.size());
  if (active_.empty()) {
    return;
  }
  double shortest = std::numeric_limits<double>::infinity();
  for (const auto& [process, write] : active_) {
    shortest = std::min(shortest, std::max(write.remaining, 0.0));
  }
  const double eta = shortest / rate_;
  completion_ = engine_->schedule_after(eta, [this] {
    advance();
    rerate_and_reschedule();
  });
}

}  // namespace ars::ckpt
