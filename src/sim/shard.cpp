#include "ars/sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <tuple>

namespace ars::sim {

ShardGroup::ShardGroup(std::size_t shards) : ShardGroup(shards, Options{}) {}

ShardGroup::ShardGroup(std::size_t shards, Options options)
    : options_(options) {
  if (shards == 0) {
    throw std::invalid_argument("ShardGroup needs at least one shard");
  }
  if (!(options_.lookahead > 0.0)) {
    throw std::invalid_argument("ShardGroup lookahead must be > 0");
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>());
  }
  outbox_.resize(shards * shards);
}

ShardGroup::~ShardGroup() {
  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      exit_ = true;
    }
    round_start_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

void ShardGroup::post(std::size_t src, std::size_t dst, SimTime at,
                      Callback fn) {
  assert(src < shards_.size() && dst < shards_.size());
  if (src == dst) {
    // The caller owns this shard's engine right now; no mailbox needed.
    shards_[src]->engine.schedule_at(at, std::move(fn));
    return;
  }
  Mailbox& box = outbox(src, dst);
  box.items.push_back(Pending{at, box.next_seq++, std::move(fn)});
}

void ShardGroup::deliver_inbox(std::size_t dst) {
  ShardState& state = *shards_[dst];
  std::vector<Incoming>& incoming = state.scratch;
  incoming.clear();
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    Mailbox& box = outbox(src, dst);
    for (Pending& pending : box.items) {
      incoming.push_back(
          Incoming{pending.at, src, pending.seq, std::move(pending.fn)});
    }
    box.items.clear();
  }
  if (incoming.empty()) {
    return;
  }
  // The deterministic merge order the whole scheme hinges on: timestamp,
  // then source shard, then per-mailbox sequence.  Same-timestamp events
  // then enqueue in this order and the engine's structural FIFO chains keep
  // it — no further tie-breaking needed.
  std::sort(incoming.begin(), incoming.end(),
            [](const Incoming& a, const Incoming& b) {
              return std::tie(a.at, a.src, a.seq) <
                     std::tie(b.at, b.src, b.seq);
            });
  for (Incoming& item : incoming) {
    // Lookahead contract: the post may not land in this shard's past.  (The
    // engine would clamp to `now`, still deterministic, but a violation
    // means some cross-shard path undercuts the configured lookahead.)
    assert(item.at >= state.engine.now());
    state.engine.schedule_at(item.at, std::move(item.fn));
  }
  state.cross_in += incoming.size();
  incoming.clear();
}

void ShardGroup::run_epoch(std::size_t shard, SimTime horizon) {
  shards_[shard]->engine.run_until(horizon);
  barrier_->arrive_and_wait();  // all outboxes final for this epoch
  deliver_inbox(shard);
  barrier_->arrive_and_wait();  // all inboxes drained; horizons may move
}

void ShardGroup::worker_main(std::size_t shard) {
  std::uint64_t seen_round = 0;
  for (;;) {
    SimTime horizon = 0.0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_start_.wait(lock,
                        [&] { return exit_ || round_ != seen_round; });
      if (exit_) {
        return;
      }
      seen_round = round_;
      horizon = horizon_;
    }
    run_epoch(shard, horizon);
  }
}

void ShardGroup::ensure_workers() {
  if (!workers_.empty()) {
    return;
  }
  barrier_ = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(shards_.size()));
  workers_.reserve(shards_.size() - 1);
  for (std::size_t shard = 1; shard < shards_.size(); ++shard) {
    workers_.emplace_back([this, shard] { worker_main(shard); });
  }
}

std::size_t ShardGroup::run_until(SimTime until) {
  const std::uint64_t before = events_executed();
  if (shards_.size() == 1) {
    // Inline path: identical to driving the engine directly — no threads,
    // no epochs, no barriers.  (post() with one shard already schedules
    // straight into the engine.)
    shards_[0]->engine.run_until(until);
    return static_cast<std::size_t>(events_executed() - before);
  }

  // Setup-time posts (wiring done before the run) are merged on the
  // coordinating thread, in the same deterministic order as epoch merges.
  for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
    deliver_inbox(dst);
  }
  ensure_workers();

  for (;;) {
    SimTime next = std::numeric_limits<SimTime>::infinity();
    for (const auto& state : shards_) {
      next = std::min(next, state->engine.next_event_at());
    }
    if (!(next <= until)) {
      break;  // nothing left inside the window (covers next == +inf)
    }
    const SimTime horizon = std::min(until, next + options_.lookahead);
    ++epochs_;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      horizon_ = horizon;
      ++round_;
    }
    round_start_.notify_all();
    run_epoch(/*shard=*/0, horizon);
    // run_epoch returns only after every worker passed the second barrier,
    // so reading engine state for the next horizon is race-free.
  }

  // Land every clock exactly on `until` (the final horizon may fall short
  // when the last events cluster before it).
  for (const auto& state : shards_) {
    state->engine.run_until(until);
  }
  return static_cast<std::size_t>(events_executed() - before);
}

std::uint64_t ShardGroup::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& state : shards_) {
    total += state->engine.events_executed();
  }
  return total;
}

std::uint64_t ShardGroup::cross_events() const {
  std::uint64_t total = 0;
  for (const auto& state : shards_) {
    total += state->cross_in;
  }
  return total;
}

}  // namespace ars::sim
