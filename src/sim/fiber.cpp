#include <coroutine>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "ars/sim/task.hpp"

namespace ars::sim {

namespace {

/// Fire-and-forget driver coroutine.  The frame destroys itself when the
/// body finishes (final_suspend -> suspend_never); external kill destroys it
/// through FiberState::handle instead.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
      return {};
    }
    [[nodiscard]] std::suspend_never final_suspend() const noexcept {
      return {};
    }
    void return_void() const noexcept {}
    void unhandled_exception() const noexcept {
      // drive() catches everything; reaching here is a library bug.
      std::terminate();
    }
  };

  std::coroutine_handle<promise_type> handle;
};

Detached drive(std::shared_ptr<FiberState> state, Task<> task) {
  bool failed = false;
  std::string reason;
  try {
    co_await std::move(task);
  } catch (const FiberExit&) {
    // clean self-termination
  } catch (const std::exception& e) {
    failed = true;
    reason = e.what();
  } catch (...) {
    failed = true;
    reason = "unknown exception";
  }
  if (failed) {
    ARS_LOG_ERROR("sim", "fiber '" << state->name << "' failed: " << reason);
  }
  state->finish(failed, std::move(reason));
}

}  // namespace

void FiberState::finish(bool with_failure, std::string reason) {
  handle = nullptr;
  done = true;
  failed = with_failure;
  failure = std::move(reason);
  auto listeners = std::move(exit_listeners);
  exit_listeners.clear();
  for (auto& listener : listeners) {
    listener();
  }
}

const std::string& Fiber::name() const {
  static const std::string empty;
  return state_ ? state_->name : empty;
}

void Fiber::kill() {
  if (!state_ || state_->done) {
    return;
  }
  const auto handle = state_->handle;
  if (handle) {
    state_->handle = nullptr;
    handle.destroy();
  }
  state_->finish(false, "killed");
}

void Fiber::on_exit(std::function<void()> fn) {
  if (!state_ || state_->done) {
    fn();
    return;
  }
  state_->exit_listeners.push_back(std::move(fn));
}

Fiber Fiber::spawn(Engine& engine, Task<> task, std::string name) {
  auto state = std::make_shared<FiberState>();
  state->name = std::move(name);
  Detached driver = drive(state, std::move(task));
  state->handle = driver.handle;
  // Start through the event queue so spawn order decides run order and the
  // caller (often plain setup code) never runs fiber bodies inline.
  engine.schedule_after(0.0, [state] {
    if (state->handle && !state->done) {
      state->handle.resume();
    }
  });
  return Fiber{std::move(state)};
}

}  // namespace ars::sim
