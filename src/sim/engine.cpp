#include "ars/sim/engine.hpp"

#include <algorithm>
#include <cassert>

namespace ars::sim {

namespace {

using Record = Engine::EventHandle::Record;

struct RecordLater {
  // Min-heap comparator: std::push_heap builds a max-heap, so "greater".
  bool operator()(const std::shared_ptr<Record>& a,
                  const std::shared_ptr<Record>& b) const noexcept {
    if (a->at != b->at) {
      return a->at > b->at;
    }
    return a->seq > b->seq;
  }
};

}  // namespace

void Engine::EventHandle::cancel() noexcept {
  if (record_ && !record_->fired) {
    record_->cancelled = true;
    record_->fn = nullptr;  // release captured resources eagerly
  }
}

bool Engine::EventHandle::pending() const noexcept {
  return record_ && !record_->fired && !record_->cancelled;
}

Engine::EventHandle Engine::schedule_at(SimTime at, std::function<void()> fn) {
  auto record = std::make_shared<Record>();
  record->at = std::max(at, now_);
  record->seq = next_seq_++;
  record->fn = std::move(fn);
  heap_.push_back(record);
  std::push_heap(heap_.begin(), heap_.end(), RecordLater{});
  ++live_events_;
  return EventHandle{std::move(record)};
}

Engine::EventHandle Engine::schedule_after(SimTime delay,
                                           std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

void Engine::prune_cancelled_head() {
  while (!heap_.empty() && heap_.front()->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), RecordLater{});
    heap_.pop_back();
  }
}

bool Engine::pop_and_run(SimTime limit, bool bounded) {
  prune_cancelled_head();
  if (heap_.empty()) {
    return false;
  }
  if (bounded && heap_.front()->at > limit) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), RecordLater{});
  std::shared_ptr<Record> record = std::move(heap_.back());
  heap_.pop_back();

  assert(record->at >= now_ && "event queue went backwards");
  now_ = record->at;
  record->fired = true;
  std::function<void()> fn = std::move(record->fn);
  record->fn = nullptr;
  ++executed_;
  if (fn) {
    fn();
  }
  return true;
}

bool Engine::step() {
  if (stop_requested_) {
    return false;
  }
  return pop_and_run(0.0, /*bounded=*/false);
}

std::size_t Engine::run() {
  std::size_t count = 0;
  while (!stop_requested_ && pop_and_run(0.0, /*bounded=*/false)) {
    ++count;
  }
  return count;
}

std::size_t Engine::run_until(SimTime until) {
  std::size_t count = 0;
  while (!stop_requested_ && pop_and_run(until, /*bounded=*/true)) {
    ++count;
  }
  if (!stop_requested_ && until > now_) {
    now_ = until;
  }
  return count;
}

std::size_t Engine::pending_events() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(heap_.begin(), heap_.end(),
                    [](const auto& r) { return !r->cancelled; }));
}

}  // namespace ars::sim
