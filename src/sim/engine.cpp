#include "ars/sim/engine.hpp"

#include <bit>
#include <cassert>
#include <limits>

namespace ars::sim {

// -- EventHandle -------------------------------------------------------------

void Engine::EventHandle::cancel() noexcept {
  if (engine_ == nullptr) {
    return;
  }
  Slot* slot = engine_->resolve(id_);
  if (slot != nullptr) {
    slot->link |= kCancelledBit;  // lazily unlinked when it reaches the front
    slot->fn.reset();             // release captured resources eagerly
    ++slot->generation;           // invalidate handles (incl. this one)
    --engine_->live_events_;
  }
}

bool Engine::EventHandle::pending() const noexcept {
  return engine_ != nullptr && engine_->resolve(id_) != nullptr;
}

Engine::Slot* Engine::resolve(std::uint64_t id) noexcept {
  if (id == 0) {
    return nullptr;
  }
  const auto index = static_cast<std::uint32_t>(id & 0xffffffffU) - 1;
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slot_count_ || slot(index).generation != generation) {
    return nullptr;
  }
  return &slot(index);
}

// -- pools -------------------------------------------------------------------

std::uint32_t Engine::acquire_slot() {
  if (free_slot_ != kNone) {
    const std::uint32_t index = free_slot_;
    free_slot_ = slot(index).link;
    return index;
  }
  if ((slot_count_ >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void Engine::release_slot(std::uint32_t index) noexcept {
  Slot& s = slot(index);
  ++s.generation;  // invalidate outstanding handles
  s.link = free_slot_;
  free_slot_ = index;
}

std::uint32_t Engine::acquire_node() {
  if (free_node_ != kNone) {
    const std::uint32_t index = free_node_;
    free_node_ = nodes_[index].next_free;
    return index;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Engine::release_node(std::uint32_t index) noexcept {
  nodes_[index].next_free = free_node_;
  free_node_ = index;
}

// -- timestamp hash index ----------------------------------------------------

std::uint64_t Engine::TimeIndex::key_bits(SimTime at) noexcept {
  return std::bit_cast<std::uint64_t>(at);
}

std::uint32_t Engine::TimeIndex::find(SimTime at) const noexcept {
  if (cells_.empty()) {
    return kNone;
  }
  const std::uint64_t key = key_bits(at);
  const std::size_t mask = cells_.size() - 1;
  std::size_t pos = (key * 0x9e3779b97f4a7c15ULL) & mask;
  while (cells_[pos].node != kNone) {
    if (cells_[pos].key == key) {
      return cells_[pos].node;
    }
    pos = (pos + 1) & mask;
  }
  return kNone;
}

void Engine::TimeIndex::grow() {
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(old.empty() ? 64 : old.size() * 2, Cell{});
  const std::size_t mask = cells_.size() - 1;
  for (const Cell& cell : old) {
    if (cell.node == kNone) {
      continue;
    }
    std::size_t pos = (cell.key * 0x9e3779b97f4a7c15ULL) & mask;
    while (cells_[pos].node != kNone) {
      pos = (pos + 1) & mask;
    }
    cells_[pos] = cell;
  }
}

void Engine::TimeIndex::insert(SimTime at, std::uint32_t node) {
  if (cells_.empty() || (used_ + 1) * 10 > cells_.size() * 7) {
    grow();
  }
  const std::uint64_t key = key_bits(at);
  const std::size_t mask = cells_.size() - 1;
  std::size_t pos = (key * 0x9e3779b97f4a7c15ULL) & mask;
  while (cells_[pos].node != kNone) {
    pos = (pos + 1) & mask;
  }
  cells_[pos] = Cell{key, node};
  ++used_;
}

void Engine::TimeIndex::erase(SimTime at) noexcept {
  const std::uint64_t key = key_bits(at);
  const std::size_t mask = cells_.size() - 1;
  std::size_t pos = (key * 0x9e3779b97f4a7c15ULL) & mask;
  while (cells_[pos].key != key || cells_[pos].node == kNone) {
    if (cells_[pos].node == kNone) {
      return;  // not present (settle/pop always erase live keys, though)
    }
    pos = (pos + 1) & mask;
  }
  // Backward-shift deletion keeps probe sequences intact without
  // tombstones, so long-running engines never degrade.
  std::size_t hole = pos;
  for (;;) {
    cells_[hole].node = kNone;
    std::size_t probe = hole;
    for (;;) {
      probe = (probe + 1) & mask;
      if (cells_[probe].node == kNone) {
        --used_;
        return;
      }
      const std::size_t ideal =
          (cells_[probe].key * 0x9e3779b97f4a7c15ULL) & mask;
      // The cell at `probe` may fill the hole only if its ideal position
      // does not lie in the cyclic range (hole, probe].
      const bool movable = (probe > hole)
                               ? (ideal <= hole || ideal > probe)
                               : (ideal <= hole && ideal > probe);
      if (movable) {
        cells_[hole] = cells_[probe];
        hole = probe;
        break;
      }
    }
  }
}

// -- 4-ary heap over distinct timestamps -------------------------------------

void Engine::heap_push(HeapEntry entry) {
  std::size_t pos = heap_.size();
  heap_.push_back(entry);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (heap_[parent].at <= entry.at) {
      break;
    }
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = entry;
}

void Engine::heap_pop_front() {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = moved;
    sift_down(0);
  }
}

void Engine::sift_down(std::size_t pos) noexcept {
  const std::size_t size = heap_.size();
  const HeapEntry entry = heap_[pos];
  for (;;) {
    const std::size_t first = pos * 4 + 1;
    if (first >= size) {
      break;
    }
    const std::size_t last = first + 4 < size ? first + 4 : size;
    std::size_t best = first;
    for (std::size_t child = first + 1; child < last; ++child) {
      if (heap_[child].at < heap_[best].at) {
        best = child;
      }
    }
    if (entry.at <= heap_[best].at) {
      break;
    }
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = entry;
}

// -- scheduling --------------------------------------------------------------

Engine::EventHandle Engine::schedule_at(SimTime at, Callback fn) {
  SimTime when = at > now_ ? at : now_;
  when += 0.0;  // canonicalize -0.0: timestamp identity must match equality
  const std::uint32_t index = acquire_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  s.link = kNone;
  std::uint32_t node_index = index_.find(when);
  if (node_index == kNone) {
    node_index = acquire_node();
    nodes_[node_index] = TimeNode{index, index, kNone};
    index_.insert(when, node_index);
    heap_push(HeapEntry{when, node_index});
  } else {
    TimeNode& node = nodes_[node_index];
    Slot& tail = slot(node.tail);
    tail.link = index | (tail.link & kCancelledBit);
    node.tail = index;
  }
  ++live_events_;
  return EventHandle{this, pack(index, s.generation)};
}

Engine::EventHandle Engine::schedule_after(SimTime delay, Callback fn) {
  return schedule_at(now_ + (delay > 0.0 ? delay : 0.0), std::move(fn));
}

// -- event loop --------------------------------------------------------------

void Engine::settle_head() {
  while (!heap_.empty()) {
    TimeNode& node = nodes_[heap_[0].node];
    while (node.head != kNone) {
      Slot& s = slot(node.head);
      if ((s.link & kCancelledBit) == 0) {
        return;  // live event at the front
      }
      const std::uint32_t index = node.head;
      node.head = s.link & ~kCancelledBit;
      release_slot(index);
    }
    // Every event at this timestamp was cancelled: retire it.
    index_.erase(heap_[0].at);
    release_node(heap_[0].node);
    heap_pop_front();
  }
}

bool Engine::pop_and_run(SimTime limit, bool bounded) {
  settle_head();
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry head = heap_[0];
  if (bounded && head.at > limit) {
    return false;
  }
  TimeNode& node = nodes_[head.node];
  const std::uint32_t index = node.head;
  Slot& s = slot(index);
  const std::uint32_t next = s.link;  // front is live: no cancelled bit
  if (next == kNone) {
    // Last event at this timestamp: retire it before running the callable,
    // so a same-time reschedule from inside the event starts a fresh chain.
    index_.erase(head.at);
    release_node(head.node);
    heap_pop_front();
  } else {
    node.head = next;
  }

  assert(head.at >= now_ && "event queue went backwards");
  now_ = head.at;
  // Move the callable out and recycle the slot *before* invoking, so the
  // event body can schedule (and the freed slot can absorb) new events, and
  // handles to the running event are already stale.
  Callback fn = std::move(s.fn);
  release_slot(index);
  --live_events_;
  ++executed_;
  if (fn) {
    fn();
  }
  return true;
}

bool Engine::step() {
  if (stop_requested_) {
    return false;
  }
  return pop_and_run(0.0, /*bounded=*/false);
}

std::size_t Engine::run() {
  std::size_t count = 0;
  while (!stop_requested_ && pop_and_run(0.0, /*bounded=*/false)) {
    ++count;
  }
  return count;
}

std::size_t Engine::run_until(SimTime until) {
  std::size_t count = 0;
  while (!stop_requested_ && pop_and_run(until, /*bounded=*/true)) {
    ++count;
  }
  if (!stop_requested_ && until > now_) {
    now_ = until;
  }
  return count;
}

SimTime Engine::next_event_at() {
  settle_head();
  return heap_.empty() ? std::numeric_limits<SimTime>::infinity()
                       : heap_.front().at;
}

}  // namespace ars::sim
