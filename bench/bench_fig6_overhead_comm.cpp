// Figure 6 (+ §5.1): rescheduler overhead on communication.
//
// Same deployment as Figure 5.  Ambient traffic between the workstations
// (NFS, naming services...) dominates; the rescheduler's XML heartbeats add
// almost nothing — "there is almost no overhead for communication".

#include "common.hpp"

#include "ars/core/runtime.hpp"
#include "ars/net/commhog.hpp"

using namespace ars;

namespace {

struct RunResult {
  std::vector<core::TraceSample> series;  // ws1
  double tx_kbps = 0.0;
  double rx_kbps = 0.0;
};

constexpr double kDuration = 600.0;
constexpr double kMeasureFrom = 60.0;

RunResult run(bool with_rescheduler) {
  core::ClusterConfig config = core::make_cluster(2, rules::paper_policy2());
  config.monitor_cycle_cpu_cost = 0.1;
  core::ReschedulerRuntime runtime{config};

  // Ambient traffic shaped to the paper's measured floor: ws1 sends
  // ~5.82 KB/s and receives ~5.99 KB/s.
  net::CommHog outbound{runtime.network(),
                        {.src = "ws1",
                         .dst = "ws2",
                         .rate_bps = 5.82e3,
                         .period = 1.0,
                         .bidirectional = false,
                         .name = "ambient.out"}};
  net::CommHog inbound{runtime.network(),
                       {.src = "ws2",
                        .dst = "ws1",
                        .rate_bps = 5.99e3,
                        .period = 1.0,
                        .bidirectional = false,
                        .name = "ambient.in"}};
  outbound.start();
  inbound.start();

  if (with_rescheduler) {
    runtime.start_rescheduler();
  }
  runtime.trace().start(10.0);
  runtime.run_until(kDuration);

  RunResult result;
  result.series = runtime.trace().series("ws1");
  result.tx_kbps = runtime.trace().mean("ws1", kMeasureFrom, kDuration,
                                        &core::TraceSample::tx_bps) /
                   1000.0;
  result.rx_kbps = runtime.trace().mean("ws1", kMeasureFrom, kDuration,
                                        &core::TraceSample::rx_bps) /
                   1000.0;
  bench::export_obs(runtime, with_rescheduler ? "with" : "without");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  bench::heading(
      "Figure 6. Overhead - Communication (with vs without rescheduler)");

  const RunResult without = run(false);
  const RunResult with = run(true);

  bench::subheading("ws1 traffic series, KB/s (every 30 s shown)");
  bench::Table table({"t (s)", "send w/o", "send w/", "recv w/o", "recv w/"});
  for (std::size_t i = 0; i < without.series.size() && i < with.series.size();
       i += 3) {
    table.add_row({bench::fmt(without.series[i].t, 0),
                   bench::fmt(without.series[i].tx_bps / 1000.0, 2),
                   bench::fmt(with.series[i].tx_bps / 1000.0, 2),
                   bench::fmt(without.series[i].rx_bps / 1000.0, 2),
                   bench::fmt(with.series[i].rx_bps / 1000.0, 2)});
  }
  table.print();

  bench::subheading("Scalar summary");
  bench::compare("sending, without rescheduler", 5.82, without.tx_kbps,
                 "KB/s");
  bench::compare("sending, with rescheduler", 5.82, with.tx_kbps, "KB/s");
  bench::compare("receiving, without rescheduler", 5.99, without.rx_kbps,
                 "KB/s");
  bench::compare("receiving, with rescheduler", 5.99, with.rx_kbps, "KB/s");

  const double tx_delta_kbps = with.tx_kbps - without.tx_kbps;
  const double rx_delta_kbps = with.rx_kbps - without.rx_kbps;
  std::printf("\n  Rescheduler control traffic adds %.3f KB/s send, "
              "%.3f KB/s recv.\n",
              tx_delta_kbps, rx_delta_kbps);
  const bool shape_holds =
      tx_delta_kbps < 0.5 && rx_delta_kbps < 0.5 && with.tx_kbps > 5.0;
  std::printf("  Paper claim: \"almost no overhead for communication\" -> "
              "%s\n",
              shape_holds ? "REPRODUCED" : "NOT reproduced");
  return shape_holds ? 0 : 1;
}
