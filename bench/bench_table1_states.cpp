// Table 1 + Figures 3/4: the system-state semantics and the paper's rule
// files, parsed verbatim and evaluated against live sensor values.

#include "common.hpp"

#include "ars/rules/engine.hpp"
#include "ars/rules/rulefile.hpp"

using namespace ars;

namespace {

std::string yes_no(bool value) { return value ? "Yes" : "No"; }

void print_table1() {
  bench::heading("Table 1. System State Description");
  bench::Table table({"System state", "Loaded", "Migrate in", "Migrate out"});
  for (const rules::SystemState state :
       {rules::SystemState::kFree, rules::SystemState::kBusy,
        rules::SystemState::kOverloaded}) {
    const rules::StateActions actions = rules::actions_for(state);
    table.add_row({std::string(rules::to_string(state)),
                   yes_no(actions.loaded), yes_no(actions.migrate_in),
                   yes_no(actions.migrate_out)});
  }
  table.print();
  std::printf(
      "\n  Paper row check: Free={No,Yes,No} Busy={Yes,No,No} "
      "Overloaded={Yes,No,Yes}\n");
}

void print_figure3() {
  bench::heading("Figure 3. Simple Rules (verbatim parse + evaluation)");
  const auto specs = rules::parse_rule_file(rules::paper_figure3_text());
  if (!specs.has_value()) {
    std::printf("PARSE FAILED: %s\n", specs.error().to_string().c_str());
    return;
  }
  bench::Table table({"rl_number", "rl_name", "rl_script", "op", "rl_param",
                      "rl_busy", "rl_overLd"});
  for (const auto& spec : *specs) {
    table.add_row({std::to_string(spec.number), spec.name, spec.script,
                   std::string(rules::to_string(spec.op)), spec.param,
                   bench::fmt(spec.busy, 0), bench::fmt(spec.overld, 0)});
  }
  table.print();

  auto engine = rules::RuleEngine::create(*specs);
  rules::MapSensorSource sensors;
  bench::subheading("Rule 1 (processorStatus) evaluation sweep");
  bench::Table sweep({"idle %", "state"});
  for (const double idle : {95.0, 60.0, 50.0, 49.0, 45.0, 44.0, 10.0}) {
    sensors.set("processorStatus.sh", idle);
    sweep.add_row({bench::fmt(idle, 0),
                   std::string(rules::to_string(*engine->evaluate(1, sensors)))});
  }
  sweep.print();

  bench::subheading("Rule 2 (ntStatIpv4 ESTABLISHED) evaluation sweep");
  bench::Table sweep2({"sockets", "state"});
  for (const double sockets : {100.0, 700.0, 701.0, 900.0, 901.0, 1500.0}) {
    sensors.set("ntStatIpv4.sh", "ESTABLISHED", sockets);
    sweep2.add_row({bench::fmt(sockets, 0),
                    std::string(rules::to_string(*engine->evaluate(2, sensors)))});
  }
  sweep2.print();
}

void print_figure4() {
  bench::heading("Figure 4. A Complex Rule (verbatim parse + evaluation)");
  const std::string text =
      "rl_number: 1\nrl_name: a\nrl_type: simple\nrl_script: s1\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 2\nrl_name: b\nrl_type: simple\nrl_script: s2\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 3\nrl_name: c\nrl_type: simple\nrl_script: s3\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 4\nrl_name: d\nrl_type: simple\nrl_script: s4\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n" +
      rules::paper_figure4_text();
  auto engine = rules::RuleEngine::from_text(text);
  if (!engine.has_value()) {
    std::printf("ENGINE FAILED: %s\n", engine.error().to_string().c_str());
    return;
  }
  std::printf("  rl_script: ( 40%% * r_4 + 30%% * r1 + 30%% * r3 ) & r2\n\n");
  bench::Table table({"r4", "r1", "r3", "r2", "cmp_rule state"});
  struct Case {
    const char* r4;
    const char* r1;
    const char* r3;
    const char* r2;
    double v4, v1, v3, v2;  // sensor values: 1.5=busy, 3=overloaded, 0=free
  };
  const Case cases[] = {
      {"busy", "busy", "busy", "busy", 1.5, 1.5, 1.5, 1.5},
      {"overld", "overld", "overld", "busy", 3, 3, 3, 1.5},
      {"busy", "busy", "busy", "overld", 1.5, 1.5, 1.5, 3},
      {"overld", "overld", "overld", "overld", 3, 3, 3, 3},
      {"overld", "overld", "overld", "free", 3, 3, 3, 0},
      {"free", "free", "free", "overld", 0, 0, 0, 3},
  };
  rules::MapSensorSource sensors;
  for (const Case& c : cases) {
    sensors.set("s4", c.v4);
    sensors.set("s1", c.v1);
    sensors.set("s3", c.v3);
    sensors.set("s2", c.v2);
    table.add_row({c.r4, c.r1, c.r3, c.r2,
                   std::string(rules::to_string(*engine->evaluate(5, sensors)))});
  }
  table.print();
  std::printf(
      "\n  Paper semantics check: busy&busy=busy, one busy other overloaded"
      " = busy, both overloaded = overloaded.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  // This bench drives the rule engine directly — no simulation, no runtime
  // — so the uniform --trace-out/--metrics-out flags export the harness's
  // own telemetry rather than a cluster trace.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  for (const char* section : {"table1", "figure3", "figure4"}) {
    tracer.instant("bench.section", "bench", "table1_states",
                   {{"name", std::string(section)}});
    metrics.counter("bench.sections").inc();
  }
  print_table1();
  print_figure3();
  print_figure4();
  std::printf("\n");
  bench::export_obs(tracer, metrics);
  return 0;
}
