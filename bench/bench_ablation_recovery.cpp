// Ablation: live migration vs checkpointing vs static re-assignment.
//
// The paper's introduction motivates runtime rescheduling against the
// state of the art: "In traditional job scheduling systems, task allocation
// is static.  Once a task is assigned, it will stay where it is until it
// finishes or restarts at another site from the beginning...  a
// reassignment means the loss of all partial results", and §2 reviews
// checkpointing-based systems (Condor) that can only restart from saved
// snapshots.  This bench quantifies the three options on the same event:
// a host must give up a half-finished long-running job at t = T.
//
//   restart    - kill and start from scratch elsewhere (static allocation)
//   checkpoint - periodic checkpoints to stable storage; restore the last
//   migrate    - HPCM live migration (no lost work, overlapped restore)

#include "common.hpp"

#include "ars/hpcm/migration.hpp"

using namespace ars;

namespace {

struct Recovery {
  std::string method;
  double total = 0.0;          // job completion time
  double lost_work = 0.0;      // reference-seconds of redone computation
  double overhead_time = 0.0;  // time spent on checkpoints / migration
  bool correct = false;
};

constexpr int kIterations = 200;       // 200 ref-seconds of work
constexpr double kEventAt = 100.3;     // the host is lost mid-run
constexpr double kStateBytes = 50.0e6; // job footprint

struct Rig {
  Rig() : net(engine), mpi(engine, net), middleware(mpi, obs_options()) {
    tracer.set_clock([this] { return engine.now(); });
    for (const char* name : {"ws1", "ws2"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts.push_back(std::make_unique<host::Host>(engine, spec));
      net.attach(*hosts.back());
    }
  }
  void run_to_completion() {
    while (mpi.live_procs() > 0) {
      engine.run_until(engine.now() + 25.0);
    }
  }
  sim::Engine engine;
  net::Network net;
  std::vector<std::unique_ptr<host::Host>> hosts;
  mpi::MpiSystem mpi;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  hpcm::MigrationEngine middleware;

 private:
  hpcm::MigrationEngine::Options obs_options() {
    hpcm::MigrationEngine::Options options;
    options.tracer = &tracer;
    options.metrics = &metrics;
    return options;
  }
};

struct JobResult {
  double finished_at = 0.0;
  int executed = 0;
  bool correct = false;
};

hpcm::MigrationEngine::MigratableApp job(JobResult* out, int checkpoint_every) {
  return [out, checkpoint_every](mpi::Proc& proc,
                                 hpcm::MigrationContext& ctx) -> sim::Task<> {
    std::int64_t i = 0;
    if (ctx.restored()) {
      i = *ctx.state().get_int("i");
    }
    ctx.on_save([&ctx, &i] {
      ctx.state().set_int("i", i);
      ctx.state().set_opaque("heap",
                             static_cast<std::uint64_t>(kStateBytes));
    });
    for (; i < kIterations; ++i) {
      co_await ctx.poll_point();
      if (checkpoint_every > 0 && i > 0 && i % checkpoint_every == 0) {
        co_await ctx.checkpoint();
      }
      co_await proc.compute(1.0);
      ++out->executed;
    }
    out->finished_at = proc.system().engine().now();
    out->correct = true;
  };
}

Recovery run_restart() {
  Rig rig;
  JobResult result;
  const auto id = rig.middleware.launch("ws1", job(&result, 0), "job",
                                        hpcm::ApplicationSchema{"job"});
  rig.engine.schedule_at(kEventAt, [&] {
    rig.middleware.crash(id);
    rig.middleware.relaunch("job.0", "ws2");
  });
  rig.run_to_completion();
  Recovery r;
  r.method = "restart from scratch";
  r.total = result.finished_at;
  r.lost_work = result.executed - kIterations;
  r.correct = result.correct;
  bench::export_obs(rig.tracer, rig.metrics, "restart");
  return r;
}

Recovery run_checkpoint(int every) {
  Rig rig;
  JobResult result;
  const auto id = rig.middleware.launch("ws1", job(&result, every), "job",
                                        hpcm::ApplicationSchema{"job"});
  rig.engine.schedule_at(kEventAt, [&] {
    rig.middleware.crash(id);
    rig.middleware.relaunch("job.0", "ws2");
  });
  rig.run_to_completion();
  Recovery r;
  r.method = "checkpoint every " + std::to_string(every) + "s";
  r.total = result.finished_at;
  r.lost_work = result.executed - kIterations;
  // Each write moves the full footprint to stable storage.
  r.overhead_time = rig.middleware.checkpoints().writes() * kStateBytes /
                    rig.middleware.options().checkpoint_store_bps;
  r.correct = result.correct;
  bench::export_obs(rig.tracer, rig.metrics,
                    "checkpoint" + std::to_string(every));
  return r;
}

Recovery run_migration() {
  Rig rig;
  JobResult result;
  const auto id = rig.middleware.launch("ws1", job(&result, 0), "job",
                                        hpcm::ApplicationSchema{"job"});
  rig.engine.schedule_at(kEventAt,
                         [&] { rig.middleware.request_migration(id, "ws2"); });
  rig.run_to_completion();
  Recovery r;
  r.method = "HPCM live migration";
  r.total = result.finished_at;
  r.lost_work = result.executed - kIterations;
  if (!rig.middleware.history().empty()) {
    r.overhead_time = rig.middleware.history().front().total();
  }
  r.correct = result.correct;
  bench::export_obs(rig.tracer, rig.metrics, "migrate");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  bench::heading(
      "Ablation: how to vacate a host mid-job (the paper's motivation)");
  std::printf(
      "  A %d-second job must leave its host at t=%.0f s (half done),\n"
      "  carrying a %.0f MB memory footprint.\n",
      kIterations, kEventAt, kStateBytes / 1e6);

  const Recovery restart = run_restart();
  const Recovery chk20 = run_checkpoint(20);
  const Recovery chk5 = run_checkpoint(5);
  const Recovery migrate = run_migration();

  bench::Table table({"method", "completion (s)", "redone work (s)",
                      "overhead (s)", "result"});
  for (const Recovery* r : {&restart, &chk20, &chk5, &migrate}) {
    table.add_row({r->method, bench::fmt(r->total, 2),
                   bench::fmt(r->lost_work, 0),
                   bench::fmt(r->overhead_time, 2),
                   r->correct ? "correct" : "WRONG"});
  }
  table.print();

  std::printf(
      "\n  \"a reassignment means the loss of all partial results\" -- the\n"
      "  static restart redoes %.0f s of work; well-tuned checkpointing\n"
      "  trades steady overhead for a bounded tail; live migration redoes\n"
      "  nothing and pays only %.2f s once.  Note the anti-pattern: at a\n"
      "  5 s period the checkpoint overhead (%.0f s) exceeds what a crash\n"
      "  could ever lose -- over-checkpointing a %0.f MB footprint is\n"
      "  worse than restarting.\n",
      restart.lost_work, migrate.overhead_time, chk5.overhead_time,
      kStateBytes / 1e6);

  const bool shape = migrate.total < chk20.total &&
                     chk20.total < restart.total && migrate.lost_work == 0 &&
                     restart.lost_work > 90 && restart.correct &&
                     chk20.correct && chk5.correct && migrate.correct;
  std::printf("  Shape check (migrate < tuned checkpoint < restart) -> %s\n",
              shape ? "REPRODUCED" : "NOT reproduced");
  return shape ? 0 : 1;
}
