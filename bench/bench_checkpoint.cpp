// Micro benchmarks (google-benchmark) for the shared checkpoint store
// (DESIGN.md §17): a lone write through the fluid-flow machinery, an
// N-writer storm where every completion re-rates the survivors, and the
// cooperative admission scheduler's request/release hot path.  What's
// measured is simulator cost — events and re-rating arithmetic — not the
// simulated transfer time, so a storm that models minutes of I/O should
// still bench in microseconds.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common.hpp"

#include "ars/ckpt/io.hpp"
#include "ars/ckpt/strategy.hpp"
#include "ars/sim/engine.hpp"

namespace {

using namespace ars;

void note_case(benchmark::State& state, const char* name) {
  if (auto* metrics = bench::obs_metrics_sink()) {
    metrics->counter("bench.iterations", {{"bench", name}})
        .inc(static_cast<double>(state.iterations()));
  }
  if (auto* tracer = bench::obs_trace_sink()) {
    tracer->instant("bench.case", "bench", name);
  }
}

/// One write, no contention: the floor every checkpoint pays (begin,
/// single completion event, commit callback).
void BM_CkptSingleWrite(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    ckpt::IoOptions options;
    options.aggregate_bps = 40.0e6;
    ckpt::SharedStore store{engine, options};
    int commits = 0;
    store.begin_write("job0.0", "host0", 80'000'000,
                      [&](const ckpt::WriteOutcome&) { ++commits; },
                      [](const ckpt::WriteOutcome&) {});
    engine.run();
    benchmark::DoNotOptimize(commits);
  }
  note_case(state, "BM_CkptSingleWrite");
}
BENCHMARK(BM_CkptSingleWrite);

/// N staggered writers on one saturated store: each arrival and each
/// completion re-rates everyone else, so event count grows with N^0..N —
/// this is the interference machinery's scaling curve.
void BM_CkptWriterStorm(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    ckpt::IoOptions options;
    options.aggregate_bps = 40.0e6;
    ckpt::SharedStore store{engine, options};
    int commits = 0;
    for (int i = 0; i < writers; ++i) {
      // Staggered starts: every arrival lands mid-flight of the others.
      engine.schedule_at(static_cast<double>(i) * 0.25, [&store, &commits,
                                                         i] {
        store.begin_write("job" + std::to_string(i) + ".0",
                          "host" + std::to_string(i % 8), 40'000'000,
                          [&commits](const ckpt::WriteOutcome&) { ++commits; },
                          [](const ckpt::WriteOutcome&) {});
      });
    }
    engine.run();
    benchmark::DoNotOptimize(commits);
  }
  state.SetItemsProcessed(state.iterations() * writers);
  note_case(state, "BM_CkptWriterStorm");
}
BENCHMARK(BM_CkptWriterStorm)->Arg(4)->Arg(16)->Arg(64);

/// The cooperative admission hot path: request -> admit/defer -> release
/// across a rotating population, with the risk-based preemption scan on
/// every decision.
void BM_CkptAdmissionCycle(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  sim::Engine engine;
  ckpt::IoScheduler scheduler;
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    names.push_back("job" + std::to_string(i) + ".0");
  }
  std::size_t turn = 0;
  for (auto _ : state) {
    const std::string& name = names[turn % names.size()];
    const double risk = 0.1 * static_cast<double>(turn % 40);
    const ckpt::Admission admission =
        scheduler.request(name, "host0", risk, engine.now());
    if (admission.verb == ckpt::Admission::Verb::kAdmit) {
      scheduler.release(name);
    }
    benchmark::DoNotOptimize(admission.retry_after);
    ++turn;
  }
  state.SetItemsProcessed(state.iterations());
  note_case(state, "BM_CkptAdmissionCycle");
}
BENCHMARK(BM_CkptAdmissionCycle)->Arg(4)->Arg(32);

}  // namespace

ARS_BENCH_MAIN();
