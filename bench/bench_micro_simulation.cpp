// Micro benchmarks of the simulated substrates: MPI point-to-point and
// collectives, CPU processor-sharing model, network fluid model, and a full
// HPCM migration — wall-clock cost of simulating each, for ablation of the
// DES design choice.

#include <benchmark/benchmark.h>

#include "common.hpp"

#include <algorithm>

#include "ars/hpcm/migration.hpp"
#include "ars/mpi/mpi.hpp"
#include "ars/net/network.hpp"

namespace {

using namespace ars;

struct Cluster {
  explicit Cluster(int n) : net(engine), mpi(engine, net) {
    for (int i = 0; i < n; ++i) {
      host::HostSpec spec;
      spec.name = "ws" + std::to_string(i + 1);
      hosts.push_back(std::make_unique<host::Host>(engine, spec));
      net.attach(*hosts.back());
    }
  }
  /// Run until every MPI process has exited (the load-average samplers
  /// never drain, so a plain run() would not terminate).
  void run_to_completion() {
    while (mpi.live_procs() > 0) {
      engine.run_until(engine.now() + 10.0);
    }
  }

  sim::Engine engine;
  std::vector<std::unique_ptr<host::Host>> hosts;
  net::Network net;
  mpi::MpiSystem mpi;
};

// The event-queue throughput number the perf baseline tracks: everything
// below (MPI, CPU, network, migration) is events through this queue.
void BM_EngineEventQueue(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineEventQueue)->Arg(1000)->Arg(10000);

void BM_MpiPingPong(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster{2};
    auto app = [rounds](mpi::Proc& self) -> sim::Task<> {
      const mpi::Comm world = self.world();
      for (int i = 0; i < rounds; ++i) {
        if (self.world_rank() == 0) {
          co_await self.send(world, 1, 0, 1024.0);
          (void)co_await self.recv(world, 1, 1);
        } else {
          (void)co_await self.recv(world, 0, 0);
          co_await self.send(world, 0, 1, 1024.0);
        }
      }
    };
    cluster.mpi.launch_world({"ws1", "ws2"}, app, "pp");
    cluster.run_to_completion();
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_MpiPingPong)->Arg(100)->Arg(1000);

void BM_MpiAllreduce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster{n};
    std::vector<std::string> hosts;
    for (int i = 0; i < n; ++i) {
      hosts.push_back("ws" + std::to_string(i + 1));
    }
    auto app = [](mpi::Proc& self) -> sim::Task<> {
      for (int i = 0; i < 10; ++i) {
        std::vector<double> mine{1.0};
        (void)co_await self.allreduce_sum(self.world(), std::move(mine), 8.0);
      }
    };
    cluster.mpi.launch_world(hosts, app, "ar");
    cluster.run_to_completion();
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_MpiAllreduce)->Arg(4)->Arg(8);

void BM_ProcessorSharing(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    host::HostSpec spec;
    spec.name = "ws1";
    host::Host h{engine, spec};
    auto body = [](host::Host& target) -> sim::Task<> {
      for (int i = 0; i < 20; ++i) {
        co_await target.cpu().compute(0.5);
      }
    };
    std::vector<sim::Fiber> fibers;
    for (int i = 0; i < jobs; ++i) {
      fibers.push_back(sim::Fiber::spawn(engine, body(h)));
    }
    while (std::any_of(fibers.begin(), fibers.end(),
                       [](const sim::Fiber& f) { return !f.done(); })) {
      engine.run_until(engine.now() + 10.0);
    }
  }
  state.SetItemsProcessed(state.iterations() * jobs * 20);
}
BENCHMARK(BM_ProcessorSharing)->Arg(4)->Arg(32);

void BM_NetworkSharedTransfers(benchmark::State& state) {
  const int transfers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster{4};
    auto mover = [](net::Network& network) -> sim::Task<> {
      for (int i = 0; i < 10; ++i) {
        (void)co_await network.transfer("ws1", "ws2", 125000.0);
      }
    };
    std::vector<sim::Fiber> fibers;
    for (int i = 0; i < transfers; ++i) {
      fibers.push_back(sim::Fiber::spawn(cluster.engine, mover(cluster.net)));
    }
    while (std::any_of(fibers.begin(), fibers.end(),
                       [](const sim::Fiber& f) { return !f.done(); })) {
      cluster.engine.run_until(cluster.engine.now() + 10.0);
    }
  }
  state.SetItemsProcessed(state.iterations() * transfers * 10);
}
BENCHMARK(BM_NetworkSharedTransfers)->Arg(2)->Arg(16);

void BM_FullMigration(benchmark::State& state) {
  // Wall-clock cost of simulating one complete HPCM migration (spawn,
  // merge, eager + background transfer of ~10 MB, takeover).
  for (auto _ : state) {
    Cluster cluster{2};
    // Attach the process-wide obs sinks (null unless --trace-out/
    // --metrics-out was requested) so the export holds real migration
    // spans and phase histograms from the final iterations.
    hpcm::MigrationEngine::Options obs_options;
    obs_options.tracer = bench::obs_trace_sink();
    obs_options.metrics = bench::obs_metrics_sink();
    if (obs_options.tracer != nullptr) {
      obs_options.tracer->set_clock(
          [&cluster] { return cluster.engine.now(); });
    }
    hpcm::MigrationEngine middleware{cluster.mpi, obs_options};
    auto app = [](mpi::Proc& proc, hpcm::MigrationContext& ctx) -> sim::Task<> {
      std::int64_t i = ctx.restored() ? *ctx.state().get_int("i") : 0;
      ctx.on_save([&ctx, &i] {
        ctx.state().set_int("i", i);
        ctx.state().set_opaque("heap", 10u << 20);
      });
      for (; i < 30; ++i) {
        co_await ctx.poll_point();
        co_await proc.compute(1.0);
      }
    };
    hpcm::ApplicationSchema schema{"bench"};
    const auto id = middleware.launch("ws1", app, "bench", schema);
    cluster.engine.schedule_at(5.0, [&middleware, id] {
      middleware.request_migration(id, "ws2");
    });
    cluster.run_to_completion();
    if (middleware.history().empty() ||
        !middleware.history().front().succeeded) {
      state.SkipWithError("migration did not complete");
      break;
    }
  }
}
BENCHMARK(BM_FullMigration);

void BM_FullMigrationLargeState(benchmark::State& state) {
  // Simulated freeze window (seconds the application is stopped) for one
  // migration of a large block-structured state: Arg(0) = stop-and-copy,
  // Arg(1) = iterative pre-copy.  Manual time is *simulated* seconds, so
  // the numbers — and the precopy_freeze_reduction ratio derived from them
  // — are stable across machines.  --state-mb=N overrides the default
  // 8 MiB state (the pinned baseline configuration).
  const bool precopy = state.range(0) != 0;
  const int state_mb =
      bench::bench_state_mb() > 0 ? bench::bench_state_mb() : 8;
  const int blocks = state_mb * 4;             // 256 KiB blocks
  constexpr int kBlockDoubles = 32 * 1024;     // 256 KiB of doubles
  for (auto _ : state) {
    Cluster cluster{2};
    hpcm::MigrationEngine::Options options;
    options.precopy = precopy;
    hpcm::MigrationEngine middleware{cluster.mpi, options};
    auto app = [blocks](mpi::Proc& proc,
                        hpcm::MigrationContext& ctx) -> sim::Task<> {
      std::int64_t i = ctx.restored() ? *ctx.state().get_int("i") : 0;
      std::vector<std::vector<double>> data(
          static_cast<std::size_t>(blocks),
          std::vector<double>(kBlockDoubles, 0.0));
      if (ctx.restored()) {
        for (int b = 0; b < blocks; ++b) {
          data[static_cast<std::size_t>(b)] =
              *ctx.state().get_doubles("block" + std::to_string(b));
        }
      }
      ctx.on_save([&ctx, &i, &data, blocks] {
        ctx.state().set_int("i", i);
        for (int b = 0; b < blocks; ++b) {
          ctx.state().set_doubles("block" + std::to_string(b),
                                  data[static_cast<std::size_t>(b)]);
        }
      });
      for (; i < 30; ++i) {
        co_await ctx.poll_point();
        co_await proc.compute(1.0);
        // One block rewritten per iteration: the write set pre-copy chases.
        data[static_cast<std::size_t>(i) %
             static_cast<std::size_t>(blocks)][0] += 1.0;
      }
    };
    hpcm::ApplicationSchema schema{"bench"};
    const auto id = middleware.launch("ws1", app, "bench", schema);
    cluster.engine.schedule_at(5.0, [&middleware, id] {
      middleware.request_migration(id, "ws2");
    });
    cluster.run_to_completion();
    if (middleware.history().empty() ||
        !middleware.history().front().succeeded) {
      state.SkipWithError("migration did not complete");
      break;
    }
    state.SetIterationTime(middleware.history().front().freeze_window());
  }
}
BENCHMARK(BM_FullMigrationLargeState)->Arg(0)->Arg(1)->UseManualTime();

}  // namespace

ARS_BENCH_MAIN();
