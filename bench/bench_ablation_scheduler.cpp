// Ablation (ours, not in the paper): the destination-choice strategy.
//
// The paper's registry/scheduler uses FIRST FIT — "chooses the first host,
// which is ready and owns all the resources required".  This bench pits it
// against best-fit (least loaded) and random-fit on a scenario where the
// first eligible host is mediocre: ws2 passes the destination conditions
// (load just below 1) but an idle ws4 exists further down the list.
// First-fit parks the application on the mediocre host and finishes later;
// best-fit finds the idle one.  The evacuation path is also ablated: with
// two processes to place, first-fit stacks both on one host, best-fit
// spreads them.

#include "common.hpp"

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"

using namespace ars;

namespace {

struct StrategyOutcome {
  std::string name;
  double total = 0.0;
  std::string destination = "-";
  bool correct = false;
};

StrategyOutcome run_overload(registry::DestinationStrategy strategy,
                             const std::string& name) {
  core::ClusterConfig config = core::make_cluster(4, rules::paper_policy2());
  config.strategy = strategy;
  core::ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();

  // ws2: mediocre destination (duty ~0.6 -> load ~0.86, still "free").
  host::DutyCycleHog ws2_load{runtime.host("ws2"), {.duty = 0.6}};
  ws2_load.start();
  // ws3: also mediocre.
  host::DutyCycleHog ws3_load{runtime.host("ws3"), {.duty = 0.5}};
  ws3_load.start();
  // ws4: idle.

  apps::TestTree::Params params;
  params.levels = 17;  // ~98 s of work
  apps::TestTree::Result app;
  runtime.launch_app("ws1", apps::TestTree::make(params, &app), "test_tree",
                     apps::TestTree::schema(params));
  host::CpuHog additional{runtime.host("ws1"), {.threads = 3}};
  runtime.engine().schedule_at(15.0, [&] { additional.start(); });
  runtime.run_until(3000.0);

  StrategyOutcome outcome;
  outcome.name = name;
  outcome.total = app.finished_at;
  outcome.correct =
      app.finished && app.sum == apps::TestTree::expected_sum(params);
  for (const auto& t : runtime.middleware().history()) {
    if (t.succeeded) {
      outcome.destination = t.destination;
    }
  }
  bench::export_obs(runtime, name);
  return outcome;
}

struct EvacuationOutcome {
  std::string name;
  std::set<std::string> destinations;
  double slowest_finish = 0.0;
};

EvacuationOutcome run_evacuation(registry::DestinationStrategy strategy,
                                 const std::string& name) {
  core::ClusterConfig config = core::make_cluster(4, rules::paper_policy2());
  config.strategy = strategy;
  core::ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();

  apps::TestTree::Params params;
  params.levels = 17;
  apps::TestTree::Result a;
  apps::TestTree::Result b;
  runtime.launch_app("ws1", apps::TestTree::make(params, &a), "tree_a",
                     apps::TestTree::schema(params, "tree_a"));
  runtime.launch_app("ws1", apps::TestTree::make(params, &b), "tree_b",
                     apps::TestTree::schema(params, "tree_b"));
  // Give the second placement fresh load data: heartbeats every 2 s.
  runtime.engine().schedule_at(30.0,
                               [&] { runtime.evacuate_host("ws1", "drain"); });
  runtime.run_until(3000.0);

  EvacuationOutcome outcome;
  outcome.name = name;
  for (const auto& r : {&a, &b}) {
    if (r->finished) {
      outcome.destinations.insert(r->finished_on);
      outcome.slowest_finish = std::max(outcome.slowest_finish,
                                        r->finished_at);
    }
  }
  bench::export_obs(runtime, "evac-" + name);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  bench::heading("Ablation: destination-choice strategy (paper: first fit)");

  bench::subheading(
      "overloaded source, mediocre-but-eligible early hosts, idle late host");
  bench::Table table({"strategy", "migrated to", "total exec (s)", "result"});
  const StrategyOutcome first =
      run_overload(registry::DestinationStrategy::kFirstFit, "first-fit");
  const StrategyOutcome best =
      run_overload(registry::DestinationStrategy::kBestFit, "best-fit");
  const StrategyOutcome random =
      run_overload(registry::DestinationStrategy::kRandomFit, "random-fit");
  for (const StrategyOutcome* o : {&first, &best, &random}) {
    table.add_row({o->name, o->destination, bench::fmt(o->total, 2),
                   o->correct ? "correct" : "WRONG"});
  }
  table.print();

  bench::subheading("evacuating two processes at once");
  bench::Table evac_table(
      {"strategy", "distinct destinations", "slowest finish (s)"});
  const EvacuationOutcome evac_first =
      run_evacuation(registry::DestinationStrategy::kFirstFit, "first-fit");
  const EvacuationOutcome evac_best =
      run_evacuation(registry::DestinationStrategy::kBestFit, "best-fit");
  for (const EvacuationOutcome* o : {&evac_first, &evac_best}) {
    evac_table.add_row({o->name, std::to_string(o->destinations.size()),
                        bench::fmt(o->slowest_finish, 2)});
  }
  evac_table.print();

  std::printf(
      "\n  first-fit is what the paper ships: simple, O(hosts), and good\n"
      "  enough when a free host really is free.  best-fit buys %.1f%%\n"
      "  on the skewed scenario at the cost of needing fresh load data.\n",
      100.0 * (first.total - best.total) / first.total);

  const bool ok = first.correct && best.correct && random.correct &&
                  best.total <= first.total + 1.0;
  return ok ? 0 : 1;
}
