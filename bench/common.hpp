#pragma once
// Shared helpers for the experiment harnesses: table printing, the
// paper-vs-measured report format used by every bench binary, and the
// opt-in ars::obs trace/metrics export.  Every bench binary — plain and
// google-benchmark alike — honours `--trace-out=FILE` / `--metrics-out=FILE`
// (or the ARS_TRACE_OUT / ARS_METRICS_OUT environment variables as
// fallbacks) through the helpers here.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"

namespace ars::bench {

inline void heading(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Fixed-width table printer: first row is the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : widths_(header.size()) {
    rows_.push_back(std::move(header));
  }

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() {
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths_.size(); ++i) {
        widths_[i] = std::max(widths_[i], row[i].size());
      }
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::printf("  ");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths_[i]),
                    rows_[r][i].c_str());
      }
      std::printf("\n");
      if (r == 0) {
        std::printf("  ");
        for (std::size_t i = 0; i < widths_.size(); ++i) {
          std::printf("%s  ", std::string(widths_[i], '-').c_str());
        }
        std::printf("\n");
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

inline std::string fmt(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

/// "paper X / measured Y" comparison line.
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& unit) {
  std::printf("  %-44s paper %10.3f %-6s measured %10.3f %s\n", what.c_str(),
              paper, unit.c_str(), measured, unit.c_str());
}

// -- ars::obs export ---------------------------------------------------------

/// Where to dump the observability artifacts; empty means "don't".
struct ObsExport {
  std::string trace_out;    // Chrome trace_event JSON (chrome://tracing)
  std::string metrics_out;  // Prometheus text exposition
};

inline ObsExport& obs_export() {
  static ObsExport options = [] {
    ObsExport o;
    if (const char* t = std::getenv("ARS_TRACE_OUT")) {
      o.trace_out = t;
    }
    if (const char* m = std::getenv("ARS_METRICS_OUT")) {
      o.metrics_out = m;
    }
    return o;
  }();
  return options;
}

/// Consume a --trace-out=FILE / --metrics-out=FILE flag (they override the
/// environment variables).  Returns true when `arg` was an obs flag —
/// rewrite_gbench_args uses this to strip them before google-benchmark sees
/// the argv.
inline bool consume_obs_flag(std::string_view arg) {
  if (arg.starts_with("--trace-out=")) {
    obs_export().trace_out = arg.substr(sizeof("--trace-out=") - 1);
    return true;
  }
  if (arg.starts_with("--metrics-out=")) {
    obs_export().metrics_out = arg.substr(sizeof("--metrics-out=") - 1);
    return true;
  }
  return false;
}

/// Consume --trace-out=/--metrics-out= flags; unknown arguments are left
/// alone.
inline void init_obs_export(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    consume_obs_flag(argv[i]);
  }
}

// -- sharded-run knobs -------------------------------------------------------

/// Shard-count override for benchmarks with a sharded variant: --shards=N
/// (or ARS_BENCH_SHARDS).  0 means "use the benchmark's own per-arg shard
/// counts" — the default sweep that the speedup baselines compare.
inline int& bench_shards() {
  static int shards = [] {
    if (const char* env = std::getenv("ARS_BENCH_SHARDS")) {
      return std::atoi(env);
    }
    return 0;
  }();
  return shards;
}

/// Cluster-plan file for scenario benchmarks: --cluster-plan=FILE (or
/// ARS_BENCH_CLUSTER_PLAN); empty means the benchmark's built-in defaults.
inline std::string& bench_cluster_plan() {
  static std::string path = [] {
    const char* env = std::getenv("ARS_BENCH_CLUSTER_PLAN");
    return std::string(env != nullptr ? env : "");
  }();
  return path;
}

/// Migratable-state size for the migration benchmarks, in MiB:
/// --state-mb=N (or ARS_BENCH_STATE_MB).  0 means "use the benchmark's
/// default size" — the pinned baseline configuration.
inline int& bench_state_mb() {
  static int mb = [] {
    if (const char* env = std::getenv("ARS_BENCH_STATE_MB")) {
      return std::atoi(env);
    }
    return 0;
  }();
  return mb;
}

/// Consume a --shards=N / --cluster-plan=FILE / --state-mb=N flag; returns
/// true when `arg` was one (rewrite_gbench_args strips them like the obs
/// flags).
inline bool consume_shard_flag(std::string_view arg) {
  if (arg.starts_with("--shards=")) {
    bench_shards() = std::atoi(std::string(arg.substr(sizeof("--shards=") - 1)).c_str());
    return true;
  }
  if (arg.starts_with("--cluster-plan=")) {
    bench_cluster_plan() = arg.substr(sizeof("--cluster-plan=") - 1);
    return true;
  }
  if (arg.starts_with("--state-mb=")) {
    bench_state_mb() = std::atoi(std::string(arg.substr(sizeof("--state-mb=") - 1)).c_str());
    return true;
  }
  return false;
}

/// Insert a label before the path's extension ("trace.json" + "with" ->
/// "trace.with.json") so harnesses that run several configurations can keep
/// all of them.
inline std::string labelled_path(const std::string& path,
                                 const std::string& label) {
  if (label.empty()) {
    return path;
  }
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) {
    return path + "." + label;
  }
  return path.substr(0, dot) + "." + label + path.substr(dot);
}

/// Create the directory an export path points into; best-effort (a failed
/// write is reported by the caller anyway).
inline void ensure_parent_dir(const std::string& path) {
  const std::filesystem::path target{path};
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
  }
}

/// Dump a tracer/metrics pair to the configured files.
inline void export_obs(const obs::Tracer& tracer,
                       const obs::MetricsRegistry& metrics,
                       const std::string& label = "") {
  const ObsExport& options = obs_export();
  if (!options.trace_out.empty()) {
    const std::string path = labelled_path(options.trace_out, label);
    ensure_parent_dir(path);
    std::ofstream out(path);
    out << tracer.to_chrome_trace();
    if (out) {
      std::printf("  [obs] wrote Chrome trace to %s (%zu events)\n",
                  path.c_str(), tracer.events().size());
    } else {
      std::fprintf(stderr, "  [obs] FAILED to write trace to %s\n",
                   path.c_str());
    }
  }
  if (!options.metrics_out.empty()) {
    const std::string path = labelled_path(options.metrics_out, label);
    ensure_parent_dir(path);
    std::ofstream out(path);
    out << metrics.to_prometheus();
    if (out) {
      std::printf("  [obs] wrote metrics to %s (%zu series)\n", path.c_str(),
                  metrics.series_count());
    } else {
      std::fprintf(stderr, "  [obs] FAILED to write metrics to %s\n",
                   path.c_str());
    }
  }
}

/// Dump `runtime`'s tracer/metrics to the configured files.
template <typename Runtime>
void export_obs(Runtime& runtime, const std::string& label = "") {
  export_obs(runtime.tracer(), runtime.metrics(), label);
}

// -- obs sinks for google-benchmark binaries ---------------------------------
//
// The micro benches build a fresh rig per iteration, so there is no runtime
// alive at the end to export.  Instead they attach these process-wide sinks
// to their rigs; ARS_BENCH_MAIN() exports whatever accumulated (the tracer
// is a ring, so the trace holds the tail of the run).  The sinks are nullptr
// when no export was requested — the instrumented components then skip all
// recording and the measured numbers are undisturbed.

inline obs::Tracer& gbench_tracer() {
  static obs::Tracer tracer;
  return tracer;
}

inline obs::MetricsRegistry& gbench_metrics() {
  static obs::MetricsRegistry metrics;
  return metrics;
}

inline obs::Tracer* obs_trace_sink() {
  return obs_export().trace_out.empty() ? nullptr : &gbench_tracer();
}

inline obs::MetricsRegistry* obs_metrics_sink() {
  return obs_export().metrics_out.empty() ? nullptr : &gbench_metrics();
}

inline void export_gbench_obs() {
  const ObsExport& options = obs_export();
  if (options.trace_out.empty() && options.metrics_out.empty()) {
    return;
  }
  export_obs(gbench_tracer(), gbench_metrics());
}

// -- google-benchmark argv handling ------------------------------------------

/// Translate our stable `--json-out=FILE` flag (or the ARS_BENCH_JSON_OUT
/// environment variable) into google-benchmark's `--benchmark_out=` /
/// `--benchmark_out_format=json` pair, and strip the `--trace-out=` /
/// `--metrics-out=` obs flags (consumed into obs_export()), leaving every
/// other argument alone.  Returns a rewritten argv (storage lives for the
/// program's lifetime) and updates `argc` in place; use through
/// ARS_BENCH_MAIN() below.
inline char** rewrite_gbench_args(int* argc, char** argv) {
  static std::vector<std::string> storage;
  static std::vector<char*> pointers;
  std::string json_out;
  if (const char* env = std::getenv("ARS_BENCH_JSON_OUT")) {
    json_out = env;
  }
  storage.clear();
  for (int i = 0; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--json-out=")) {
      json_out = arg.substr(sizeof("--json-out=") - 1);
    } else if (i > 0 && (consume_obs_flag(arg) || consume_shard_flag(arg))) {
      // stripped: google-benchmark would reject it as unrecognized
    } else {
      storage.emplace_back(arg);
    }
  }
  if (!json_out.empty()) {
    storage.push_back("--benchmark_out=" + json_out);
    storage.push_back("--benchmark_out_format=json");
  }
  pointers.clear();
  for (std::string& arg : storage) {
    pointers.push_back(arg.data());
  }
  pointers.push_back(nullptr);
  *argc = static_cast<int>(storage.size());
  return pointers.data();
}

}  // namespace ars::bench

/// Drop-in replacement for BENCHMARK_MAIN() that understands --json-out=
/// (and ARS_BENCH_JSON_OUT) plus the uniform --trace-out=/--metrics-out=
/// obs flags; scripts/bench_check.py consumes the emitted JSON.  Only
/// usable in files that include <benchmark/benchmark.h>.
#define ARS_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                       \
    char** args = ::ars::bench::rewrite_gbench_args(&argc, argv);         \
    ::benchmark::Initialize(&argc, args);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, args)) {           \
      return 1;                                                           \
    }                                                                     \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    ::ars::bench::export_gbench_obs();                                    \
    return 0;                                                             \
  }                                                                       \
  static_assert(true, "require a trailing semicolon")
