#pragma once
// Shared helpers for the experiment harnesses: table printing and the
// paper-vs-measured report format used by every bench binary.

#include <cstdio>
#include <string>
#include <vector>

namespace ars::bench {

inline void heading(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Fixed-width table printer: first row is the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : widths_(header.size()) {
    rows_.push_back(std::move(header));
  }

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() {
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths_.size(); ++i) {
        widths_[i] = std::max(widths_[i], row[i].size());
      }
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::printf("  ");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths_[i]),
                    rows_[r][i].c_str());
      }
      std::printf("\n");
      if (r == 0) {
        std::printf("  ");
        for (std::size_t i = 0; i < widths_.size(); ++i) {
          std::printf("%s  ", std::string(widths_[i], '-').c_str());
        }
        std::printf("\n");
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

inline std::string fmt(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

/// "paper X / measured Y" comparison line.
inline void compare(const std::string& what, double paper, double measured,
                    const std::string& unit) {
  std::printf("  %-44s paper %10.3f %-6s measured %10.3f %s\n", what.c_str(),
              paper, unit.c_str(), measured, unit.c_str());
}

}  // namespace ars::bench
