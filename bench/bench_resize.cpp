// Micro benchmark of the malleable resize spawn phase: sequential MPI-2
// DPM spawn (one MPI_Comm_spawn round per new rank) versus the binomial
// tree fan-out (already-spawned ranks recursively spawn the rest).  The
// metric is SIMULATED seconds for the spawn phase of one expand(+k)
// transaction, reported via manual time — the ratio entry in
// BENCH_micro.json asserts the tree measurably beats sequential at 32
// ranks, the claim the strategy knob exists to serve.

#include <benchmark/benchmark.h>

#include "common.hpp"

#include <memory>
#include <string>
#include <vector>

#include "ars/malleable/malleable.hpp"
#include "ars/mpi/mpi.hpp"
#include "ars/net/network.hpp"

namespace {

using namespace ars;

struct Cluster {
  explicit Cluster(int n) : net(engine), mpi(engine, net) {
    for (int i = 0; i < n; ++i) {
      host::HostSpec spec;
      spec.name = "ws" + std::to_string(i + 1);
      hosts.push_back(std::make_unique<host::Host>(engine, spec));
      net.attach(*hosts.back());
    }
  }

  sim::Engine engine;
  std::vector<std::unique_ptr<host::Host>> hosts;
  net::Network net;
  mpi::MpiSystem mpi;
};

/// One expand(+delta) from a single root; returns the spawn phase's
/// simulated duration (and the DPM round count through `rounds`).
double expand_spawn_seconds(int delta, mpi::SpawnStrategy strategy,
                            int* rounds) {
  Cluster cluster{delta + 1};
  malleable::MalleableEngine malleable{cluster.mpi, cluster.net};
  malleable::JobSpec spec;
  spec.name = "job";
  spec.workload.blocks = 2 * (delta + 1);
  spec.workload.work_per_block = 0.05;
  spec.workload.bytes_per_block = 1.0e4;
  spec.workload.iterations = 6;
  spec.workload.sync_bytes = 1024.0;
  spec.max_ranks = delta + 1;
  spec.strategy = strategy;
  malleable.launch(spec, {"ws1"});
  std::vector<std::string> targets;
  targets.reserve(delta);
  for (int i = 0; i < delta; ++i) {
    targets.push_back("ws" + std::to_string(i + 2));
  }
  malleable.request_resize("job", malleable::ResizeVerb::kExpand, delta,
                           targets, strategy);
  while (!malleable.all_finished() &&
         cluster.engine.now() < 10000.0) {
    cluster.engine.run_until(cluster.engine.now() + 10.0);
  }
  if (malleable.history().empty() ||
      malleable.history().front().outcome != malleable::kCommitted) {
    return -1.0;
  }
  const malleable::ResizeOutcome& outcome = malleable.history().front();
  if (rounds != nullptr) {
    *rounds = outcome.spawn_rounds;
  }
  return outcome.spawn_seconds;
}

void run_spawn_bench(benchmark::State& state, mpi::SpawnStrategy strategy) {
  const int delta = static_cast<int>(state.range(0));
  int rounds = 0;
  for (auto _ : state) {
    const double seconds = expand_spawn_seconds(delta, strategy, &rounds);
    if (seconds < 0.0) {
      state.SkipWithError("expand did not commit");
      break;
    }
    state.SetIterationTime(seconds);
  }
  state.counters["dpm_rounds"] = static_cast<double>(rounds);
}

void BM_ResizeSpawnSequential(benchmark::State& state) {
  run_spawn_bench(state, mpi::SpawnStrategy::kSequential);
}
BENCHMARK(BM_ResizeSpawnSequential)->Arg(8)->Arg(32)->UseManualTime();

void BM_ResizeSpawnTree(benchmark::State& state) {
  run_spawn_bench(state, mpi::SpawnStrategy::kTree);
}
BENCHMARK(BM_ResizeSpawnTree)->Arg(8)->Arg(32)->UseManualTime();

}  // namespace

ARS_BENCH_MAIN();
