// Figure 7 + §5.2: system efficiency — CPU utilization timeline around an
// autonomic migration, and the migration phase breakdown.
//
// The paper's script: a migration-enabled process starts at time point 28
// (t=280 s); an additional application then loads the workstation; the
// rescheduler needs ~72 s to be sure the overload is persistent (warm-up +
// load-average inertia), decides in ~2 ms, initializes the destination
// process in ~0.3 s, the poll-point is reached within ~1.4 s, execution
// resumes ~1 s into restoration, and the whole migration takes ~7.5 s.
// An ablation with pre-initialized destination processes (the paper's
// proposed optimization) is run afterwards.

#include "common.hpp"

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"

using namespace ars;

namespace {

constexpr double kAppStart = 280.0;
constexpr double kLoadStart = 428.0;
constexpr double kDuration = 1000.0;

apps::TestTree::Params tree_params() {
  apps::TestTree::Params params;
  params.levels = 18;  // 262143 nodes
  params.build_work_per_knode = 0.20;
  params.fill_work_per_knode = 0.10;
  params.sort_work_per_knode = 1.13;
  params.sum_work_per_knode = 0.10;
  params.chunk_work = 0.6;  // ~2.4 s wall between poll-points under load
  params.node_overhead_bytes = 220;  // ~60 MB of process state
  return params;
}

struct RunOutcome {
  std::vector<core::TraceSample> ws1;
  std::vector<core::TraceSample> ws2;
  hpcm::MigrationTimeline timeline;
  std::vector<registry::Decision> decisions;
  apps::TestTree::Result app;
  bool migrated = false;
};

RunOutcome run(bool pre_initialize) {
  rules::MigrationPolicy policy = rules::paper_policy2();
  policy.set_warmup(40.0);  // + load-average inertia ~= the paper's 72 s
  core::ClusterConfig config = core::make_cluster(2, policy);
  core::ReschedulerRuntime runtime{config};
  if (pre_initialize) {
    runtime.middleware().pre_initialize_on("ws2");
  }
  runtime.start_rescheduler();
  runtime.trace().start(10.0);

  const apps::TestTree::Params params = tree_params();
  RunOutcome outcome;
  runtime.engine().schedule_at(kAppStart, [&] {
    runtime.launch_app("ws1", apps::TestTree::make(params, &outcome.app),
                       "test_tree", apps::TestTree::schema(params));
  });
  host::CpuHog hog{runtime.host("ws1"),
                   {.threads = 3, .duration = 400.0, .name = "additional"}};
  runtime.engine().schedule_at(kLoadStart, [&] { hog.start(); });

  runtime.run_until(kDuration);

  outcome.ws1 = runtime.trace().series("ws1");
  outcome.ws2 = runtime.trace().series("ws2");
  outcome.decisions = runtime.scheduler().decisions();
  if (!runtime.middleware().history().empty()) {
    outcome.timeline = runtime.middleware().history().front();
    outcome.migrated = outcome.timeline.succeeded;
  }
  bench::export_obs(runtime, pre_initialize ? "preinit" : "normal");
  return outcome;
}

void print_cpu_series(const RunOutcome& outcome) {
  bench::subheading("CPU utilization series (10 s points, = paper's x-axis)");
  bench::Table table({"point", "t (s)", "ws1 (source)", "ws2 (dest)"});
  for (std::size_t i = 0; i < outcome.ws1.size() && i < outcome.ws2.size();
       ++i) {
    const double t = outcome.ws1[i].t;
    if (t < kAppStart - 40.0) {
      continue;  // uninteresting quiet lead-in
    }
    if (static_cast<int>(t / 10.0) % 3 != 0 &&
        std::abs(t - outcome.timeline.resumed_at) > 20.0) {
      continue;  // compress, but keep fine detail around the migration
    }
    table.add_row({bench::fmt(t / 10.0, 0), bench::fmt(t, 0),
                   bench::fmt(outcome.ws1[i].cpu_util, 2),
                   bench::fmt(outcome.ws2[i].cpu_util, 2)});
  }
  table.print();
}

int print_phases(const RunOutcome& outcome) {
  if (!outcome.migrated) {
    std::printf("\n  NO MIGRATION HAPPENED - experiment failed\n");
    return 1;
  }
  const hpcm::MigrationTimeline& t = outcome.timeline;
  double decision_latency = 0.002;
  double consult_at = t.requested_at;
  for (const auto& d : outcome.decisions) {
    if (!d.destination.empty()) {
      decision_latency = d.decision_latency;
      consult_at = d.at - d.decision_latency;
      break;
    }
  }

  bench::subheading("Migration phase breakdown (paper 5.2)");
  bench::compare("app start", 280.0, kAppStart, "s");
  bench::compare("additional load starts", 428.0, kLoadStart, "s");
  bench::compare("migration decision made at", 500.0, t.requested_at, "s");
  bench::compare("detect latency after load arrives", 72.0,
                 consult_at - kLoadStart, "s");
  bench::compare("decision-making time", 0.002, decision_latency, "s");
  bench::compare("reach nearest poll-point", 1.4, t.reach_poll_point(), "s");
  bench::compare("initialized process ready", 0.3, t.initialization(), "s");
  bench::compare("resume after restoration starts", 1.0, t.resume_latency(),
                 "s");
  bench::compare("complete migration", 7.5, t.total(), "s");
  std::printf("\n  state moved: %.1f MB; resumed %.2f s BEFORE the "
              "migration ended (overlap, paper 5.2)\n",
              t.state_bytes / 1.0e6, t.completed_at - t.resumed_at);

  const bool shape = t.total() < 15.0 && t.reach_poll_point() <= 3.0 &&
                     t.initialization() >= 0.3 &&
                     t.resumed_at < t.completed_at;
  std::printf("  Shape check (ordering + overlap + magnitudes) -> %s\n",
              shape ? "REPRODUCED" : "NOT reproduced");
  return shape ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  bench::heading("Figure 7. Efficiency - CPU (autonomic migration timeline)");
  const RunOutcome normal = run(/*pre_initialize=*/false);
  print_cpu_series(normal);
  const int rc = print_phases(normal);

  bench::heading(
      "Ablation: pre-initialized destination process (paper 5.2 proposal)");
  const RunOutcome pre = run(/*pre_initialize=*/true);
  if (pre.migrated) {
    bench::compare("initialization, spawn path",
                   normal.timeline.initialization(),
                   normal.timeline.initialization(), "s");
    bench::compare("initialization, pre-initialized",
                   0.05, pre.timeline.initialization(), "s");
    bench::compare("total migration, spawn path", normal.timeline.total(),
                   normal.timeline.total(), "s");
    bench::compare("total migration, pre-initialized",
                   normal.timeline.total() - 0.3, pre.timeline.total(), "s");
    std::printf("\n  Pre-initialization removes the DPM spawn cost "
                "(%.2f s -> %.2f s init).\n",
                normal.timeline.initialization(),
                pre.timeline.initialization());
  } else {
    std::printf("  pre-initialized run did not migrate\n");
  }
  return rc;
}
