// Figure 5 (+ §5.1): rescheduler overhead on the load average.
//
// Two identical 2-workstation runs — ambient daemon activity only — one
// with the full rescheduler deployed (registry + monitor + commander on
// ws1, monitor + commander on ws2), one without.  Performance data is
// gathered every 10 s; the cost of the monitoring cycle (sensor scripts)
// is what shows up as overhead.

#include "common.hpp"

#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/net/commhog.hpp"

using namespace ars;

namespace {

struct RunResult {
  std::vector<core::TraceSample> series;  // ws1 samples
  double load1_avg = 0.0;
  double load5_avg = 0.0;
  double cpu_avg = 0.0;
};

constexpr double kDuration = 600.0;
constexpr double kMeasureFrom = 120.0;  // skip EMA warm-up

RunResult run(bool with_rescheduler) {
  core::ClusterConfig config = core::make_cluster(2, rules::paper_policy2());
  config.ambient_runnable = 0.0;       // ambient load comes from real work
  config.monitor_cycle_cpu_cost = 0.08;  // sensor scripts: ~0.8% CPU
  core::ReschedulerRuntime runtime{config};

  // The paper's idle Sun Blades still show ~0.256 load / ~26% CPU: daemon
  // duty-cycle activity.
  host::DutyCycleHog ambient1{runtime.host("ws1"), {.duty = 0.256}};
  host::DutyCycleHog ambient2{runtime.host("ws2"), {.duty = 0.256}};
  ambient1.start();
  ambient2.start();

  if (with_rescheduler) {
    runtime.start_rescheduler();
  }
  runtime.trace().start(10.0);
  runtime.run_until(kDuration);

  RunResult result;
  result.series = runtime.trace().series("ws1");
  result.load1_avg = runtime.trace().mean("ws1", kMeasureFrom, kDuration,
                                          &core::TraceSample::load1);
  result.load5_avg = runtime.trace().mean("ws1", kMeasureFrom, kDuration,
                                          &core::TraceSample::load5);
  result.cpu_avg = runtime.trace().mean("ws1", kMeasureFrom, kDuration,
                                        &core::TraceSample::cpu_util);
  bench::export_obs(runtime, with_rescheduler ? "with" : "without");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  bench::heading(
      "Figure 5. Overhead - Load Average (with vs without rescheduler)");
  std::printf(
      "  Deployment: registry+monitor+commander on ws1, monitor+commander\n"
      "  on ws2; performance data gathered at a 10 s interval (paper 5.1).\n");

  const RunResult without = run(false);
  const RunResult with = run(true);

  bench::subheading("1-minute load average series on ws1 (every 10 s)");
  bench::Table table({"t (s)", "without rescheduler", "with rescheduler"});
  for (std::size_t i = 0; i < without.series.size() && i < with.series.size();
       i += 3) {  // print every 30 s to keep the table readable
    table.add_row({bench::fmt(without.series[i].t, 0),
                   bench::fmt(without.series[i].load1, 3),
                   bench::fmt(with.series[i].load1, 3)});
  }
  table.print();

  bench::subheading("Scalar summary (steady state)");
  const double load1_overhead =
      100.0 * (with.load1_avg - without.load1_avg) / without.load1_avg;
  const double load5_overhead =
      100.0 * (with.load5_avg - without.load5_avg) / without.load5_avg;
  const double cpu_overhead =
      100.0 * (with.cpu_avg - without.cpu_avg) / without.cpu_avg;

  bench::compare("1-min load avg, without rescheduler", 0.256,
                 without.load1_avg, "");
  bench::compare("1-min load avg, with rescheduler", 0.266, with.load1_avg,
                 "");
  bench::compare("1-min load overhead", 3.9, load1_overhead, "%");
  bench::compare("5-min load overhead", 0.4, load5_overhead, "%");
  bench::compare("CPU utilization, without rescheduler", 0.260,
                 without.cpu_avg, "");
  bench::compare("CPU utilization, with rescheduler", 0.263, with.cpu_avg,
                 "");
  bench::compare("CPU utilization overhead", 3.46, cpu_overhead, "%");

  const bool shape_holds = load1_overhead < 5.0 && load1_overhead > 0.0 &&
                           cpu_overhead < 5.0;
  std::printf("\n  Paper claim: \"the overhead of the rescheduler operation "
              "is usually less that 4%%\" -> %s\n",
              shape_holds ? "REPRODUCED" : "NOT reproduced");
  return shape_holds ? 0 : 1;
}
