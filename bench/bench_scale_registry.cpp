// Registry decision path at cluster scale (google-benchmark).
//
// Builds a registry with 256/1024/4096 registered hosts (~5% free — a busy
// cluster, the regime the state index targets), drives it through deliver()
// so no network simulation is paid for, and times:
//
//   * the scheduling decision on the indexed path (walks the free list,
//     O(eligible)) vs the legacy full-table scan (O(hosts)) — the gap is the
//     tentpole speedup and must stay ~linear in the eligible count;
//   * heartbeat churn: full UpdateMsg state flips (index relink cost) and
//     batched lease renewals (UpdateBatchMsg);
//   * cold registration storms (table + index build).

#include <benchmark/benchmark.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "ars/core/sharded_cluster.hpp"
#include "ars/host/host.hpp"
#include "ars/net/network.hpp"
#include "ars/registry/registry.hpp"
#include "ars/rules/policy.hpp"
#include "ars/sim/engine.hpp"
#include "ars/xmlproto/messages.hpp"

#include "common.hpp"

namespace {

using namespace ars;

std::string host_name(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "h%05d", i);
  return buf;
}

xmlproto::RegisterMsg register_msg(const std::string& name) {
  xmlproto::RegisterMsg reg;
  reg.info.host = name;
  reg.info.memory_bytes = 128ULL << 20;
  reg.info.disk_bytes = 20ULL << 30;
  reg.info.cpu_speed = 1.0;
  reg.monitor_port = 5999;
  reg.commander_port = 6000;
  return reg;
}

xmlproto::UpdateMsg update_msg(const std::string& name,
                               rules::SystemState state) {
  xmlproto::UpdateMsg update;
  update.status.host = name;
  update.status.state = std::string(rules::to_string(state));
  update.status.load1 = state == rules::SystemState::kFree ? 0.2 : 1.8;
  update.status.processes = 60;
  update.status.timestamp = 0.0;
  return update;
}

/// A registry with `hosts` registered workstations, every 20th one free
/// (~5%), the rest busy.  The source host h00000 is busy — a consult from it
/// never offers it as its own destination.
struct ScaledRegistry {
  sim::Engine engine;
  net::Network net{engine};
  std::unique_ptr<host::Host> hub;
  std::unique_ptr<registry::Registry> reg;

  ScaledRegistry(int hosts, bool legacy_scan) {
    host::HostSpec spec;
    spec.name = "hub";
    hub = std::make_unique<host::Host>(engine, spec);
    net.attach(*hub);
    registry::Registry::Config config;
    config.policy = rules::paper_policy2();
    config.audit = registry::AuditMode::kOff;
    config.use_legacy_scan = legacy_scan;
    // Process-wide obs sinks: null (and therefore free) unless an export
    // was requested with --trace-out/--metrics-out.
    config.tracer = bench::obs_trace_sink();
    config.metrics = bench::obs_metrics_sink();
    if (config.tracer != nullptr) {
      config.tracer->set_clock([this] { return engine.now(); });
    }
    reg = std::make_unique<registry::Registry>(*hub, net, config);
    for (int i = 0; i < hosts; ++i) {
      const std::string name = host_name(i);
      reg->deliver(register_msg(name), name);
      const auto state = i % 20 == 7 ? rules::SystemState::kFree
                                     : rules::SystemState::kBusy;
      reg->deliver(update_msg(name, state), name);
    }
  }
};

void decision_bench(benchmark::State& state, bool legacy_scan) {
  const int hosts = static_cast<int>(state.range(0));
  ScaledRegistry scaled{hosts, legacy_scan};
  const std::string source = host_name(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scaled.reg->choose_destination(source, ""));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hosts"] = hosts;
  state.counters["free"] =
      static_cast<double>(scaled.reg->indexed_count(rules::SystemState::kFree));
}

void BM_RegistryDecisionIndexed(benchmark::State& state) {
  decision_bench(state, false);
}
BENCHMARK(BM_RegistryDecisionIndexed)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RegistryDecisionLegacyScan(benchmark::State& state) {
  decision_bench(state, true);
}
BENCHMARK(BM_RegistryDecisionLegacyScan)->Arg(256)->Arg(1024)->Arg(4096);

// Heartbeat churn: each delivered UpdateMsg flips a rotating host between
// busy and free — the index must relink the entry in place, O(1) for the
// busy list and an ordered insert on the free list.
void BM_RegistryHeartbeatChurn(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  ScaledRegistry scaled{hosts, false};
  int i = 0;
  bool to_free = true;
  for (auto _ : state) {
    const std::string name = host_name(i);
    scaled.reg->deliver(
        update_msg(name, to_free ? rules::SystemState::kFree
                                 : rules::SystemState::kBusy),
        name);
    i = (i + 13) % hosts;
    if (i < 13) {
      to_free = !to_free;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (!scaled.reg->index_consistent()) {
    state.SkipWithError("state index inconsistent after churn");
  }
}
BENCHMARK(BM_RegistryHeartbeatChurn)->Arg(1024)->Arg(4096);

// Batched lease renewals: one UpdateBatchMsg renewing 64 known hosts — the
// delta-heartbeat path a monitor aggregate would take.
void BM_RegistryLeaseRenewalBatch(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  ScaledRegistry scaled{hosts, false};
  xmlproto::UpdateBatchMsg batch;
  for (int i = 0; i < 64; ++i) {
    xmlproto::LeaseRenewal renewal;
    renewal.host = host_name((i * 17) % hosts);
    renewal.state = "busy";
    batch.renewals.push_back(std::move(renewal));
  }
  for (auto _ : state) {
    scaled.reg->deliver(batch, "hub");
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_RegistryLeaseRenewalBatch)->Arg(1024);

// Cold registration storm: the whole table (entries + index) built from
// scratch — the soft-state rebuild after a registry restart.
void BM_RegistryRegisterStorm(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ScaledRegistry scaled{hosts, false};
    benchmark::DoNotOptimize(scaled.reg->hosts().size());
  }
  state.SetItemsProcessed(state.iterations() * hosts);
}
BENCHMARK(BM_RegistryRegisterStorm)->Arg(256)->Arg(1024);

// -- sharded full-scenario scaling (the parallel DES core) -------------------
//
// Unlike the deliver()-driven microbenches above, these run the complete
// simulation — engines, networks, monitors, registries — through
// core::ShardedCluster, so they measure what the multi-threaded core buys
// end to end.  Throughput is engine events per wall second; the
// shards4_vs_1 baseline ratio in BENCH_micro.json tracks the speedup
// (wired warn-only in CI: containers pin cores unpredictably).
//
// --cluster-plan=FILE swaps in a committed plan (plans/huge-cluster.json is
// the 100k-host instance); --shards=N overrides the per-arg shard sweep.

core::ShardedClusterOptions scenario_options(int hosts, double duration) {
  core::ShardedClusterOptions options;
  options.hosts = hosts;
  options.duration = duration;
  options.tracing = false;  // measure the core, not the trace ring
  const std::string& plan_path = bench::bench_cluster_plan();
  if (!plan_path.empty()) {
    std::ifstream in(plan_path);
    std::stringstream text;
    text << in.rdbuf();
    auto loaded = core::load_cluster_plan(text.str());
    if (loaded.has_value()) {
      options = std::move(loaded.value());
    } else {
      std::fprintf(stderr, "bad --cluster-plan %s: %s\n", plan_path.c_str(),
                   loaded.error().to_string().c_str());
    }
  }
  return options;
}

void sharded_cluster_bench(benchmark::State& state, int hosts,
                           double duration) {
  core::ShardedClusterOptions options = scenario_options(hosts, duration);
  options.shards = bench::bench_shards() > 0
                       ? bench::bench_shards()
                       : static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t cross = 0;
  for (auto _ : state) {
    core::ShardedCluster cluster(options);
    const core::ShardedClusterReport report = cluster.run();
    events += report.events;
    cross += report.cross_messages;
    benchmark::DoNotOptimize(report.registered_hosts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["hosts"] = options.hosts;
  state.counters["shards"] = options.shards;
  state.counters["cross_msgs"] =
      benchmark::Counter(static_cast<double>(cross));
}

/// Shard sweep at a fixed fleet: the speedup-vs-1-shard curve.  The 35s
/// virtual horizon reaches past the registries' 30s health-report period so
/// the child->root cross-shard path is actually exercised (cross_msgs > 0).
void BM_ShardedClusterHeartbeats(benchmark::State& state) {
  sharded_cluster_bench(state, 20'000, 35.0);
}
BENCHMARK(BM_ShardedClusterHeartbeats)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

/// The ISSUE 7 exit criterion: 100k hosts across 8 shards (or --shards=N),
/// hierarchical registries, one registration + heartbeat regime.
void BM_ShardedClusterHuge(benchmark::State& state) {
  sharded_cluster_bench(state, 100'000, 35.0);
}
BENCHMARK(BM_ShardedClusterHuge)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime();

}  // namespace

ARS_BENCH_MAIN();
