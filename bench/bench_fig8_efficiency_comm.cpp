// Figure 8: system efficiency — the communication burst caused by the
// migration, with data restoration starting on the destination almost at
// the same time as collection on the source (overlap).

#include "common.hpp"

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"

using namespace ars;

namespace {

constexpr double kAppStart = 280.0;
constexpr double kLoadStart = 428.0;
constexpr double kDuration = 900.0;

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  bench::heading("Figure 8. Efficiency - Communication (migration burst)");

  rules::MigrationPolicy policy = rules::paper_policy2();
  policy.set_warmup(20.0);
  core::ReschedulerRuntime runtime{core::make_cluster(2, policy)};
  runtime.start_rescheduler();
  runtime.trace().start(10.0);

  apps::TestTree::Params params;
  params.levels = 18;
  params.build_work_per_knode = 0.20;
  params.fill_work_per_knode = 0.10;
  params.sort_work_per_knode = 1.13;
  params.sum_work_per_knode = 0.10;
  params.chunk_work = 1.4;
  params.node_overhead_bytes = 220;

  apps::TestTree::Result app;
  runtime.engine().schedule_at(kAppStart, [&] {
    runtime.launch_app("ws1", apps::TestTree::make(params, &app),
                       "test_tree", apps::TestTree::schema(params));
  });
  host::CpuHog hog{runtime.host("ws1"), {.threads = 3, .duration = 400.0}};
  runtime.engine().schedule_at(kLoadStart, [&] { hog.start(); });

  runtime.run_until(kDuration);
  bench::export_obs(runtime);

  if (runtime.middleware().history().empty()) {
    std::printf("  NO MIGRATION HAPPENED - experiment failed\n");
    return 1;
  }
  const hpcm::MigrationTimeline& t = runtime.middleware().history().front();

  bench::subheading("traffic series around the migration, MB/s per 10 s");
  bench::Table table(
      {"t (s)", "ws1 send", "ws1 recv", "ws2 send", "ws2 recv"});
  const auto ws1 = runtime.trace().series("ws1");
  const auto ws2 = runtime.trace().series("ws2");
  for (std::size_t i = 0; i < ws1.size() && i < ws2.size(); ++i) {
    const double at = ws1[i].t;
    if (at < t.requested_at - 40.0 || at > t.completed_at + 50.0) {
      continue;
    }
    table.add_row({bench::fmt(at, 0), bench::fmt(ws1[i].tx_bps / 1e6, 3),
                   bench::fmt(ws1[i].rx_bps / 1e6, 3),
                   bench::fmt(ws2[i].tx_bps / 1e6, 3),
                   bench::fmt(ws2[i].rx_bps / 1e6, 3)});
  }
  table.print();

  bench::subheading("Analysis");
  std::printf("  migration window: [%.2f, %.2f] s, %.1f MB of state\n",
              t.requested_at, t.completed_at, t.state_bytes / 1e6);
  std::printf("  destination restoration started at %.2f s; application\n"
              "  resumed at %.2f s; background restore finished at %.2f s\n",
              t.eager_done_at, t.resumed_at, t.completed_at);

  // The burst must appear on ws1's TX and ws2's RX inside the window and be
  // absent before it.
  double burst = 0.0;
  double quiet = 0.0;
  for (std::size_t i = 0; i < ws1.size(); ++i) {
    const double at = ws1[i].t;
    if (at > t.requested_at && at <= t.completed_at + 10.0) {
      burst = std::max(burst, ws1[i].tx_bps);
    }
    if (at < t.requested_at) {
      quiet = std::max(quiet, ws1[i].tx_bps);
    }
  }
  std::printf("  peak ws1 send inside migration window: %.2f MB/s; before: "
              "%.3f MB/s\n",
              burst / 1e6, quiet / 1e6);
  const bool resumed_before_end = t.resumed_at < t.completed_at;
  std::printf("  \"the process resumes execution at the destination before "
              "the migration ends\" -> %s\n",
              resumed_before_end ? "REPRODUCED" : "NOT reproduced");
  const bool shape = burst > 10.0 * std::max(quiet, 1.0) &&
                     resumed_before_end;
  std::printf("  Shape check (burst localized to the migration window) -> "
              "%s\n",
              shape ? "REPRODUCED" : "NOT reproduced");
  return shape ? 0 : 1;
}
