// Table 2: comparison of the three migration policies (paper §5.3).
//
// Five workstations:
//   ws1 - source: the MPI application starts here; additional tasks then
//         make it busy (3 competing compute threads).
//   ws2 - busy in communication with ws5 (~7 MB/s each way) plus light CPU
//         activity (load ~0.97, just under Policy 2's threshold).
//   ws3 - CPU workload ~2.52.
//   ws4 - free.
//   ws5 - ws2's communication peer.
//
// Policy 1 never migrates.  Policy 2 (load/process-count only) picks ws2 —
// the comm-busy host whose load squeaks under the threshold — and pays for
// it twice: the migration shares ws2's NIC and the application shares its
// CPU.  Policy 3 also checks communication flow, rejects ws2, and picks
// the genuinely free ws4.

#include "common.hpp"

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/net/commhog.hpp"

using namespace ars;

namespace {

constexpr double kLoadStart = 30.0;

apps::TestTree::Params tree_params() {
  apps::TestTree::Params params;
  params.levels = 18;
  // Scale the phase factors so the total work is ~268 reference-seconds:
  // under a 3-thread competing load the no-migration run then lands near
  // the paper's 983.6 s.
  params.build_work_per_knode = 0.137;
  params.fill_work_per_knode = 0.068;
  params.sort_work_per_knode = 0.751;
  params.sum_work_per_knode = 0.068;
  params.chunk_work = 1.4;
  params.node_overhead_bytes = 183;  // ~50 MB of migrated state
  return params;
}

struct PolicyOutcome {
  std::string policy;
  double total = 0.0;
  std::string migrate_to = "-";
  double source_time = 0.0;
  double dest_time = 0.0;
  double migration_time = 0.0;
  bool finished = false;
  bool correct = false;
};

PolicyOutcome run_policy(rules::MigrationPolicy policy) {
  PolicyOutcome outcome;
  outcome.policy = policy.name();

  core::ReschedulerRuntime runtime{core::make_cluster(5, std::move(policy))};
  runtime.start_rescheduler();

  // ws2 <-> ws5 communication at ~7 MB/s (paper: 6.71-7.78 MB/s measured).
  net::CommHog comm{runtime.network(),
                    {.src = "ws2", .dst = "ws5", .rate_bps = 7.0e6,
                     .period = 0.5, .bidirectional = true}};
  comm.start();
  // ws2 light CPU activity: with the 0.26 ambient this reads ~0.96 — below
  // Policy 2's "load < 1" destination threshold, like the paper's 0.97.
  host::DutyCycleHog ws2_cpu{runtime.host("ws2"), {.duty = 0.70}};
  ws2_cpu.start();
  // ws3 CPU workload ~2.52.
  host::CpuHog ws3_cpu{runtime.host("ws3"), {.threads = 2}};
  ws3_cpu.start();
  host::DutyCycleHog ws3_duty{runtime.host("ws3"), {.duty = 0.26}};
  ws3_duty.start();

  const apps::TestTree::Params params = tree_params();
  apps::TestTree::Result app;
  runtime.launch_app("ws1", apps::TestTree::make(params, &app), "test_tree",
                     apps::TestTree::schema(params));

  // The additional tasks that make ws1 busy.
  host::CpuHog additional{runtime.host("ws1"),
                          {.threads = 3, .name = "additional"}};
  runtime.engine().schedule_at(kLoadStart, [&] { additional.start(); });

  runtime.run_until(3000.0);

  outcome.finished = app.finished;
  outcome.total = app.finished_at;
  outcome.correct = app.finished &&
                    app.sum == apps::TestTree::expected_sum(params);
  if (!runtime.middleware().history().empty()) {
    const hpcm::MigrationTimeline& t = runtime.middleware().history().front();
    if (t.succeeded) {
      outcome.migrate_to = t.destination;
      outcome.source_time = t.resumed_at;
      outcome.dest_time = app.finished_at - t.resumed_at;
      outcome.migration_time = t.completed_at - t.requested_at;
    }
  } else {
    outcome.source_time = app.finished_at;
  }
  bench::export_obs(runtime, "policy" + outcome.policy);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  bench::heading("Table 2. Comparison of Policies");

  const PolicyOutcome p1 = run_policy(rules::paper_policy1());
  const PolicyOutcome p2 = run_policy(rules::paper_policy2());
  const PolicyOutcome p3 = run_policy(rules::paper_policy3());

  bench::subheading("measured");
  bench::Table table({"Policy", "total exec time (sec)", "start at",
                      "migrate to", "source (sec)", "destination (sec)",
                      "migration time (sec)", "result"});
  for (const PolicyOutcome* o : {&p1, &p2, &p3}) {
    table.add_row({o->policy, bench::fmt(o->total, 2), "ws1", o->migrate_to,
                   bench::fmt(o->source_time, 2),
                   bench::fmt(o->dest_time, 2),
                   o->migrate_to == "-" ? "-" : bench::fmt(o->migration_time, 2),
                   o->correct ? "correct" : "WRONG"});
  }
  table.print();

  bench::subheading("paper (Table 2)");
  bench::Table paper({"Policy", "total exec time (sec)", "start at",
                      "migrate to", "source (sec)", "destination (sec)",
                      "migration time (sec)"});
  paper.add_row({"1", "983.6", "1st", "-", "983.6", "0", "-"});
  paper.add_row({"2", "433.27", "1st", "2nd", "242.68", "198.98", "8.31"});
  paper.add_row({"3", "329.71", "1st", "4th", "221.28", "115.13", "6.71"});
  paper.print();

  bench::subheading("shape checks");
  const bool destinations_match =
      p1.migrate_to == "-" && p2.migrate_to == "ws2" && p3.migrate_to == "ws4";
  const bool ordering = p3.total < p2.total && p2.total < p1.total;
  const bool migration_cost = p2.migration_time > p3.migration_time;
  const bool speedup = p3.total < 0.5 * p1.total;
  std::printf("  destinations (-, ws2, ws4):            %s\n",
              destinations_match ? "REPRODUCED" : "NOT reproduced");
  std::printf("  total-time ordering P3 < P2 < P1:      %s\n",
              ordering ? "REPRODUCED" : "NOT reproduced");
  std::printf("  migration into comm-busy host slower:  %s\n",
              migration_cost ? "REPRODUCED" : "NOT reproduced");
  std::printf("  rescheduling cuts execution time >2x:  %s "
              "(paper: 983.6 -> 329.71, i.e. to 33.5%%; ours: to %.1f%%)\n",
              speedup ? "REPRODUCED" : "NOT reproduced",
              100.0 * p3.total / p1.total);
  const bool all = destinations_match && ordering && migration_cost &&
                   speedup && p1.correct && p2.correct && p3.correct;
  return all ? 0 : 1;
}
