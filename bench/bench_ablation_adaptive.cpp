// Ablation: static vs self-adjusting warm-up (the paper's §6 future work:
// "take feedbacks from the scheduling and performance history, and
// automatically improve its accuracy and efficiency").
//
// Workload: a host that suffers repeated near-miss load spikes (just under
// the static warm-up) followed by a genuine long overload.  The static
// monitor reacts to the real overload with its fixed delay; the adaptive
// monitor has learned from the spikes and from past real overloads, so its
// effective warm-up moves.  Both must absorb every spike (no fault
// migrations).

#include "common.hpp"

#include "ars/host/hog.hpp"
#include "ars/monitor/monitor.hpp"

using namespace ars;

namespace {

struct MonitorOutcome {
  std::string name;
  int consults = 0;
  int absorbed = 0;
  double final_warmup = 0.0;
};

MonitorOutcome run(bool adaptive) {
  sim::Engine engine;
  // No ReschedulerRuntime here — the rig is a bare monitor — so the obs
  // sinks are attached directly through the monitor's config.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  tracer.set_clock([&engine] { return engine.now(); });
  net::Network network{engine};
  std::vector<std::unique_ptr<host::Host>> hosts;
  for (const char* name : {"ws1", "hub"}) {
    host::HostSpec spec;
    spec.name = name;
    hosts.push_back(std::make_unique<host::Host>(engine, spec));
    network.attach(*hosts.back());
  }
  network.bind("hub", 5000);

  monitor::Monitor::Config config;
  config.registry_host = "hub";
  config.registry_port = 5000;
  config.policy = rules::paper_policy2();  // warmup 60 s
  config.adaptive_warmup = adaptive;
  config.tracer = &tracer;
  config.metrics = &metrics;
  monitor::Monitor mon{*hosts[0], network, config};
  mon.start();

  // Phase 1: four near-miss spikes (~85 s of overload each, just above the
  // 60 s static warm-up minus load-average inertia).
  std::vector<std::unique_ptr<host::CpuHog>> hogs;
  for (int i = 0; i < 4; ++i) {
    hogs.push_back(std::make_unique<host::CpuHog>(
        *hosts[0], host::CpuHog::Options{.threads = 3, .duration = 80.0}));
    engine.schedule_at(100.0 + 400.0 * i,
                       [&hogs, i] { hogs[static_cast<std::size_t>(i)]->start(); });
  }
  // Phase 2: three genuine overloads (300 s each).
  for (int i = 0; i < 3; ++i) {
    hogs.push_back(std::make_unique<host::CpuHog>(
        *hosts[0], host::CpuHog::Options{.threads = 3, .duration = 300.0}));
    engine.schedule_at(1800.0 + 600.0 * i, [&hogs, i] {
      hogs[static_cast<std::size_t>(i + 4)]->start();
    });
  }
  engine.run_until(3800.0);

  MonitorOutcome outcome;
  outcome.name = adaptive ? "adaptive" : "static";
  outcome.consults = mon.consults_sent();
  outcome.absorbed = mon.absorbed_spikes();
  outcome.final_warmup = mon.effective_warmup();
  bench::export_obs(tracer, metrics, outcome.name);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_obs_export(argc, argv);
  bench::heading(
      "Ablation: static vs self-adjusting warm-up (paper 6 future work)");
  const MonitorOutcome fixed = run(false);
  const MonitorOutcome adaptive = run(true);

  bench::Table table(
      {"monitor", "consults sent", "spikes absorbed", "final warm-up (s)"});
  for (const MonitorOutcome* o : {&fixed, &adaptive}) {
    table.add_row({o->name, std::to_string(o->consults),
                   std::to_string(o->absorbed),
                   bench::fmt(o->final_warmup, 1)});
  }
  table.print();

  std::printf(
      "\n  Both monitors absorb the short spikes (no fault migrations).\n"
      "  The adaptive monitor's warm-up rose on the near misses and came\n"
      "  back down once genuine overloads arrived (%.1f s vs the fixed\n"
      "  60.0 s), reacting faster to persistent load in steady state.\n",
      adaptive.final_warmup);

  const bool shape = fixed.final_warmup == 60.0 &&
                     adaptive.final_warmup != 60.0 && fixed.consults >= 3 &&
                     adaptive.consults >= 3;
  std::printf("  Shape check -> %s\n",
              shape ? "REPRODUCED" : "NOT reproduced");
  return shape ? 0 : 1;
}
