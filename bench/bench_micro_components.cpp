// Micro benchmarks (google-benchmark) for the design choices DESIGN.md
// calls out: event-queue throughput (DES choice), rule evaluation cost
// (rule-based monitoring must be "very light-weighted"), XML codec cost
// (the control plane's wire format), and state-registry serialization
// (migration data collection).

#include <benchmark/benchmark.h>

#include "common.hpp"

#include "ars/hpcm/stateregistry.hpp"
#include "ars/rules/engine.hpp"
#include "ars/rules/rulefile.hpp"
#include "ars/sim/engine.hpp"
#include "ars/sim/task.hpp"
#include "ars/xmlproto/messages.hpp"

namespace {

using namespace ars;

/// Bench-level telemetry for the uniform --trace-out/--metrics-out export:
/// one instant per benchmark case plus an iteration counter.  The sinks are
/// nullptr unless an export was requested, so measured numbers are
/// undisturbed.  (Nothing here takes an obs::Tracer — these are codec and
/// event-queue micro benches — hence the harness-side telemetry.)
void note_case(benchmark::State& state, const char* name) {
  if (auto* metrics = bench::obs_metrics_sink()) {
    metrics->counter("bench.iterations", {{"bench", name}})
        .inc(static_cast<double>(state.iterations()));
  }
  if (auto* tracer = bench::obs_trace_sink()) {
    tracer->instant("bench.case", "bench", name);
  }
}

void BM_EngineScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * events);
  note_case(state, "BM_EngineScheduleRun");
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

// Steady state: a long-lived engine whose slot pool and timestamp index are
// warm — the zero-allocation regime the alloc-counter test pins down.
void BM_EngineSteadyState(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  sim::Engine engine;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      engine.schedule_after(static_cast<double>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  note_case(state, "BM_EngineSteadyState");
}
BENCHMARK(BM_EngineSteadyState)->Arg(1000);

// O(1) handle cancellation: half the scheduled events are cancelled before
// the run drains the rest (timer-heavy workloads cancel most timeouts).
void BM_EngineCancelHalf(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::vector<sim::Engine::EventHandle> handles(events);
  sim::Engine engine;
  for (auto _ : state) {
    for (int i = 0; i < events; ++i) {
      handles[i] =
          engine.schedule_after(static_cast<double>(i % 97), [] {});
    }
    for (int i = 0; i < events; i += 2) {
      handles[i].cancel();
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * events);
  note_case(state, "BM_EngineCancelHalf");
}
BENCHMARK(BM_EngineCancelHalf)->Arg(1000);

void BM_FiberSpawnResume(benchmark::State& state) {
  const int fibers = static_cast<int>(state.range(0));
  auto body = [](sim::Engine& engine) -> sim::Task<> {
    co_await sim::delay(engine, 1.0);
  };
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < fibers; ++i) {
      sim::Fiber::spawn(engine, body(engine));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * fibers);
  note_case(state, "BM_FiberSpawnResume");
}
BENCHMARK(BM_FiberSpawnResume)->Arg(100)->Arg(1000);

void BM_SimpleRuleEvaluation(benchmark::State& state) {
  auto engine = rules::RuleEngine::from_text(rules::paper_figure3_text());
  rules::MapSensorSource sensors;
  sensors.set("processorStatus.sh", 47.0);
  sensors.set("ntStatIpv4.sh", "ESTABLISHED", 800.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->evaluate_all(sensors));
  }
  note_case(state, "BM_SimpleRuleEvaluation");
}
BENCHMARK(BM_SimpleRuleEvaluation);

void BM_ComplexRuleEvaluation(benchmark::State& state) {
  const std::string text =
      "rl_number: 1\nrl_name: a\nrl_type: simple\nrl_script: s1\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 2\nrl_name: b\nrl_type: simple\nrl_script: s2\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 3\nrl_name: c\nrl_type: simple\nrl_script: s3\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 4\nrl_name: d\nrl_type: simple\nrl_script: s4\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n" +
      rules::paper_figure4_text();
  auto engine = rules::RuleEngine::from_text(text);
  rules::MapSensorSource sensors;
  for (const char* s : {"s1", "s2", "s3", "s4"}) {
    sensors.set(s, 1.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->evaluate(5, sensors));
  }
  note_case(state, "BM_ComplexRuleEvaluation");
}
BENCHMARK(BM_ComplexRuleEvaluation);

void BM_RuleFileParse(benchmark::State& state) {
  const std::string text = rules::paper_figure3_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rules::parse_rule_file(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
  note_case(state, "BM_RuleFileParse");
}
BENCHMARK(BM_RuleFileParse);

xmlproto::UpdateMsg sample_update() {
  xmlproto::UpdateMsg m;
  m.status.host = "ws1";
  m.status.state = "busy";
  m.status.load1 = 0.97;
  m.status.load5 = 0.64;
  m.status.cpu_util = 0.42;
  m.status.processes = 84;
  m.status.mem_available_pct = 61.2;
  m.status.disk_available = 1234567890;
  m.status.net_in_bps = 5990.0;
  m.status.net_out_bps = 5820.0;
  m.status.sockets_established = 14;
  m.status.timestamp = 280.0;
  return m;
}

void BM_XmlEncodeHeartbeat(benchmark::State& state) {
  const xmlproto::ProtocolMessage message{sample_update()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmlproto::encode(message));
  }
  note_case(state, "BM_XmlEncodeHeartbeat");
}
BENCHMARK(BM_XmlEncodeHeartbeat);

void BM_XmlDecodeHeartbeat(benchmark::State& state) {
  const std::string wire = xmlproto::encode(sample_update());
  for (auto _ : state) {
    benchmark::DoNotOptimize(xmlproto::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
  note_case(state, "BM_XmlDecodeHeartbeat");
}
BENCHMARK(BM_XmlDecodeHeartbeat);

void BM_StateRegistryEncode(benchmark::State& state) {
  const std::size_t doubles = static_cast<std::size_t>(state.range(0));
  hpcm::StateRegistry reg;
  reg.set_int("phase", 2);
  reg.set_double("progress", 0.5);
  reg.set_doubles("values", std::vector<double>(doubles, 1.5));
  reg.set_opaque("heap", 50u << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.encode());
  }
  state.SetBytesProcessed(state.iterations() * doubles * 8);
  note_case(state, "BM_StateRegistryEncode");
}
BENCHMARK(BM_StateRegistryEncode)->Arg(1024)->Arg(65536);

void BM_StateRegistryDecode(benchmark::State& state) {
  const std::size_t doubles = static_cast<std::size_t>(state.range(0));
  hpcm::StateRegistry reg;
  reg.set_doubles("values", std::vector<double>(doubles, 1.5));
  const auto wire = reg.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hpcm::StateRegistry::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * wire.size());
  note_case(state, "BM_StateRegistryDecode");
}
BENCHMARK(BM_StateRegistryDecode)->Arg(1024)->Arg(65536);

}  // namespace

ARS_BENCH_MAIN();
